//! Concurrency stress for the sharded front: many client threads, tiny
//! queues, overload shedding — and at the end every request is accounted
//! for exactly once, with the shared metrics registry reconciling against
//! the clients' own counts.

use std::sync::atomic::{AtomicU64, Ordering};

use intellitag::prelude::*;

/// Splitmix64 — a per-thread deterministic request mixer.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn build_front(world: &World, cfg: ShardConfig, registry: MetricsRegistry) -> ShardedServer {
    let kb = world.build_kb();
    let tag_texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let rq_tags: Vec<Vec<usize>> = world.rqs.iter().map(|r| r.tags.clone()).collect();
    let tenant_tags: Vec<Vec<usize>> =
        (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect();
    let counts = world.click_frequency();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let model = Popularity::from_sessions(&train, world.tags.len());
    ShardedServer::spawn(cfg, registry, move |_shard| {
        ModelServer::new(
            model.clone(),
            kb.clone(),
            tag_texts.clone(),
            rq_tags.clone(),
            tenant_tags.clone(),
            counts.clone(),
        )
    })
}

#[test]
fn stress_answers_every_request_exactly_once() {
    let world = World::generate(WorldConfig::tiny(13));
    let registry = MetricsRegistry::new();
    let shards = 2usize;
    // A deliberately tiny queue so the non-blocking senders hit Overloaded.
    let front = build_front(
        &world,
        ShardConfig { shards, batch_max: 4, queue_capacity: 2, ..Default::default() },
        registry.clone(),
    );

    let clients = 8usize;
    let per_client = 150usize;
    let questions: Vec<String> = world.rqs.iter().take(16).map(|r| r.text()).collect();
    let tenants = world.tenants.len();
    let num_tags = world.tags.len();

    let answered_q = AtomicU64::new(0);
    let answered_c = AtomicU64::new(0);
    let shed = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for client in 0..clients {
            let front = &front;
            let questions = &questions;
            let (answered_q, answered_c, shed) = (&answered_q, &answered_c, &shed);
            scope.spawn(move || {
                let mut rng =
                    Rng(0xC11Eu64.wrapping_add(client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                for _ in 0..per_client {
                    let tenant = rng.below(tenants);
                    // Half the traffic is non-blocking (may shed), half
                    // blocking (applies backpressure, never sheds).
                    match rng.below(4) {
                        0 => match front
                            .try_handle_question(tenant, &questions[rng.below(questions.len())])
                        {
                            Ok(_) => {
                                answered_q.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ShedReason::Overloaded) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ShedReason::ShuttingDown) => panic!("front is live"),
                        },
                        1 => match front.try_handle_tag_click(tenant, &[rng.below(num_tags)]) {
                            Ok(_) => {
                                answered_c.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ShedReason::Overloaded) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ShedReason::ShuttingDown) => panic!("front is live"),
                        },
                        2 => {
                            let _ = front
                                .handle_question(tenant, &questions[rng.below(questions.len())]);
                            answered_q.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            let clicks = vec![rng.below(num_tags), rng.below(num_tags)];
                            let _ = front.handle_tag_click(tenant, &clicks);
                            answered_c.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    let sent = (clients * per_client) as u64;
    let answered_q = answered_q.into_inner();
    let answered_c = answered_c.into_inner();
    let shed_seen = shed.into_inner();
    let answered = answered_q + answered_c;

    // Exactly-once accounting on the client side.
    assert_eq!(answered + shed_seen, sent, "every request answered or shed, never both");

    // The front's own shed counter agrees with what the clients observed.
    assert_eq!(front.shed_count(), shed_seen);

    // Every accepted request was processed by exactly one shard worker.
    let processed: u64 = (0..shards)
        .map(|s| registry.counter_labeled("sharded.processed", &[("shard", &s.to_string())]).get())
        .sum();
    assert_eq!(processed, answered, "worker-side processed == client-side answered");

    // The inner servers' shared histograms reconcile per request kind.
    assert_eq!(registry.histogram("serving.question_us").count(), answered_q);
    assert_eq!(registry.histogram("serving.tag_click_us").count(), answered_c);
    assert_eq!(registry.histogram("serving.request_us").count(), answered);

    // Client-observed front latency was recorded once per answered request.
    assert_eq!(front.front_latency_snapshot().count, answered);

    // The tiny queue under 8 writers actually shed something — otherwise
    // this test exercises nothing.
    assert!(shed_seen > 0, "expected overload shedding with queue_capacity=2");
    let rendered = registry.render_prometheus();
    assert!(rendered.contains("sharded_shed_total"), "shed counter must be scrapable");

    front.shutdown();
}

#[test]
fn per_shard_shed_counters_sum_to_total() {
    // Overload one front hard with non-blocking traffic only, then check
    // the labeled per-shard shed series sum exactly to the front's total —
    // no shed event is lost or double-counted across shards.
    let world = World::generate(WorldConfig::tiny(3));
    let registry = MetricsRegistry::new();
    let shards = 4usize;
    let front = build_front(
        &world,
        ShardConfig { shards, batch_max: 1, queue_capacity: 1, ..Default::default() },
        registry.clone(),
    );
    let tenants = world.tenants.len();

    std::thread::scope(|scope| {
        for client in 0..6 {
            let front = &front;
            scope.spawn(move || {
                let mut rng = Rng(0xBEEF ^ (client as u64) << 17);
                for _ in 0..100 {
                    let _ = front.try_handle_tag_click(rng.below(tenants), &[rng.below(8)]);
                }
            });
        }
    });

    let per_shard: u64 = (0..shards)
        .map(|s| registry.counter_labeled("sharded.shed", &[("shard", &s.to_string())]).get())
        .sum();
    assert_eq!(per_shard, front.shed_count(), "per-shard shed series must sum to the total");
    assert_eq!(per_shard, registry.counter("sharded.shed_total").get());

    // No worker was lost: shedding is load management, not failure.
    assert_eq!(registry.counter("sharded.error.worker_lost").get(), 0);
    front.shutdown();
}
