//! Seed determinism across the whole stack: identical seeds must produce
//! bit-identical models, metrics and simulations.

use intellitag::prelude::*;

#[test]
fn world_and_graph_are_deterministic() {
    let a = World::generate(WorldConfig::tiny(123));
    let b = World::generate(WorldConfig::tiny(123));
    assert_eq!(a.tags.len(), b.tags.len());
    for (x, y) in a.tags.iter().zip(&b.tags) {
        assert_eq!(x.words, y.words);
    }
    let (ga, gb) = (a.build_graph(), b.build_graph());
    assert_eq!(ga.relation_counts(), gb.relation_counts());
}

#[test]
fn trained_models_are_deterministic() {
    let world = World::generate(WorldConfig::tiny(9));
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let cfg = TrainConfig { epochs: 2, ..Default::default() };

    let m1 = Gru4Rec::train(&train, world.tags.len(), 16, &cfg);
    let m2 = Gru4Rec::train(&train, world.tags.len(), 16, &cfg);
    let ctx = vec![train[0][0]];
    assert_eq!(m1.score_all(&ctx), m2.score_all(&ctx), "GRU4Rec must be deterministic");

    let graph = world.build_graph();
    let m2v_cfg = M2vConfig { epochs: 1, ..Default::default() };
    let v1 = Metapath2Vec::train(&graph, &m2v_cfg);
    let v2 = Metapath2Vec::train(&graph, &m2v_cfg);
    assert_eq!(v1.score_all(&ctx), v2.score_all(&ctx), "metapath2vec must be deterministic");
}

#[test]
fn intellitag_is_deterministic_end_to_end() {
    let world = World::generate(WorldConfig::tiny(9));
    let graph = world.build_graph();
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig { epochs: 1, ..Default::default() },
        ..Default::default()
    };
    let m1 = IntelliTag::train(&graph, &texts, &train, cfg);
    let m2 = IntelliTag::train(&graph, &texts, &train, cfg);
    assert_eq!(m1.z_table(), m2.z_table(), "z tables must match bit-for-bit");
    let ctx = vec![0usize, 1];
    assert_eq!(m1.score_all(&ctx), m2.score_all(&ctx));
}

#[test]
fn evaluation_and_simulation_are_deterministic() {
    let world = World::generate(WorldConfig::tiny(2));
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let test = sequence_examples(&split.test);
    let pop = Popularity::from_sessions(&train, world.tags.len());

    let r1 = evaluate_offline(&pop, &test, &world, &ProtocolConfig::default());
    let r2 = evaluate_offline(&pop, &test, &world, &ProtocolConfig::default());
    assert_eq!(r1.mrr, r2.mrr);
    assert_eq!(r1.ndcg10, r2.ndcg10);

    let server = ModelServer::new(
        pop,
        world.build_kb(),
        world.tags.iter().map(|t| t.text()).collect(),
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect(),
        world.click_frequency(),
    );
    let sim = SimConfig { days: 2, sessions_per_day: 25, seed: 11, ..Default::default() };
    let o1 = simulate_online(&server, &world, &UserModel::default(), &sim);
    let o2 = simulate_online(&server, &world, &UserModel::default(), &sim);
    assert_eq!(o1.hir, o2.hir);
    for (a, b) in o1.daily.iter().zip(&o2.daily) {
        assert_eq!(a.macro_ctr, b.macro_ctr);
    }
}

#[test]
fn different_seeds_change_the_world() {
    let a = World::generate(WorldConfig::tiny(1));
    let b = World::generate(WorldConfig::tiny(2));
    let differing =
        a.sessions.iter().zip(&b.sessions).filter(|(x, y)| x.clicks != y.clicks).count();
    assert!(differing > 0, "different seeds must differ");
}
