//! The governor's determinism contract, end to end.
//!
//! Three pins:
//!
//! 1. **Byte-identical replay** — a canned observation trace replayed
//!    through [`Governor::replay`] twice (and through a hand-stepped
//!    governor) yields the same decision log, byte for byte.
//! 2. **Bounds** — property-tested: for arbitrary observation sequences,
//!    every decision and every live knob value stays inside the declared
//!    [`KnobBounds`], and `par_threshold` only ever takes its two
//!    configured values.
//! 3. **Parity under stepping** — the serving front keeps byte-identical
//!    responses while a live [`GovernorRuntime`] (plus an adversarial
//!    knob-flipper) changes `batch_max` / `shed_depth` / pool knobs in the
//!    middle of drains; afterwards, replaying the runtime's recorded
//!    observation trace reproduces its decision log.

use std::sync::Arc;
use std::time::Duration;

use intellitag::core::{
    Governor, GovernorConfig, GovernorRuntime, KnobBounds, Observation, TagClickResponse,
};
use intellitag::obs::DecisionLog;
use intellitag::prelude::*;
use proptest::prelude::*;

/// An observation with every field the step rules read, cumulative
/// counters included. `drains`/`rows` accumulate across calls via the
/// running totals the caller threads through.
fn obs(qmax: u64, cum_drains: u64, cum_rows: u64, burn_x100: u64) -> Observation {
    Observation {
        queue_depth_max: qmax,
        queue_depth_sum: qmax,
        shards: 2,
        batch_count: cum_drains,
        batch_rows_sum: cum_rows,
        batch_rows_max: 8,
        budget_used_max_x100: burn_x100,
        ..Default::default()
    }
}

/// A canned trace exercising every step rule at least once: warm-up,
/// backlog growth + deep-queue pool shrink + blown budget, saturation
/// with large drains, then a long idle tail that walks everything back.
fn canned_trace() -> Vec<Observation> {
    vec![
        // Warm-up: anchors counters, must never step.
        obs(0, 0, 0, 60),
        // Backlog: qmax 32 >= 2*batch_max(8) doubles batch_max; deep
        // queues shrink the pool is already at min; budget blown shrinks
        // shed_depth.
        obs(32, 4, 40, 140),
        // Still backlogged: batch_max doubles again, budget still blown.
        obs(64, 10, 200, 160),
        // Saturation drains are large (mean 8 rows = 800 x100): with the
        // pool above 1 par_threshold would drop; pool is at min here so
        // the small/large rules exercise the serial branch instead.
        obs(2, 20, 280, 90),
        // Empty queues, small drains: idle tick 1 + pool grow tick 1.
        obs(0, 24, 284, 60),
        // Idle tick 2: batch_max halves, pool doubles, shed relaxes.
        obs(0, 28, 288, 30),
        // More idle: the walk-back continues deterministically.
        obs(0, 32, 292, 20),
        obs(0, 36, 296, 10),
    ]
}

fn test_config() -> GovernorConfig {
    GovernorConfig {
        batch_bounds: KnobBounds { min: 1, max: 64 },
        // Pin the pool bounds so the canned expectations do not depend on
        // the host's core count.
        pool_bounds: KnobBounds { min: 1, max: 8 },
        shed_bounds: KnobBounds { min: 8, max: 256 },
        initial_batch_max: 8,
        initial_pool_threads: 1,
        initial_shed_depth: 256,
        ..Default::default()
    }
}

#[test]
fn canned_trace_replays_byte_identically() {
    let trace = canned_trace();
    let first = Governor::replay(test_config(), &trace);
    let second = Governor::replay(test_config(), &trace);
    assert!(!first.is_empty(), "the canned trace must trigger decisions");
    assert_eq!(first, second, "replaying the same trace must be byte-identical");

    // A hand-stepped governor renders the same log, and its live knob
    // values agree with the decision lines' `new=` values.
    let mut gov = Governor::new(test_config());
    let mut lines = Vec::new();
    for o in &trace {
        for d in gov.step(o) {
            lines.push(d.line());
        }
    }
    assert_eq!(lines, first);

    // The trace exercised every knob and both directions of batch_max.
    for knob in ["batch_max", "pool_threads", "shed_depth"] {
        assert!(
            first.iter().any(|l| l.contains(&format!("knob={knob}"))),
            "canned trace never stepped {knob}:\n{first:?}"
        );
    }
    assert!(first.iter().any(|l| l.contains("signal=backlog:")));
    assert!(first.iter().any(|l| l.contains("signal=idle:")));
    assert!(first.iter().any(|l| l.contains("signal=budget_blown:")));
    assert!(first.iter().any(|l| l.contains("signal=budget_ok:")));
}

#[test]
fn warmup_observation_never_steps() {
    // Even the most alarming first observation only anchors counters.
    let alarming = obs(10_000, 500, 50_000, 10_000);
    assert!(Governor::replay(test_config(), &[alarming]).is_empty());
}

/// Strategy: one raw observation tick — deltas, not cumulative values;
/// the property test integrates them so counters are monotone like the
/// real registry's.
fn tick_strategy() -> impl Strategy<Value = (u64, u64, u64, u64)> {
    (0u64..512, 0u64..32, 0u64..1024, 0u64..20_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decisions_and_knobs_stay_within_declared_bounds(
        ticks in proptest::collection::vec(tick_strategy(), 1..80)
    ) {
        let cfg = test_config();
        let mut gov = Governor::new(cfg.clone());
        let (mut cum_drains, mut cum_rows) = (0u64, 0u64);
        for (qmax, d_drains, d_rows, burn) in ticks {
            cum_drains += d_drains;
            cum_rows += d_rows;
            for d in gov.step(&obs(qmax, cum_drains, cum_rows, burn)) {
                let bounds = match d.knob {
                    "batch_max" => Some(cfg.batch_bounds),
                    "pool_threads" => Some(cfg.pool_bounds),
                    "shed_depth" => Some(cfg.shed_bounds),
                    "par_threshold" => None,
                    other => panic!("unknown knob in decision: {other}"),
                };
                if let Some(b) = bounds {
                    prop_assert!(
                        (b.min as u64..=b.max as u64).contains(&d.new),
                        "decision left bounds: {}", d.line()
                    );
                } else {
                    prop_assert!(
                        d.new == cfg.par_threshold_low as u64
                            || d.new == cfg.initial_par_threshold as u64,
                        "par_threshold took a third value: {}", d.line()
                    );
                }
                prop_assert!(d.new != d.old, "no-op decision emitted: {}", d.line());
            }
            // The live values the runtime would apply also stay bounded.
            prop_assert!(gov.batch_max() >= cfg.batch_bounds.min);
            prop_assert!(gov.batch_max() <= cfg.batch_bounds.max);
            prop_assert!(gov.pool_threads() >= cfg.pool_bounds.min);
            prop_assert!(gov.pool_threads() <= cfg.pool_bounds.max);
            prop_assert!(gov.shed_depth() >= cfg.shed_bounds.min);
            prop_assert!(gov.shed_depth() <= cfg.shed_bounds.max);
        }
    }

    #[test]
    fn replay_matches_stepping_for_any_trace(
        ticks in proptest::collection::vec(tick_strategy(), 1..60)
    ) {
        let (mut cum_drains, mut cum_rows) = (0u64, 0u64);
        let trace: Vec<Observation> = ticks
            .into_iter()
            .map(|(qmax, d_drains, d_rows, burn)| {
                cum_drains += d_drains;
                cum_rows += d_rows;
                obs(qmax, cum_drains, cum_rows, burn)
            })
            .collect();
        let a = Governor::replay(test_config(), &trace);
        let b = Governor::replay(test_config(), &trace);
        prop_assert_eq!(a, b);
    }
}

/// Everything a `ModelServer` replica needs, cloneable into factories.
#[derive(Clone)]
struct ServerParts {
    kb: KbWarehouse,
    tag_texts: Vec<String>,
    rq_tags: Vec<Vec<usize>>,
    tenant_tags: Vec<Vec<usize>>,
    counts: Vec<usize>,
    model: Popularity,
}

impl ServerParts {
    fn from_world(world: &World) -> Self {
        let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        ServerParts {
            kb: world.build_kb(),
            tag_texts: world.tags.iter().map(|t| t.text()).collect(),
            rq_tags: world.rqs.iter().map(|r| r.tags.clone()).collect(),
            tenant_tags: (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
            counts: world.click_frequency(),
            model: Popularity::from_sessions(&train, world.tags.len()),
        }
    }

    fn build(&self) -> ModelServer<Popularity> {
        ModelServer::new(
            self.model.clone(),
            self.kb.clone(),
            self.tag_texts.clone(),
            self.rq_tags.clone(),
            self.tenant_tags.clone(),
            self.counts.clone(),
        )
    }
}

#[test]
fn parity_holds_while_governor_steps_mid_drain() {
    let world = World::generate(WorldConfig::tiny(37));
    let parts = ServerParts::from_world(&world);
    let single = parts.build();

    // Clicks-only stream: every request takes the batched drain path that
    // re-reads `batch_max` at each drain top.
    let mut rng = 0x5eedu64;
    let mut next = move || {
        rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let tenants = world.tenants.len();
    let stream: Vec<(usize, Vec<usize>)> = (0..400)
        .map(|_| {
            let tenant = (next() % tenants as u64) as usize;
            let pool = world.tenant_tag_pool(tenant);
            let n = 1 + (next() % 3) as usize;
            let clicks = (0..n).map(|_| pool[(next() % pool.len() as u64) as usize]).collect();
            (tenant, clicks)
        })
        .collect();
    let expected: Vec<TagClickResponse> =
        stream.iter().map(|(t, c)| single.handle_tag_click(*t, c)).collect();

    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig { shards: 2, batch_max: 8, queue_capacity: 64, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));

    let cfg = test_config();
    let log = DecisionLog::new(4096);
    let governor = GovernorRuntime::spawn(
        cfg.clone(),
        registry.clone(),
        front.knobs(),
        log.clone(),
        Duration::from_millis(1),
    );

    // An adversarial flipper guarantees knob changes land mid-drain even
    // if the governor itself sees nothing to do: parity must be invariant
    // to ANY knob schedule, governed or not.
    let knobs = front.knobs();
    let flip_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flip_stop2 = Arc::clone(&flip_stop);
    let flipper = std::thread::spawn(move || {
        let mut i = 0usize;
        while !flip_stop2.load(std::sync::atomic::Ordering::Acquire) {
            knobs.set_batch_max([1, 4, 16, 8][i % 4]);
            knobs.set_shed_depth([64, 256, 32, 128][i % 4]);
            i += 1;
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    // Concurrent clients: blocking sends (never shed), interleaved so
    // drains batch multiple requests while the knobs move underneath.
    let clients = 6;
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (front, stream, expected) = (&front, &stream, &expected);
            scope.spawn(move || {
                for (i, (tenant, clicks)) in stream.iter().enumerate().skip(c).step_by(clients) {
                    let got = TagService::handle_tag_click(front.as_ref(), *tenant, clicks);
                    assert!(
                        got.same_content(&expected[i]),
                        "response {i} diverged under a stepping governor"
                    );
                }
            });
        }
    });
    flip_stop.store(true, std::sync::atomic::Ordering::Release);
    flipper.join().unwrap();

    // Replaying the runtime's recorded trace reproduces its decision log.
    // (Read the log before the trace: the loop is still ticking, so the
    // log is a prefix of what the later-read trace replays to.)
    let lines = governor.decision_log().lines();
    let trace = governor.observations();
    let replayed = Governor::replay(cfg, &trace);
    assert!(
        replayed.len() >= lines.len(),
        "replay lost decisions: {} < {}",
        replayed.len(),
        lines.len()
    );
    assert_eq!(
        &replayed[..lines.len()],
        &lines[..],
        "live decision log diverged from its trace replay"
    );
    governor.stop();
    drop(front);
}
