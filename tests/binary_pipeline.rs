//! Stress and drain tests for the binary wire protocol end to end: 8
//! pipelined clients × 16 in-flight correlated frames against a 4-shard
//! front with shedding enabled, a mid-pipeline server shutdown, and the
//! blocking client's stale-connection retry.
//!
//! The invariants pinned here are the ones the pipelining layer exists to
//! uphold:
//!
//! * **conservation** — answered + shed == sent, client-side counts and
//!   the gateway's `gateway.requests{route=..,status=..}` counters agree;
//! * **correlation** — every reply maps back (by the echoed correlation
//!   id) to exactly the request that caused it, verified against
//!   precomputed direct answers;
//! * **out-of-order completion** — the whole point of pipelining: at
//!   least one reply overtakes an earlier submission;
//! * **bounded drain** — frames in flight when the server shuts down get
//!   replies or typed `ShuttingDown` errors (or a clean EOF), never a
//!   hang.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use intellitag::prelude::*;

/// Splitmix64 — deterministic stream generator, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Everything a `ModelServer` replica needs, cloneable into factories.
#[derive(Clone)]
struct ServerParts {
    kb: KbWarehouse,
    tag_texts: Vec<String>,
    rq_tags: Vec<Vec<usize>>,
    tenant_tags: Vec<Vec<usize>>,
    counts: Vec<usize>,
    model: Popularity,
}

impl ServerParts {
    fn from_world(world: &World) -> Self {
        let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        ServerParts {
            kb: world.build_kb(),
            tag_texts: world.tags.iter().map(|t| t.text()).collect(),
            rq_tags: world.rqs.iter().map(|r| r.tags.clone()).collect(),
            tenant_tags: (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
            counts: world.click_frequency(),
            model: Popularity::from_sessions(&train, world.tags.len()),
        }
    }

    fn build(&self) -> ModelServer<Popularity> {
        ModelServer::new(
            self.model.clone(),
            self.kb.clone(),
            self.tag_texts.clone(),
            self.rq_tags.clone(),
            self.tenant_tags.clone(),
            self.counts.clone(),
        )
    }
}

/// A seeded mixed request stream: questions, click trails and cold starts.
fn request_stream(world: &World, seed: u64, len: usize) -> Vec<RecommendRequest> {
    let mut rng = Rng(seed);
    let tenants = world.tenants.len();
    (0..len)
        .map(|_| {
            let tenant = rng.below(tenants);
            match rng.below(5) {
                0 | 1 => {
                    let rq = &world.rqs[rng.below(world.rqs.len())];
                    RecommendRequest { tenant, question: Some(rq.text()), clicks: vec![] }
                }
                2 | 3 => {
                    let pool = world.tenant_tag_pool(tenant);
                    let n = 1 + rng.below(3.min(pool.len().max(1)));
                    let clicks = (0..n).map(|_| pool[rng.below(pool.len())]).collect();
                    RecommendRequest { tenant, question: None, clicks }
                }
                _ => RecommendRequest { tenant, question: None, clicks: vec![] },
            }
        })
        .collect()
}

/// The direct (no wire) answer for one request, mirroring the server's
/// frame-type routing: clicks without a question → TagRec path, question →
/// dialogue path, neither → cold start.
fn direct_answer<S: TagService>(service: &S, req: &RecommendRequest) -> RecommendResponse {
    if req.question.is_none() && !req.clicks.is_empty() {
        RecommendResponse::from_click(&service.handle_tag_click(req.tenant, &req.clicks))
    } else {
        match &req.question {
            Some(q) => RecommendResponse::from_question(&service.handle_question(req.tenant, q)),
            None => RecommendResponse::from_cold_start(service.cold_start_tags(req.tenant), 0),
        }
    }
}

/// 8 pipelined clients × 16 in-flight frames each, hammering a 4-shard
/// front with small queues so shedding genuinely happens. Conservation,
/// correlation and out-of-order completion are all asserted.
#[test]
fn pipelined_clients_saturate_a_shedding_sharded_front_and_reconcile() {
    let world = World::generate(WorldConfig::tiny(83));
    let parts = ServerParts::from_world(&world);
    let direct = parts.build();

    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig {
            shards: 4,
            batch_max: 4,
            // Small queues: 8 clients × 16 in flight = 128 outstanding
            // against 4×8 queue slots, so overload shedding must trigger.
            queue_capacity: 8,
            routing: RoutingPolicy::TenantHash,
            ..Default::default()
        },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));
    let share = Arc::clone(&front);
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        // One worker per client: a binary connection holds its worker for
        // the connection's lifetime.
        GatewayConfig { workers: 8, ..Default::default() },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds");
    let addr = handle.addr();

    let clients = 8usize;
    let in_flight = 16usize;
    let per_client = 150usize;
    // Precompute expected answers on this thread (`ModelServer` replicas
    // are not `Send`); client threads only compare.
    let plans: Vec<Vec<(RecommendRequest, RecommendResponse)>> = (0..clients)
        .map(|c| {
            request_stream(&world, 0xB17A ^ ((c as u64) << 17), per_client)
                .into_iter()
                .map(|req| {
                    let want = direct_answer(&direct, &req);
                    (req, want)
                })
                .collect()
        })
        .collect();

    struct ClientOutcome {
        sent: u64,
        answered: u64,
        shed: u64,
        inversions: u64,
        mismatches: Vec<String>,
    }

    let outcomes: Vec<ClientOutcome> = thread::scope(|scope| {
        let handles: Vec<_> = plans
            .iter()
            .map(|plan| {
                scope.spawn(move || {
                    let mut client = PipelinedClient::new(addr, 1, in_flight)
                        .with_timeout(Duration::from_secs(30));
                    let mut by_corr: HashMap<u64, usize> = HashMap::new();
                    let mut completions = Vec::new();
                    for (i, (req, _)) in plan.iter().enumerate() {
                        let corr = client.submit(req, 0).expect("submit");
                        assert!(by_corr.insert(corr, i).is_none(), "correlation id {corr} reused");
                        // Absorb whatever completed while submitting.
                        while client.in_flight() >= in_flight {
                            completions.push(client.next_completion().expect("completion"));
                        }
                    }
                    completions.extend(client.drain().expect("drain"));

                    let mut answered = 0u64;
                    let mut shed = 0u64;
                    let mut mismatches = Vec::new();
                    for c in &completions {
                        let &idx = by_corr
                            .get(&c.corr_id)
                            .unwrap_or_else(|| panic!("unknown correlation id {}", c.corr_id));
                        match &c.payload {
                            ReplyPayload::Response(resp) => {
                                answered += 1;
                                let (req, want) = &plan[idx];
                                if !resp.same_content(want) {
                                    mismatches.push(format!(
                                        "corr {} for {req:?}: got {resp:?} want {want:?}",
                                        c.corr_id
                                    ));
                                }
                            }
                            ReplyPayload::Error(e) if c.payload.is_shed() => {
                                let _ = e;
                                shed += 1;
                            }
                            ReplyPayload::Error(e) => {
                                mismatches.push(format!(
                                    "corr {}: unexpected error {:?} `{}`",
                                    c.corr_id, e.code, e.message
                                ));
                            }
                        }
                    }
                    // Completions arrive ordered by complete_seq (that is
                    // how the client numbers them); an inversion is any
                    // adjacent pair whose submit order disagrees.
                    let inversions = completions
                        .windows(2)
                        .filter(|w| w[0].submit_seq > w[1].submit_seq)
                        .count() as u64;
                    assert_eq!(
                        completions.len(),
                        plan.len(),
                        "every submission must complete exactly once"
                    );
                    ClientOutcome {
                        sent: plan.len() as u64,
                        answered,
                        shed,
                        inversions,
                        mismatches,
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    let sent: u64 = outcomes.iter().map(|o| o.sent).sum();
    let answered: u64 = outcomes.iter().map(|o| o.answered).sum();
    let shed: u64 = outcomes.iter().map(|o| o.shed).sum();
    let inversions: u64 = outcomes.iter().map(|o| o.inversions).sum();
    let mismatches: Vec<&String> = outcomes.iter().flat_map(|o| &o.mismatches).collect();

    assert!(mismatches.is_empty(), "correlation/content failures:\n{mismatches:#?}");
    assert_eq!(answered + shed, sent, "conservation: answered + shed must equal sent");
    assert!(answered > 0, "the front must have served some of the load");
    assert!(shed > 0, "the tiny queues must have shed under 128 in-flight frames");
    assert!(
        inversions >= 1,
        "pipelining across 4 shards must complete at least one reply out of order"
    );

    // Server-side accounting agrees with the clients' view.
    let count = |route: &str, status: &str| {
        registry.counter_labeled("gateway.requests", &[("route", route), ("status", status)]).get()
    };
    let served_srv = count("recommend_bin", "200") + count("click_bin", "200");
    let shed_srv = count("recommend_bin", "503") + count("click_bin", "503");
    assert_eq!(served_srv, answered, "gateway 200 counters must match client-observed answers");
    assert_eq!(shed_srv, shed, "gateway 503 counters must match client-observed sheds");

    handle.shutdown();
}

/// Shutting the gateway down with frames in flight must resolve every one
/// of them — a real reply, a typed `ShuttingDown` error frame, or a clean
/// EOF mapped to the same — within a bounded drain, never a hang.
#[test]
fn mid_pipeline_shutdown_drains_inflight_without_hanging() {
    let world = World::generate(WorldConfig::tiny(97));
    let parts = ServerParts::from_world(&world);

    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig { shards: 2, batch_max: 2, queue_capacity: 64, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));
    let share = Arc::clone(&front);
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 2, ..Default::default() },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds");
    let addr = handle.addr();

    let stream = request_stream(&world, 0xD_8A14, 48);
    let mut client = PipelinedClient::new(addr, 1, 48).with_timeout(Duration::from_secs(10));
    for req in &stream {
        client.submit(req, 0).expect("submit");
    }
    // Shut down while those frames ride the pipeline. `shutdown()` blocks
    // until workers drained, so run it on a side thread while the client
    // collects.
    let shutter = thread::spawn(move || handle.shutdown());

    let completions = client.drain().expect("drain must resolve, not hang");
    assert_eq!(completions.len(), stream.len(), "every in-flight frame must resolve");
    let mut served = 0u64;
    let mut drained = 0u64;
    for c in &completions {
        match &c.payload {
            ReplyPayload::Response(_) => served += 1,
            ReplyPayload::Error(e)
                if matches!(e.code, ErrorCode::ShuttingDown | ErrorCode::Shed) =>
            {
                drained += 1
            }
            ReplyPayload::Error(e) => {
                panic!("corr {}: unexpected error {:?} `{}`", c.corr_id, e.code, e.message)
            }
        }
    }
    assert_eq!(served + drained, stream.len() as u64);
    shutter.join().expect("shutdown thread");
}

/// The blocking JSON client must survive the server closing its pooled
/// keep-alive connection between requests (stale-connection retry).
#[test]
fn gateway_client_retries_a_stale_pooled_connection() {
    let world = World::generate(WorldConfig::tiny(31));
    let parts = ServerParts::from_world(&world);
    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig {
            workers: 1,
            // Aggressively short idle deadline so the server hangs up on
            // the pooled connection between our two requests.
            read_timeout: Duration::from_millis(100),
            ..Default::default()
        },
        &registry,
        move |_worker| factory_parts.build(),
    )
    .expect("gateway binds");

    let mut client = GatewayClient::new(handle.addr());
    let req = RecommendRequest { tenant: 0, question: None, clicks: vec![] };
    let first = client.recommend(&req).expect("first request");
    // Let the server's idle deadline close the pooled connection.
    thread::sleep(Duration::from_millis(400));
    let second = client
        .recommend(&req)
        .expect("client must transparently retry its stale pooled connection");
    assert!(first.same_content(&second), "cold-start answers are deterministic");
    handle.shutdown();
}
