//! The paper's T+1 deployment cycle (§V-B): retrain offline on the data
//! accumulated through yesterday, serialize the artifacts, upload them to a
//! fresh model server, and keep serving — all without the server ever
//! running GNN layers online.

use intellitag::prelude::*;

fn make_server(world: &World, model: IntelliTag) -> ModelServer<IntelliTag> {
    ModelServer::new(
        model,
        world.build_kb(),
        world.tags.iter().map(|t| t.text()).collect(),
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect(),
        world.click_frequency(),
    )
}

#[test]
fn t_plus_one_retrain_upload_serve() {
    let world = World::generate(WorldConfig::tiny(55));
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let split = split_sessions(&world.sessions, 0);
    let all_train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let test = sequence_examples(&split.test);

    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig { epochs: 3, lr: 5e-3, ..Default::default() },
        ..Default::default()
    };

    // Day T: train on the first half of the log and deploy.
    let day1 = &all_train[..all_train.len() / 2];
    let model_day1 = IntelliTag::train(&graph, &texts, day1, cfg);
    let eval_day1 = evaluate_offline(&model_day1, &test, &world, &ProtocolConfig::default());
    let server = make_server(&world, model_day1);
    let tenant = (0..world.tenants.len()).max_by_key(|&e| world.rqs_by_tenant[e].len()).unwrap();
    let first_tag = world.tenant_tag_pool(tenant)[0];
    let resp_day1 = server.handle_tag_click(tenant, &[first_tag]);
    assert!(!resp_day1.recommended_tags.is_empty());

    // Day T+1: retrain offline on the full accumulated log...
    let model_day2 = IntelliTag::train(&graph, &texts, &all_train, cfg);
    let eval_day2 = evaluate_offline(&model_day2, &test, &world, &ProtocolConfig::default());
    // ...serialize the artifacts (what the trainer uploads)...
    let mut artifact = Vec::new();
    model_day2.save(&mut artifact).unwrap();
    // ...and bring up a fresh server from the uploaded bytes.
    let uploaded = IntelliTag::load(&graph, &texts, cfg, &mut artifact.as_slice()).unwrap();
    let server2 = make_server(&world, uploaded);
    let resp_day2 = server2.handle_tag_click(tenant, &[first_tag]);
    assert!(!resp_day2.recommended_tags.is_empty());

    // The uploaded model is byte-identical in behaviour to the retrained one.
    let direct = make_server(&world, model_day2);
    let resp_direct = direct.handle_tag_click(tenant, &[first_tag]);
    assert_eq!(resp_day2.recommended_tags, resp_direct.recommended_tags);
    assert_eq!(resp_day2.predicted_questions, resp_direct.predicted_questions);

    // More accumulated data should not make the model much worse (it
    // usually improves it; tolerate noise on the tiny world).
    assert!(
        eval_day2.mrr >= eval_day1.mrr - 0.05,
        "day2 MRR {} fell too far below day1 {}",
        eval_day2.mrr,
        eval_day1.mrr
    );
}

#[test]
fn wal_replay_agrees_with_the_offline_t_plus_one_pipeline() {
    // The continuous-training loop must be a faithful transport for the
    // T+1 pipeline: logging a day's click traffic through the WAL, crash-
    // recovering it, and training on the replayed sessions produces an
    // artifact byte-identical to the offline trainer fed the same sessions
    // directly. (Questions ride the same log but feed the Q&A side, not
    // sequence training — they must not perturb the replayed sessions.)
    let world = World::generate(WorldConfig::tiny(55));
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let split = split_sessions(&world.sessions, 0);
    let day2: Vec<&Session> = split.train.iter().skip(split.train.len() / 2).collect();
    let day2_sessions: Vec<Vec<usize>> = day2.iter().map(|s| s.clicks.clone()).collect();

    // Serving logs the day's traffic: one TagClick per session trail,
    // interleaved with the questions users actually asked.
    let metrics = MetricsRegistry::new();
    let dir = std::env::temp_dir().join(format!("itag-t1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("day2.wal");
    let _ = std::fs::remove_file(&path);
    let (mut writer, _) = WalWriter::open(&path, 4, &metrics).unwrap();
    for s in &day2 {
        writer.append(&WalEvent::TagClick { tenant: s.tenant, clicks: s.clicks.clone() }).unwrap();
        if let Some(&rq) = s.consulted.first() {
            writer
                .append(&WalEvent::Question { tenant: s.tenant, text: world.rqs[rq].text() })
                .unwrap();
        }
    }
    drop(writer); // final fsync

    // A crash appends garbage after the last record; recovery must shrug
    // it off and replay exactly the logged day.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&[0x07, 0x99]);
    std::fs::write(&path, &bytes).unwrap();
    let recovered = recover(&path).unwrap();
    assert_eq!(recovered.truncated, 2);
    let replayed = click_sessions(&recovered.events);
    assert_eq!(replayed, day2_sessions, "WAL replay must reproduce the day's sessions exactly");

    // Offline and WAL-replayed training agree to the byte.
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig { epochs: 1, lr: 5e-3, ..Default::default() },
        ..Default::default()
    };
    let offline = IntelliTag::train(&graph, &texts, &day2_sessions, cfg);
    let online = IntelliTag::train(&graph, &texts, &replayed, cfg);
    let (mut a, mut b) = (Vec::new(), Vec::new());
    offline.save(&mut a).unwrap();
    online.save(&mut b).unwrap();
    assert_eq!(a, b, "offline and WAL-replayed artifacts must be byte-identical");
    let _ = std::fs::remove_file(&path);
}
