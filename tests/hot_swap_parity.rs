//! Zero-downtime, epoch-fenced hot-swap with the real IntelliTag model.
//!
//! The continuous-training loop's serving-side guarantee, end to end: a
//! sharded front under concurrent load receives a new model snapshot
//! mid-stream and
//!
//! 1. loses no request — every submission is answered;
//! 2. never mixes versions inside a drain — each response matches either
//!    the old or the new model's oracle byte-for-byte, nothing in between;
//! 3. after the swap settles, serves responses byte-identical to a fresh
//!    server built directly from the published snapshot bytes;
//! 4. surfaces the live version (`ShardedServer::model_version`, the
//!    `serving.model_version` gauge) and never rolls back to a stale one.

use intellitag::prelude::*;
use std::sync::Arc;

fn quick_cfg() -> TagRecConfig {
    TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig {
            epochs: 1,
            lr: 0.01,
            batch_size: 16,
            seed: 7,
            mask_prob: 0.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Everything needed to (re)build a serving replica around any model
/// image — the world-derived data is identical across versions, only the
/// model bytes change.
struct Fixture {
    world: World,
    graph: HetGraph,
    texts: Vec<String>,
    cfg: TagRecConfig,
}

impl Fixture {
    fn new(seed: u64) -> Fixture {
        let world = World::generate(WorldConfig::tiny(seed));
        let graph = world.build_graph();
        let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
        Fixture { world, graph, texts, cfg: quick_cfg() }
    }

    fn train_base(&self) -> IntelliTag {
        let train: Vec<Vec<usize>> = self.world.sessions.iter().map(|s| s.clicks.clone()).collect();
        IntelliTag::train(&self.graph, &self.texts, &train, self.cfg)
    }

    fn load(&self, bytes: &[u8]) -> IntelliTag {
        IntelliTag::load(&self.graph, &self.texts, self.cfg, &mut &bytes[..])
            .expect("snapshot bytes must load")
    }

    fn server(&self, model: IntelliTag) -> ModelServer<IntelliTag> {
        ModelServer::new(
            model,
            self.world.build_kb(),
            self.texts.clone(),
            self.world.rqs.iter().map(|r| r.tags.clone()).collect(),
            (0..self.world.tenants.len()).map(|t| self.world.tenant_tag_pool(t)).collect(),
            self.world.click_frequency(),
        )
    }
}

fn save(model: &IntelliTag) -> Vec<u8> {
    let mut bytes = Vec::new();
    model.save(&mut bytes).expect("in-memory save");
    bytes
}

/// Clicks-only request stream (the batched, model-scoring path) over every
/// tenant's real tag pool.
fn click_stream(world: &World, len: usize) -> Vec<(usize, Vec<usize>)> {
    let tenants = world.tenants.len();
    (0..len)
        .map(|i| {
            let tenant = i % tenants;
            let pool = world.tenant_tag_pool(tenant);
            let n = 1 + i % 2.min(pool.len().max(1)).max(1);
            let clicks = (0..n).map(|k| pool[(i + k * 3) % pool.len()]).collect();
            (tenant, clicks)
        })
        .collect()
}

fn answers<S: TagService>(
    server: &S,
    stream: &[(usize, Vec<usize>)],
) -> Vec<(Vec<usize>, Vec<usize>)> {
    stream
        .iter()
        .map(|(tenant, clicks)| {
            let r = server.handle_tag_click(*tenant, clicks);
            (r.recommended_tags, r.predicted_questions)
        })
        .collect()
}

#[test]
fn hot_swap_under_concurrent_load_loses_nothing_and_reaches_snapshot_parity() {
    let fx = Arc::new(Fixture::new(61));
    let metrics = MetricsRegistry::new();

    // The continuous-training side: base model, one WAL-batch increment,
    // published as snapshot v1 through the registry.
    let mut model = fx.train_base();
    let base_bytes = save(&model);
    let increment: Vec<Vec<usize>> = fx
        .world
        .sessions
        .iter()
        .map(|s| s.clicks.clone())
        .filter(|c| c.len() >= 2)
        .take(6)
        .collect();
    model.train_increment(&increment, 1, 1, &metrics);
    let v1_bytes = save(&model);
    assert_ne!(base_bytes, v1_bytes, "the increment must move the model");

    let registry = SnapshotRegistry::new(4, &metrics);
    let snapshot = registry.publish(v1_bytes, increment.len() as u64, 1, 0);
    assert_eq!(snapshot.version, 1);

    // Serving side: a 2-shard swappable front booted on the base model.
    let swap = ModelSwap::new();
    let stream = click_stream(&fx.world, 40);
    let expected_base = answers(&fx.server(fx.load(&base_bytes)), &stream);
    let expected_v1 = answers(&fx.server(fx.load(&snapshot.bytes)), &stream);
    assert_ne!(expected_base, expected_v1, "oracles must be distinguishable");

    let (fx_f, fx_l) = (Arc::clone(&fx), Arc::clone(&fx));
    let base_for_factory = Arc::new(base_bytes);
    let front = ShardedServer::spawn_swappable(
        ShardConfig { shards: 2, batch_max: 4, queue_capacity: 256, ..Default::default() },
        metrics.clone(),
        move |_shard| fx_f.server(fx_f.load(&base_for_factory)),
        swap.clone(),
        move |_shard, payload| fx_l.load(&payload.bytes),
    );
    assert_eq!(front.model_version(), 0, "boots on the base (unversioned) model");

    // Concurrent clients hammer the front while the snapshot lands
    // mid-stream. Every reply must match one oracle exactly — the epoch
    // fence means there is no third possibility — and none may be lost.
    let rounds = 6usize;
    std::thread::scope(|scope| {
        for client in 0..3usize {
            let (front, stream) = (&front, &stream);
            let (expected_base, expected_v1) = (&expected_base, &expected_v1);
            scope.spawn(move || {
                for round in 0..rounds {
                    for (i, (tenant, clicks)) in stream.iter().enumerate() {
                        let r = TagService::handle_tag_click(front, *tenant, clicks);
                        let got = (r.recommended_tags, r.predicted_questions);
                        assert!(
                            got == expected_base[i] || got == expected_v1[i],
                            "client {client} round {round} request {i}: reply from a \
                             version that never existed: {got:?}"
                        );
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert!(swap.publish(snapshot.to_swap_payload()), "first publish accepted");
        assert!(!swap.publish(snapshot.to_swap_payload()), "duplicate version rejected");
    });

    // Settled: the front reports v1 and serves byte-identical responses to
    // a fresh single-process server built from the snapshot bytes.
    assert_eq!(front.model_version(), 1);
    assert_eq!(answers(&front, &stream), expected_v1, "post-swap parity with the snapshot");
    assert_eq!(metrics.gauge("serving.model_version").get(), 1.0);
    assert!(metrics.counter("serving.swaps").get() >= 1);

    // A stale republish (same version) must not roll anything back.
    assert!(!swap.publish(SwapPayload { version: 1, bytes: Arc::clone(&snapshot.bytes) }));
    assert_eq!(answers(&front, &stream), expected_v1);
    front.shutdown();
}

#[test]
fn snapshot_artifact_survives_disk_and_swaps_into_a_booted_front() {
    // The full artifact path: increment → registry → serialized snapshot →
    // read back from "disk" → published to a front that booted *before*
    // ever hearing of v1 — pre-published payloads apply before the first
    // drain, so even the first request is served by the new model.
    let fx = Arc::new(Fixture::new(33));
    let metrics = MetricsRegistry::new();
    let mut model = fx.train_base();
    let sessions: Vec<Vec<usize>> = fx
        .world
        .sessions
        .iter()
        .map(|s| s.clicks.clone())
        .filter(|c| c.len() >= 2)
        .take(4)
        .collect();
    model.train_increment(&sessions, 1, 9, &metrics);

    let registry = SnapshotRegistry::new(2, &metrics);
    let snapshot = registry.publish(save(&model), sessions.len() as u64, 1, 0);
    let mut wire = Vec::new();
    snapshot.write_to(&mut wire).unwrap();
    let restored = ModelSnapshot::read_from(&mut &wire[..]).unwrap();
    assert_eq!(restored.version, snapshot.version);
    assert_eq!(*restored.bytes, *snapshot.bytes, "disk round trip is bit-exact");

    let swap = ModelSwap::new();
    swap.publish(restored.to_swap_payload());

    let stream = click_stream(&fx.world, 12);
    let expected = answers(&fx.server(fx.load(&restored.bytes)), &stream);
    let (fx_f, fx_l) = (Arc::clone(&fx), Arc::clone(&fx));
    let front = ShardedServer::spawn_swappable(
        ShardConfig { shards: 1, batch_max: 2, queue_capacity: 64, ..Default::default() },
        metrics.clone(),
        move |_shard| fx_f.server(fx_f.train_base()),
        swap.clone(),
        move |_shard, payload| fx_l.load(&payload.bytes),
    );
    assert_eq!(
        answers(&front, &stream),
        expected,
        "a pre-published snapshot must be serving from the very first drain"
    );
    assert_eq!(front.model_version(), 1);
    front.shutdown();
}
