//! End-to-end tests for the HTTP gateway: a real TCP listener, the
//! blocking [`GatewayClient`], and both serving fronts behind it — a
//! per-worker `ModelServer` replica and a shared `Arc<ShardedServer>`.
//!
//! The headline guarantee mirrors the sharded-parity suite one layer up:
//! putting HTTP between the client and the service must not change a
//! single response. A seeded mixed stream (questions, clicks, cold
//! starts, degraded traffic) replayed over the wire must match the direct
//! in-process `TagService` answers content-identically, while a mid-run
//! `/metrics` scrape stays parseable and the request accounting
//! reconciles: answered + shed == sent.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use intellitag::gateway::ClientError;
use intellitag::obs::MetricSample;
use intellitag::prelude::*;

/// Splitmix64 — deterministic stream generator, no external crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Everything a `ModelServer` replica needs, cloneable into factories.
#[derive(Clone)]
struct ServerParts {
    kb: KbWarehouse,
    tag_texts: Vec<String>,
    rq_tags: Vec<Vec<usize>>,
    tenant_tags: Vec<Vec<usize>>,
    counts: Vec<usize>,
    model: Popularity,
}

impl ServerParts {
    fn from_world(world: &World) -> Self {
        let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        ServerParts {
            kb: world.build_kb(),
            tag_texts: world.tags.iter().map(|t| t.text()).collect(),
            rq_tags: world.rqs.iter().map(|r| r.tags.clone()).collect(),
            tenant_tags: (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
            counts: world.click_frequency(),
            model: Popularity::from_sessions(&train, world.tags.len()),
        }
    }

    fn build(&self) -> ModelServer<Popularity> {
        ModelServer::new(
            self.model.clone(),
            self.kb.clone(),
            self.tag_texts.clone(),
            self.rq_tags.clone(),
            self.tenant_tags.clone(),
            self.counts.clone(),
        )
    }
}

/// One wire request of the replayed stream: the route plus its payload.
#[derive(Debug, Clone)]
enum WireCall {
    Recommend(RecommendRequest),
    Click(RecommendRequest),
}

/// A seeded mixed stream: RQ questions (some paraphrased), click trails,
/// cold starts (recommend without a question), and degraded traffic
/// (unknown tenants, empty clicks, bogus tag ids) that must degrade
/// identically over the wire and in process.
fn wire_stream(world: &World, seed: u64, len: usize) -> Vec<WireCall> {
    let mut rng = Rng(seed);
    let tenants = world.tenants.len();
    (0..len)
        .map(|i| {
            let tenant = rng.below(tenants);
            match rng.below(10) {
                0..=3 => {
                    let rq = &world.rqs[rng.below(world.rqs.len())];
                    let mut text = rq.text();
                    if rng.below(2) == 0 {
                        text = format!("please tell me {text} thanks");
                    }
                    WireCall::Recommend(RecommendRequest {
                        tenant,
                        question: Some(text),
                        clicks: vec![],
                    })
                }
                4..=6 => {
                    let pool = world.tenant_tag_pool(tenant);
                    let n = 1 + rng.below(3.min(pool.len().max(1)));
                    let clicks = (0..n).map(|_| pool[rng.below(pool.len())]).collect();
                    WireCall::Click(RecommendRequest { tenant, question: None, clicks })
                }
                7..=8 => {
                    // Cold start: recommend without a question.
                    WireCall::Recommend(RecommendRequest { tenant, question: None, clicks: vec![] })
                }
                _ => match i % 3 {
                    0 => WireCall::Recommend(RecommendRequest {
                        tenant: tenants + 7,
                        question: Some("lost".into()),
                        clicks: vec![],
                    }),
                    1 => {
                        WireCall::Click(RecommendRequest { tenant, question: None, clicks: vec![] })
                    }
                    _ => WireCall::Click(RecommendRequest {
                        tenant,
                        question: None,
                        clicks: vec![usize::MAX / 2, 1_000_000],
                    }),
                },
            }
        })
        .collect()
}

/// The direct (no HTTP) answer for one call, as the wire type.
fn direct_answer<S: TagService>(service: &S, call: &WireCall) -> RecommendResponse {
    match call {
        WireCall::Recommend(req) => match &req.question {
            Some(q) => RecommendResponse::from_question(&service.handle_question(req.tenant, q)),
            None => RecommendResponse::from_cold_start(service.cold_start_tags(req.tenant), 0),
        },
        WireCall::Click(req) => {
            RecommendResponse::from_click(&service.handle_tag_click(req.tenant, &req.clicks))
        }
    }
}

fn wire_answer(
    client: &mut GatewayClient,
    call: &WireCall,
) -> Result<RecommendResponse, ClientError> {
    match call {
        WireCall::Recommend(req) => client.recommend(req),
        WireCall::Click(req) => client.click(req),
    }
}

#[test]
fn gateway_over_model_server_matches_direct_responses() {
    let world = World::generate(WorldConfig::tiny(29));
    let parts = ServerParts::from_world(&world);
    let stream = wire_stream(&world, 404, 120);

    // Direct answers from one in-process replica.
    let direct = parts.build();
    let expected: Vec<RecommendResponse> =
        stream.iter().map(|c| direct_answer(&direct, c)).collect();
    // The stream exercised every route, including degraded traffic.
    assert!(stream.iter().any(|c| matches!(c, WireCall::Recommend(r) if r.question.is_some())));
    assert!(stream.iter().any(|c| matches!(c, WireCall::Recommend(r) if r.question.is_none())));
    assert!(stream.iter().any(|c| matches!(c, WireCall::Click(r) if r.clicks.is_empty())));

    // Two workers, each with its own deterministic replica: whichever
    // worker picks up the connection must produce the same bytes.
    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let factory_registry = registry.clone();
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 2, ..Default::default() },
        &registry,
        // Rebind each replica onto the shared registry so the gateway's
        // wire counters and the replicas' serving.* series reconcile in
        // one scrape.
        move |_worker| factory_parts.build().with_metrics(factory_registry.clone()),
    )
    .expect("gateway binds an ephemeral port");

    let mut client = GatewayClient::new(handle.addr());
    assert!(client.healthz().expect("healthz").contains("\"ok\""));
    for (i, call) in stream.iter().enumerate() {
        let got = wire_answer(&mut client, call).unwrap_or_else(|e| panic!("call {i} failed: {e}"));
        assert!(
            got.same_content(&expected[i]),
            "wire answer {i} diverged:\n  wire   {got:?}\n  direct {:?}",
            expected[i]
        );
    }

    // Every wire request was counted under its route with status 200.
    let n200 = |route: &str| {
        registry.counter_labeled("gateway.requests", &[("route", route), ("status", "200")]).get()
    };
    let recommends = stream.iter().filter(|c| matches!(c, WireCall::Recommend(_))).count() as u64;
    let clicks = stream.len() as u64 - recommends;
    assert_eq!(n200("recommend"), recommends);
    assert_eq!(n200("click"), clicks);
    assert_eq!(n200("healthz"), 1);
    assert_eq!(registry.counter("gateway.shed").get(), 0);
    // The inner replicas ticked one serving.requests per wire request.
    assert_eq!(registry.counter("serving.requests").get(), stream.len() as u64);

    handle.shutdown();
}

#[test]
fn gateway_over_sharded_front_reconciles_under_concurrency() {
    let world = World::generate(WorldConfig::tiny(61));
    let parts = ServerParts::from_world(&world);
    let direct = parts.build();

    let registry = MetricsRegistry::new();
    let shards = 4usize;
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig {
            shards,
            batch_max: 4,
            queue_capacity: 64,
            routing: RoutingPolicy::PowerOfTwoChoices,
            ..Default::default()
        },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));
    // All gateway workers share the one sharded front via `Arc`.
    let share = Arc::clone(&front);
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 3, ..Default::default() },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds");
    let addr = handle.addr();

    let clients = 6usize;
    let per_client = 40usize;
    // `ModelServer` is not `Send` (Rc-based parameters), so compute each
    // client's expected answers up front on this thread; the client
    // threads then only compare.
    let plans: Vec<Vec<(WireCall, RecommendResponse)>> = (0..clients)
        .map(|c| {
            wire_stream(&world, 0x5EED ^ (c as u64) << 13, per_client)
                .into_iter()
                .map(|call| {
                    let want = direct_answer(&direct, &call);
                    (call, want)
                })
                .collect()
        })
        .collect();
    let answered = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    let stop_scraper = AtomicBool::new(false);
    let scrapes = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // A scraper hammers GET /metrics *while* traffic flows; every
        // scrape must parse.
        scope.spawn(|| {
            let mut scraper = GatewayClient::new(addr).with_timeout(Duration::from_millis(5_000));
            while !stop_scraper.load(Ordering::Relaxed) {
                let text = scraper.scrape_metrics().expect("mid-run scrape succeeds");
                let samples = parse_prometheus(&text).expect("mid-run scrape parses");
                assert!(!samples.is_empty());
                scrapes.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(2));
            }
        });

        let mut client_threads = Vec::new();
        for plan in &plans {
            let (answered, shed) = (&answered, &shed);
            client_threads.push(scope.spawn(move || {
                let mut client =
                    GatewayClient::new(addr).with_timeout(Duration::from_millis(5_000));
                for (call, want) in plan {
                    match wire_answer(&mut client, call) {
                        Ok(got) => {
                            answered.fetch_add(1, Ordering::Relaxed);
                            assert!(
                                got.same_content(want),
                                "sharded wire answer diverged:\n  wire   {got:?}\n  direct {want:?}"
                            );
                        }
                        Err(ClientError::Shed) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected client error: {e}"),
                    }
                }
            }));
        }
        // Join the traffic threads (propagating any client panic), then
        // release the scraper so the scope can close.
        for t in client_threads {
            if let Err(p) = t.join() {
                stop_scraper.store(true, Ordering::Relaxed);
                std::panic::resume_unwind(p);
            }
        }
        stop_scraper.store(true, Ordering::Relaxed);
    });

    let sent = (clients * per_client) as u64;
    let answered = answered.into_inner();
    let shed_seen = shed.into_inner();
    assert_eq!(answered + shed_seen, sent, "every request answered or shed, never both");
    assert!(scrapes.into_inner() > 0, "the mid-run scraper must have scraped");

    // Gateway-side accounting agrees with the clients'.
    let route_200: u64 = ["recommend", "click"]
        .iter()
        .map(|r| {
            registry.counter_labeled("gateway.requests", &[("route", r), ("status", "200")]).get()
        })
        .sum();
    assert_eq!(route_200, answered);
    assert_eq!(registry.counter("gateway.shed").get(), shed_seen);

    // One scrape carries all three stages: gateway wire, per-shard
    // routing, and the model-serving layer, in one registry.
    let mut tail = GatewayClient::new(addr);
    let text = tail.scrape_metrics().expect("final scrape");
    handle.shutdown();
    let samples = parse_prometheus(&text).expect("final scrape parses");
    let has = |needle: &str| {
        samples.iter().any(|s| match s {
            MetricSample::Counter { name, .. }
            | MetricSample::Gauge { name, .. }
            | MetricSample::Histogram { name, .. } => name.contains(needle),
        })
    };
    assert!(has("gateway_requests"), "gateway series missing from scrape:\n{text}");
    assert!(has("gateway_request_us"), "gateway latency series missing");
    assert!(has("shard=\"0\""), "per-shard series missing from scrape");
    assert!(has("serving_request_us"), "model-serving series missing");
    // Per-shard request counts sum to the answered total (each accepted
    // request was routed to exactly one shard).
    let per_shard: u64 = (0..shards)
        .map(|s| registry.counter_labeled("sharded.processed", &[("shard", &s.to_string())]).get())
        .sum();
    assert_eq!(per_shard, answered);

    drop(front);
}

/// A minimal reader for `/debug/traces` JSON lines: the spans of one trace
/// as `(name, duration_us, shard, batch_rows)` tuples.
fn spans_of(trace_line: &str) -> Vec<(String, u64, Option<u64>, Option<u64>)> {
    let field = |obj: &str, key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = obj.find(&pat)? + pat.len();
        let rest = &obj[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    };
    let spans_at = trace_line.find("\"spans\":[").expect("spans array") + "\"spans\":[".len();
    let body = &trace_line[spans_at..trace_line.rfind(']').expect("array close")];
    body.split("},")
        .filter(|s| !s.trim().is_empty())
        .map(|obj| {
            let name_at = obj.find("\"name\":\"").expect("span name") + "\"name\":\"".len();
            let name = obj[name_at..].split('"').next().expect("name close").to_string();
            let start = field(obj, "start_us").expect("start_us");
            let end = field(obj, "end_us").expect("end_us");
            (name, end - start, field(obj, "shard"), field(obj, "batch_rows"))
        })
        .collect()
}

#[test]
fn client_trace_ids_round_trip_with_full_span_decomposition() {
    let world = World::generate(WorldConfig::tiny(83));
    let parts = ServerParts::from_world(&world);
    let registry = MetricsRegistry::new();
    // One shard with room to batch: concurrent clicks below pile up behind
    // the worker, so some drains carry several requests.
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig { shards: 1, batch_max: 8, queue_capacity: 64, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));
    let share = Arc::clone(&front);
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 3, ..Default::default() },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds");
    let addr = handle.addr();

    // 1. A client-supplied X-Trace-Id round-trips end to end.
    let mut client = GatewayClient::new(addr);
    let click = RecommendRequest { tenant: 0, question: None, clicks: vec![0] };
    let wall = std::time::Instant::now();
    let (resp, echoed) = client.click_traced(&click, 0xabc123).expect("traced click");
    let wall_us = wall.elapsed().as_micros() as u64;
    assert!(!resp.recommended_tags.is_empty() || !resp.predicted_questions.is_empty());
    assert_eq!(echoed, Some(0xabc123), "gateway must echo the client's trace id");

    let traces = client.debug_traces().expect("debug traces");
    let line = traces
        .lines()
        .find(|l| l.contains("\"trace_id\":\"0000000000abc123\""))
        .unwrap_or_else(|| panic!("trace 0xabc123 not in /debug/traces:\n{traces}"));
    let spans = spans_of(line);
    let names: Vec<&str> = spans.iter().map(|(n, ..)| n.as_str()).collect();
    // Gateway, shard-queue, drain, and per-stage model spans all present.
    for expected in ["gateway", "shard.queue", "drain", "score"] {
        assert!(names.contains(&expected), "missing span {expected}: {names:?}");
    }
    let queue = spans.iter().find(|(n, ..)| n == "shard.queue").expect("queue span");
    assert_eq!(queue.2, Some(0), "queue span must name the serving shard");
    // The disjoint server-side stages (queue wait + drain processing) sum
    // to within the client's measured wall time; the `gateway` span nests
    // them and itself fits the wall time.
    let server_side: u64 =
        spans.iter().filter(|(n, ..)| n == "shard.queue" || n == "drain").map(|s| s.1).sum();
    let gateway_us = spans.iter().find(|(n, ..)| n == "gateway").expect("gateway span").1;
    assert!(server_side <= wall_us, "queue+drain {server_side}us exceeds wall {wall_us}us");
    assert!(gateway_us <= wall_us, "gateway span {gateway_us}us exceeds wall {wall_us}us");
    // Model stages run inside the drain: their sum cannot exceed it.
    let stages: u64 = spans
        .iter()
        .filter(|(n, ..)| ["recall", "rerank", "score", "cache"].contains(&n.as_str()))
        .map(|s| s.1)
        .sum();
    let drain_us = spans.iter().find(|(n, ..)| n == "drain").expect("drain span").1;
    assert!(stages <= drain_us, "stage spans {stages}us exceed their drain {drain_us}us");

    // 2. Batched drains: hammer the single shard from several threads
    // until a multi-request drain happens, then check that a trace from a
    // batched drain carries the drain size on its drain span.
    let batch_hist =
        || registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot().max;
    let mut next_id = 0xba7c_0001u64;
    for _attempt in 0..50 {
        if batch_hist() >= 2 {
            break;
        }
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let base = next_id + t * 100;
                scope.spawn(move || {
                    let mut c = GatewayClient::new(addr);
                    let req = RecommendRequest { tenant: 0, question: None, clicks: vec![0] };
                    for i in 0..8 {
                        let _ = c.click_traced(&req, base + i);
                    }
                });
            }
        });
        next_id += 1000;
    }
    assert!(batch_hist() >= 2, "no multi-request drain after 50 concurrent bursts");
    let traces = client.debug_traces().expect("debug traces after burst");
    let batched = traces.lines().find_map(|l| {
        if !l.contains("\"trace_id\"") {
            return None;
        }
        let spans = spans_of(l);
        spans
            .iter()
            .any(|(n, _, _, rows)| n == "drain" && rows.is_some_and(|r| r >= 2))
            .then_some(spans)
    });
    let spans = batched.expect("a retained trace from a multi-request drain");
    let names: Vec<&str> = spans.iter().map(|(n, ..)| n.as_str()).collect();
    for expected in ["gateway", "shard.queue", "drain", "score"] {
        assert!(names.contains(&expected), "batched trace missing {expected}: {names:?}");
    }

    // 3. The SLO series saw every completed request, split by tier.
    let report = SloReport::from_registry(&registry, 150_000);
    assert!(!report.tiers.is_empty(), "slo.latency_us series missing");
    let total: u64 = report.tiers.iter().map(|t| t.count).sum();
    assert_eq!(total, registry.counter("serving.requests").get());

    handle.shutdown();
    drop(front);
}

#[test]
fn gateway_error_paths_are_clean_json_statuses() {
    let world = World::generate(WorldConfig::tiny(7));
    let parts = ServerParts::from_world(&world);
    let registry = MetricsRegistry::new();
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 1, ..Default::default() },
        &registry,
        move |_| parts.build(),
    )
    .expect("gateway binds");

    let mut client = GatewayClient::new(handle.addr());
    // Unknown route → 404; wrong method on a known route → 405. The
    // public client only speaks the real routes, so drive these through
    // a raw request with an empty body.
    let recommend_on_get = RecommendRequest { tenant: 0, question: None, clicks: vec![] };
    let err = client.click(&RecommendRequest { tenant: 0, question: None, clicks: vec![] });
    assert!(err.is_ok(), "empty click degrades to popularity, not an error: {err:?}");
    let _ = recommend_on_get; // routes below are exercised over raw sockets

    use std::io::{Read as _, Write as _};
    let raw = |wire: &str| -> String {
        let mut s = std::net::TcpStream::connect(handle.addr()).unwrap();
        s.write_all(wire.as_bytes()).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    };
    let r404 =
        raw("GET /nope HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: 0\r\n\r\n");
    assert!(r404.starts_with("HTTP/1.1 404"), "got: {r404}");
    let r405 = raw(
        "GET /v1/recommend HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
    );
    assert!(r405.starts_with("HTTP/1.1 405"), "got: {r405}");
    assert!(r405.contains("Allow: POST"), "405 must name the allowed method: {r405}");
    // Any method outside GET/POST on a known route is still a 405, not a
    // misleading 404; the Allow header names what the route speaks.
    let r405_put = raw(
        "PUT /v1/recommend HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: 0\r\n\r\n",
    );
    assert!(r405_put.starts_with("HTTP/1.1 405"), "got: {r405_put}");
    assert!(r405_put.contains("Allow: POST"), "got: {r405_put}");
    let r405_head =
        raw("HEAD /healthz HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: 0\r\n\r\n");
    assert!(r405_head.starts_with("HTTP/1.1 405"), "got: {r405_head}");
    assert!(r405_head.contains("Allow: GET"), "got: {r405_head}");
    let r400 = raw(
        "POST /v1/click HTTP/1.1\r\nhost: x\r\nconnection: close\r\ncontent-length: 9\r\n\r\nnot-json!",
    );
    assert!(r400.starts_with("HTTP/1.1 400"), "got: {r400}");
    // Protocol garbage gets a 400 too (malformed request line).
    let bad = raw("TOTAL GARBAGE\r\n\r\n");
    assert!(bad.starts_with("HTTP/1.1 400"), "got: {bad}");

    // Unroutable traffic (bad route, bad method, protocol garbage) counts
    // under route=invalid; a bad body on a real route counts under that
    // route with status 400.
    let labeled = |route: &str, status: &str| {
        registry.counter_labeled("gateway.requests", &[("route", route), ("status", status)]).get()
    };
    assert_eq!(labeled("invalid", "404"), 1);
    assert_eq!(labeled("invalid", "405"), 3);
    assert_eq!(labeled("invalid", "400"), 1, "protocol garbage counts as invalid/400");
    assert_eq!(labeled("click", "400"), 1, "bad JSON counts under its route with 400");
    handle.shutdown();
}

#[test]
fn debug_governor_endpoint_serves_live_state_or_absence() {
    let world = World::generate(WorldConfig::tiny(91));
    let parts = ServerParts::from_world(&world);

    // Without a governor the endpoint answers plainly instead of 404ing,
    // so dashboards can probe it unconditionally.
    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig { shards: 1, batch_max: 4, queue_capacity: 32, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));
    let share = Arc::clone(&front);
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 1, ..Default::default() },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds");
    let mut client = GatewayClient::new(handle.addr());
    let body = client.debug_governor().expect("debug governor");
    assert_eq!(body, "no governor running\n");
    handle.shutdown();
    drop(front);

    // With a governor attached, the endpoint serves the governor.* series
    // and the retained decision lines.
    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig { shards: 1, batch_max: 4, queue_capacity: 32, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    ));
    let log = DecisionLog::new(256);
    let governor = GovernorRuntime::spawn(
        GovernorConfig { initial_batch_max: 4, ..Default::default() },
        registry.clone(),
        front.knobs(),
        log.clone(),
        Duration::from_millis(5),
    );
    let share = Arc::clone(&front);
    let handle = Gateway::spawn(
        "127.0.0.1:0",
        GatewayConfig { workers: 1, governor: Some(log.clone()), ..Default::default() },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds");
    let mut client = GatewayClient::new(handle.addr());

    // Let the loop tick at least once, and plant a known decision line so
    // the log half of the body is deterministic.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while registry.counter("governor.ticks").get() == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
    log.push("tick=0 knob=probe old=1 new=2 signal=test".to_string());
    let body = client.debug_governor().expect("debug governor");
    assert!(body.contains("governor.ticks"), "ticks series missing:\n{body}");
    assert!(
        body.contains("tick=0 knob=probe old=1 new=2 signal=test"),
        "planted decision line missing:\n{body}"
    );

    governor.stop();
    handle.shutdown();
}
