//! Cross-crate integration: the full IntelliTag pipeline on a tiny world —
//! generate → mine tags → build graph → train models → evaluate → serve.

use intellitag::mining::{mine_tag_inventory, TagMiner};
use intellitag::prelude::*;

fn tiny_experiment() -> (World, Vec<Vec<usize>>, Vec<intellitag::datagen::SeqExample>) {
    let world = World::generate(WorldConfig::tiny(77));
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let test = sequence_examples(&split.test);
    (world, train, test)
}

#[test]
fn full_pipeline_smoke() {
    let (world, train, test) = tiny_experiment();
    let graph = world.build_graph();

    // 1. Tag mining produces a non-empty inventory overlapping ground truth.
    let sentences = labeled_sentences(&world);
    let miner = TagMiner::train(
        &sentences[..150],
        MinerConfig {
            dim: 24,
            layers: 1,
            heads: 2,
            train: intellitag::mining::TrainConfig { epochs: 3, lr: 5e-3, ..Default::default() },
            ..Default::default()
        },
    );
    let extractor = Extractor::multi_task(&miner);
    let inventory = mine_tag_inventory(&extractor, &sentences[150..]);
    assert!(!inventory.is_empty(), "mining must produce tags");
    let truth: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let hits = inventory.iter().filter(|t| truth.contains(&t.text())).count();
    assert!(
        hits * 2 >= inventory.len(),
        "at least half of mined tags should be real tags ({hits}/{})",
        inventory.len()
    );

    // 2. TagRec training and evaluation beat the random floor.
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig { epochs: 3, lr: 5e-3, ..Default::default() },
        ..Default::default()
    };
    let model = IntelliTag::train(&graph, &texts, &train, cfg);
    let report = evaluate_offline(&model, &test, &world, &ProtocolConfig::default());
    // Random over 50 candidates gives MRR ~0.09.
    assert!(report.mrr > 0.12, "IntelliTag MRR {} must beat chance", report.mrr);

    // 3. The served system answers questions and recommends tags.
    let server = ModelServer::new(
        model,
        world.build_kb(),
        texts,
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect(),
        world.click_frequency(),
    );
    let tenant = (0..world.tenants.len()).max_by_key(|&e| world.rqs_by_tenant[e].len()).unwrap();
    let rq = &world.rqs[world.rqs_by_tenant[tenant][0]];
    let q = server.handle_question(tenant, &rq.text());
    assert!(q.answer.is_some(), "a known question must be answered");
    assert!(!q.recommended_tags.is_empty());
    let click = q.recommended_tags[0];
    let r = server.handle_tag_click(tenant, &[click]);
    assert!(!r.predicted_questions.is_empty());
    assert!(!r.recommended_tags.contains(&click), "clicked tag excluded");
}

#[test]
fn online_simulation_closes_the_loop() {
    let (world, train, _) = tiny_experiment();
    let pop = Popularity::from_sessions(&train, world.tags.len());
    let server = ModelServer::new(
        pop,
        world.build_kb(),
        world.tags.iter().map(|t| t.text()).collect(),
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect(),
        world.click_frequency(),
    );
    let sim = SimConfig { days: 2, sessions_per_day: 50, ..Default::default() };
    let out = simulate_online(&server, &world, &UserModel::default(), &sim);
    assert_eq!(out.sessions, 100);
    // Some sessions must resolve without human help for a popularity policy
    // on a tiny topical world.
    assert!(out.hir < 1.0, "HIR {} should not be total failure", out.hir);
    assert!(out.mean_macro_ctr() > 0.0, "users should click sometimes");
}

#[test]
fn kb_and_graph_views_are_consistent() {
    let world = World::generate(WorldConfig::tiny(5));
    let graph = world.build_graph();
    let kb = world.build_kb();
    assert_eq!(kb.len(), graph.num_rqs());
    // Every RQ's tenant agrees between views.
    for (rq, pair) in kb.iter() {
        assert_eq!(Some(pair.tenant), graph.tenant_of_rq(rq));
    }
    // asc adjacency matches the world's ground truth.
    for (qid, rq) in world.rqs.iter().enumerate() {
        let mut graph_tags = graph.tags_of_rq(qid).to_vec();
        graph_tags.sort_unstable();
        assert_eq!(graph_tags, rq.tags);
    }
}
