//! End-to-end bitwise parity of the serving stack across compute-pool sizes.
//!
//! The compute pool parallelizes GEMM, softmax, layer-norm and attention
//! across *output rows* only; each row's f32 accumulation stays on one
//! thread in serial order, so every kernel is bit-identical across pool
//! sizes by construction. This test pins that guarantee at the top of the
//! stack: training IntelliTag from scratch and replaying a mixed
//! serial + batched click workload must produce byte-identical responses
//! for `pool_threads` in {1, 2, 4} — including batch shapes that don't
//! divide evenly across workers.

use intellitag::prelude::*;

/// A seeded click workload over the world's tenants: short and long
/// histories, repeats, and a couple of degraded requests.
fn click_stream(world: &World, len: usize) -> Vec<(usize, Vec<usize>)> {
    let mut state = 0xD1CEu64;
    let mut next = move |n: usize| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) % n.max(1) as u64) as usize
    };
    let tenants = world.tenants.len();
    (0..len)
        .map(|i| {
            let tenant = next(tenants);
            let pool = world.tenant_tag_pool(tenant);
            match i % 9 {
                7 => (tenant, Vec::new()), // degraded: empty
                8 => (tenant, (0..24).map(|_| pool[next(pool.len())]).collect()), // oversized
                _ => {
                    let n = 1 + next(3.min(pool.len()));
                    (tenant, (0..n).map(|_| pool[next(pool.len())]).collect())
                }
            }
        })
        .collect()
}

fn build_server(world: &World) -> ModelServer<IntelliTag> {
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: intellitag::core::TrainConfig {
            epochs: 1,
            lr: 0.01,
            batch_size: 16,
            seed: 7,
            mask_prob: 0.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = IntelliTag::train(&graph, &texts, &train, cfg);
    ModelServer::new(
        model,
        world.build_kb(),
        texts,
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
        world.click_frequency(),
    )
}

#[test]
fn train_and_serve_are_bit_identical_across_pool_sizes() {
    let world = World::generate(WorldConfig::tiny(73));
    let stream = click_stream(&world, 27);

    // Force every kernel through the pool so small serving shapes exercise
    // the parallel path rather than the serial-fallback threshold.
    set_par_threshold(1);
    let mut per_size: Vec<Vec<(Vec<usize>, Vec<usize>)>> = Vec::new();
    for threads in [1usize, 2, 4] {
        set_pool_threads(threads);
        let server = build_server(&world);
        let mut answers = Vec::new();
        // Serial path: one request at a time.
        for (tenant, clicks) in stream.iter().take(9) {
            let r = server.handle_tag_click(*tenant, clicks);
            answers.push((r.recommended_tags, r.predicted_questions));
        }
        // Batched path: the whole stream as micro-batch drains, including a
        // 27-row drain that doesn't divide across 2 or 4 workers.
        for drain in stream.chunks(13) {
            for r in server.handle_tag_click_batch(drain) {
                answers.push((r.recommended_tags, r.predicted_questions));
            }
        }
        per_size.push(answers);
    }
    set_pool_threads(0);
    set_par_threshold(DEFAULT_PAR_THRESHOLD);

    assert!(
        per_size[0].iter().any(|(tags, _)| !tags.is_empty()),
        "workload never produced recommendations"
    );
    for (i, answers) in per_size.iter().enumerate().skip(1) {
        assert_eq!(
            answers, &per_size[0],
            "end-to-end responses drifted at pool size index {i} (sizes are 1, 2, 4)"
        );
    }
}
