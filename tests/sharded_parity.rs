//! Response parity between the sharded front and the single-process server.
//!
//! The headline guarantee of `ShardedServer` is that shard count and batch
//! size are pure performance knobs: for any request stream, the front must
//! return responses with identical content to a `ModelServer` built from
//! the same data. These tests replay one seeded, mixed request stream —
//! questions, tag clicks, cold starts, plus degraded inputs (unknown
//! tenants, empty click lists, out-of-range tag ids) — against both fronts
//! for every shard count in {1, 2, 4} crossed with batch sizes {1, 8}.

use intellitag::obs::MetricSample;
use intellitag::prelude::*;

/// Minimal deterministic RNG (splitmix64) so the stream generator needs no
/// external crate and every run sees the same traffic.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One request of the replayed stream.
#[derive(Debug, Clone)]
enum Request {
    Question { tenant: usize, text: String },
    TagClick { tenant: usize, clicks: Vec<usize> },
    ColdStart { tenant: usize },
}

/// A seeded mixed-traffic stream over the world's tenants: RQ questions
/// (verbatim and lightly paraphrased), click subsets of each tenant's pool,
/// cold starts, and a sprinkle of malformed requests that must degrade
/// identically on both fronts.
fn request_stream(world: &World, seed: u64, len: usize) -> Vec<Request> {
    let mut rng = Rng(seed);
    let tenants = world.tenants.len();
    let mut stream = Vec::with_capacity(len);
    for i in 0..len {
        let tenant = rng.below(tenants);
        let req = match rng.below(10) {
            0..=3 => {
                let rq = &world.rqs[rng.below(world.rqs.len())];
                let mut text = rq.text();
                if rng.below(2) == 0 {
                    text = format!("please tell me {text} thanks");
                }
                Request::Question { tenant, text }
            }
            4..=7 => {
                let pool = world.tenant_tag_pool(tenant);
                let n = 1 + rng.below(3.min(pool.len().max(1)));
                let clicks = (0..n).map(|_| pool[rng.below(pool.len())]).collect();
                Request::TagClick { tenant, clicks }
            }
            8 => Request::ColdStart { tenant },
            // Degraded and edge traffic: bad tenants, empty clicks, bogus
            // tag ids, and oversized click histories (longer than the
            // model's context window — must clip identically on both paths).
            _ => match i % 4 {
                0 => Request::Question { tenant: tenants + 7, text: "lost".into() },
                1 => Request::TagClick { tenant, clicks: vec![] },
                2 => Request::TagClick { tenant, clicks: vec![usize::MAX / 2, 1_000_000] },
                _ => {
                    let pool = world.tenant_tag_pool(tenant);
                    let clicks = (0..24).map(|_| pool[rng.below(pool.len())]).collect();
                    Request::TagClick { tenant, clicks }
                }
            },
        };
        stream.push(req);
    }
    stream
}

/// Everything a `ModelServer` replica needs, cloneable into the per-shard
/// factory closure.
#[derive(Clone)]
struct ServerParts {
    kb: KbWarehouse,
    tag_texts: Vec<String>,
    rq_tags: Vec<Vec<usize>>,
    tenant_tags: Vec<Vec<usize>>,
    counts: Vec<usize>,
    model: Popularity,
}

impl ServerParts {
    fn from_world(world: &World) -> Self {
        let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        ServerParts {
            kb: world.build_kb(),
            tag_texts: world.tags.iter().map(|t| t.text()).collect(),
            rq_tags: world.rqs.iter().map(|r| r.tags.clone()).collect(),
            tenant_tags: (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
            counts: world.click_frequency(),
            model: Popularity::from_sessions(&train, world.tags.len()),
        }
    }

    fn build(&self) -> ModelServer<Popularity> {
        ModelServer::new(
            self.model.clone(),
            self.kb.clone(),
            self.tag_texts.clone(),
            self.rq_tags.clone(),
            self.tenant_tags.clone(),
            self.counts.clone(),
        )
    }
}

/// The replayed stream's responses, latency stripped (latency is the one
/// field that legitimately differs across fronts).
#[derive(Debug, PartialEq)]
enum Answer {
    Question { rq: Option<usize>, answer: Option<String>, tags: Vec<usize> },
    TagClick { tags: Vec<usize>, questions: Vec<usize> },
    ColdStart(Vec<usize>),
}

fn replay<S: TagService>(server: &S, stream: &[Request]) -> Vec<Answer> {
    stream
        .iter()
        .map(|req| match req {
            Request::Question { tenant, text } => {
                let r = server.handle_question(*tenant, text);
                Answer::Question { rq: r.rq, answer: r.answer, tags: r.recommended_tags }
            }
            Request::TagClick { tenant, clicks } => {
                let r = server.handle_tag_click(*tenant, clicks);
                Answer::TagClick { tags: r.recommended_tags, questions: r.predicted_questions }
            }
            Request::ColdStart { tenant } => Answer::ColdStart(server.cold_start_tags(*tenant)),
        })
        .collect()
}

#[test]
fn sharded_front_matches_single_process_across_knobs() {
    let world = World::generate(WorldConfig::tiny(41));
    let parts = ServerParts::from_world(&world);
    let stream = request_stream(&world, 2024, 160);

    let single = parts.build();
    let expected = replay(&single, &stream);
    // The stream exercised every request kind, including degraded ones.
    assert!(expected.iter().any(|a| matches!(a, Answer::Question { rq: Some(_), .. })));
    assert!(expected
        .iter()
        .any(|a| matches!(a, Answer::TagClick { tags, .. } if !tags.is_empty())));
    assert!(expected.iter().any(|a| matches!(a, Answer::ColdStart(t) if !t.is_empty())));
    assert!(expected.iter().any(|a| matches!(a, Answer::TagClick { tags, .. } if tags.is_empty())));

    for shards in [1usize, 2, 4] {
        for batch_max in [1usize, 8] {
            let registry = MetricsRegistry::new();
            let cfg = ShardConfig { shards, batch_max, queue_capacity: 64, ..Default::default() };
            let factory_parts = parts.clone();
            let front =
                ShardedServer::spawn(cfg, registry.clone(), move |_shard| factory_parts.build());
            let got = replay(&front, &stream);
            assert_eq!(
                got, expected,
                "response parity broke at shards={shards} batch_max={batch_max}"
            );
            front.shutdown();
        }
    }
}

#[test]
fn same_content_parity_holds_per_response() {
    // The struct-level `same_content` comparisons (what downstream users
    // call) must agree with the stripped-answer equality above.
    let world = World::generate(WorldConfig::tiny(17));
    let parts = ServerParts::from_world(&world);
    let single = parts.build();
    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = ShardedServer::spawn(
        ShardConfig { shards: 4, batch_max: 8, queue_capacity: 32, ..Default::default() },
        registry,
        move |_shard| factory_parts.build(),
    );
    for req in request_stream(&world, 7, 80) {
        match req {
            Request::Question { tenant, text } => {
                let a = single.handle_question(tenant, &text);
                let b = TagService::handle_question(&front, tenant, &text);
                assert!(a.same_content(&b), "question diverged: {a:?} vs {b:?}");
            }
            Request::TagClick { tenant, clicks } => {
                let a = single.handle_tag_click(tenant, &clicks);
                let b = TagService::handle_tag_click(&front, tenant, &clicks);
                assert!(a.same_content(&b), "tag click diverged: {a:?} vs {b:?}");
            }
            Request::ColdStart { tenant } => {
                assert_eq!(single.cold_start_tags(tenant), front.cold_start_tags(tenant));
            }
        }
    }
    front.shutdown();
}

/// A `ModelServer` over the real IntelliTag model, retrained from scratch.
///
/// IntelliTag holds `Rc`-based parameters, so replicas cannot be cloned
/// across worker threads; each shard's factory retrains deterministically
/// from the same world — which is also the sharded deployment story for
/// the real model (same checkpoint loaded per replica).
fn build_intellitag_server(world: &World) -> ModelServer<IntelliTag> {
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig {
            epochs: 1,
            lr: 0.01,
            batch_size: 16,
            seed: 7,
            mask_prob: 0.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = IntelliTag::train(&graph, &texts, &train, cfg);
    ModelServer::new(
        model,
        world.build_kb(),
        texts,
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
        world.click_frequency(),
    )
}

#[test]
fn intellitag_replicas_match_single_process_across_knobs() {
    // The batched scoring path runs one stacked transformer forward per
    // drain; parity here pins that the real model — contextual attention,
    // context clipping at MAX_CTX (the stream includes 24-click histories),
    // z-table gathers — returns byte-identical responses through the
    // sharded front at every batch knob.
    let world = World::generate(WorldConfig::tiny(61));
    let stream = request_stream(&world, 4242, 60);
    let single = build_intellitag_server(&world);
    let expected = replay(&single, &stream);
    assert!(expected
        .iter()
        .any(|a| matches!(a, Answer::TagClick { tags, .. } if !tags.is_empty())));

    let world = std::sync::Arc::new(world);
    for shards in [1usize, 2] {
        for batch_max in [1usize, 8] {
            let registry = MetricsRegistry::new();
            let cfg = ShardConfig { shards, batch_max, queue_capacity: 64, ..Default::default() };
            let w = std::sync::Arc::clone(&world);
            let front =
                ShardedServer::spawn(cfg, registry, move |_shard| build_intellitag_server(&w));
            let got = replay(&front, &stream);
            assert_eq!(
                got, expected,
                "IntelliTag parity broke at shards={shards} batch_max={batch_max}"
            );
            front.shutdown();
        }
    }
}

#[test]
fn concurrent_clients_keep_parity_and_fill_batches() {
    // Serial replay hands the worker one job at a time, so every drain is a
    // singleton. Real batching only happens under concurrent submission:
    // interleaved client threads must still get byte-identical responses,
    // and at least one drain must carry multiple click rows through
    // `handle_tag_click_batch`.
    let world = World::generate(WorldConfig::tiny(23));
    let parts = ServerParts::from_world(&world);
    let single = parts.build();
    // Clicks-only stream so every request takes the batched tag-click path.
    let stream: Vec<Request> = request_stream(&world, 313, 600)
        .into_iter()
        .filter(|r| matches!(r, Request::TagClick { .. }))
        .collect();
    let expected = replay(&single, &stream);

    // Multi-row drains under concurrency are overwhelmingly likely but not
    // guaranteed on any single run; retry a few rounds (parity must hold on
    // every round regardless).
    let mut max_rows = 0;
    for _round in 0..5 {
        let registry = MetricsRegistry::new();
        let factory_parts = parts.clone();
        let front = ShardedServer::spawn(
            ShardConfig { shards: 1, batch_max: 8, queue_capacity: 256, ..Default::default() },
            registry.clone(),
            move |_shard| factory_parts.build(),
        );
        let clients = 6;
        std::thread::scope(|scope| {
            for c in 0..clients {
                let (front, stream, expected) = (&front, &stream, &expected);
                scope.spawn(move || {
                    for (i, req) in stream.iter().enumerate().skip(c).step_by(clients) {
                        let Request::TagClick { tenant, clicks } = req else { unreachable!() };
                        let got = TagService::handle_tag_click(front, *tenant, clicks);
                        let Answer::TagClick { tags, questions } = &expected[i] else {
                            unreachable!()
                        };
                        assert_eq!(&got.recommended_tags, tags, "tags diverged at request {i}");
                        assert_eq!(
                            &got.predicted_questions, questions,
                            "questions diverged at request {i}"
                        );
                    }
                });
            }
        });
        front.shutdown();
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert_eq!(rows.sum, stream.len() as u64, "every click scored in exactly one drain");
        max_rows = max_rows.max(rows.max);
        if max_rows >= 2 {
            break;
        }
    }
    assert!(max_rows >= 2, "concurrent clients never produced a multi-row drain");
}

#[test]
fn all_question_stream_records_no_click_batches() {
    // A 100%-question stream through a batched front: full response parity,
    // and the click-batch machinery must stay completely idle.
    let world = World::generate(WorldConfig::tiny(9));
    let parts = ServerParts::from_world(&world);
    let single = parts.build();
    let stream: Vec<Request> = world
        .rqs
        .iter()
        .take(40)
        .enumerate()
        .map(|(i, rq)| Request::Question { tenant: i % world.tenants.len(), text: rq.text() })
        .collect();
    let expected = replay(&single, &stream);
    assert!(expected.iter().any(|a| matches!(a, Answer::Question { rq: Some(_), .. })));

    let shards = 2usize;
    let registry = MetricsRegistry::new();
    let factory_parts = parts.clone();
    let front = ShardedServer::spawn(
        ShardConfig { shards, batch_max: 8, queue_capacity: 64, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    );
    assert_eq!(replay(&front, &stream), expected);
    front.shutdown();
    for shard in 0..shards {
        let rows = registry
            .histogram_labeled("sharded.batch_rows", &[("shard", &shard.to_string())])
            .snapshot();
        assert_eq!(rows.count, 0, "question-only traffic ticked batch_rows on shard {shard}");
    }
}

#[test]
fn per_shard_series_render_in_prometheus_output() {
    // Acceptance criterion: after traffic, the shared registry's Prometheus
    // rendering carries one labeled series per shard, and the merged view
    // agrees with the sum.
    let world = World::generate(WorldConfig::tiny(5));
    let parts = ServerParts::from_world(&world);
    let registry = MetricsRegistry::new();
    let shards = 3usize;
    let factory_parts = parts.clone();
    let front = ShardedServer::spawn(
        ShardConfig { shards, batch_max: 4, queue_capacity: 64, ..Default::default() },
        registry.clone(),
        move |_shard| factory_parts.build(),
    );
    let stream = request_stream(&world, 99, 90);
    let n = stream.len() as u64;
    let _ = replay(&front, &stream);

    let text = registry.render_prometheus();
    let mut per_shard_total = 0;
    for shard in 0..shards {
        let needle = format!("sharded_request_us_count{{shard=\"{shard}\"}}");
        assert!(text.contains(&needle), "missing per-shard series {needle} in:\n{text}");
        per_shard_total += registry
            .histogram_labeled("sharded.request_us", &[("shard", &shard.to_string())])
            .count();
    }
    assert_eq!(per_shard_total, n, "every request recorded on exactly one shard");
    assert_eq!(front.front_latency_snapshot().count, n, "merged view covers all shards");

    // The scrape round-trips: parsing the rendering recovers the same
    // per-shard series (base name sanitized, label block preserved).
    let parsed = parse_prometheus(&text).expect("rendered output must parse");
    for shard in 0..shards {
        let name = format!("sharded_request_us{{shard=\"{shard}\"}}");
        let snap = parsed
            .iter()
            .find_map(|s| match s {
                MetricSample::Histogram { name: n, snapshot } if *n == name => Some(snapshot),
                _ => None,
            })
            .unwrap_or_else(|| panic!("parsed scrape lost series {name}"));
        assert!(snap.count > 0, "parsed series {name} is empty");
    }
    front.shutdown();
}
