//! # intellitag
//!
//! A from-scratch Rust reproduction of **"IntelliTag: An Intelligent Cloud
//! Customer Service System Based on Tag Recommendation"** (Yang et al.,
//! ICDE 2021, Ant Group).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`tensor`] | tape-based autograd engine (Matrix/Tensor/Param/AdamW) |
//! | [`nn`] | Linear, Embedding, MultiHeadAttention, Transformer, GRU |
//! | [`text`] | tokenizer, TF/IDF/PMI stats, DBSCAN, hashed embeddings |
//! | [`graph`] | the T/Q/E heterogeneous graph and its four metapaths |
//! | [`search`] | BM25 inverted index + KB warehouse (ElasticSearch stand-in) |
//! | [`datagen`] | the synthetic customer-service world and user simulator |
//! | [`mining`] | multi-task tag miner, rules, distillation, Q&A collection |
//! | [`baselines`] | GRU4Rec, SR-GNN, metapath2vec, BERT4Rec |
//! | [`eval`] | MRR/NDCG/HR, P/R/F1, CTR, HIR, latency accumulators |
//! | [`obs`] | metrics registry, latency histograms, span timing, exporters |
//! | [`core`] | the IntelliTag TagRec model, model server and A/B simulator |
//! | [`gateway`] | std-only HTTP/1.1 serving gateway, JSON codec, client |
//! | [`online`] | continuous training: click WAL, incremental trainer, snapshots, hot-swap |
//!
//! ## Quickstart
//!
//! ```no_run
//! use intellitag::prelude::*;
//!
//! // 1. A synthetic tenant/tag/session world (the proprietary-data stand-in).
//! let world = World::generate(WorldConfig::small(42));
//! let graph = world.build_graph();
//!
//! // 2. Train the paper's model on the click sessions.
//! let split = split_sessions(&world.sessions, 0);
//! let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
//! let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
//! let model = IntelliTag::train(&graph, &texts, &train, TagRecConfig::default());
//!
//! // 3. Evaluate with the paper's 49-negative ranking protocol.
//! let test = sequence_examples(&split.test);
//! let report = evaluate_offline(&model, &test, &world, &ProtocolConfig::default());
//! println!("{}", report.table_row("IntelliTag"));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench` for
//! the harnesses that regenerate every table and figure of the paper.

pub use intellitag_baselines as baselines;
pub use intellitag_core as core;
pub use intellitag_datagen as datagen;
pub use intellitag_eval as eval;
pub use intellitag_gateway as gateway;
pub use intellitag_graph as graph;
pub use intellitag_mining as mining;
pub use intellitag_nn as nn;
pub use intellitag_obs as obs;
pub use intellitag_online as online;
pub use intellitag_search as search;
pub use intellitag_tensor as tensor;
pub use intellitag_text as text;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use intellitag_baselines::{
        Bert4Rec, Gru4Rec, Instrumented, M2vConfig, Metapath2Vec, Popularity, SequenceRecommender,
        SrGnn, TrainConfig,
    };
    pub use intellitag_core::{
        evaluate_offline, simulate_online, Governor, GovernorConfig, GovernorRuntime, IntelliTag,
        ModelServer, ModelSwap, PendingReply, ProtocolConfig, RoutingPolicy, RuntimeKnobs,
        ShardConfig, ShardedServer, ShedReason, SimConfig, Submission, SwapPayload, TagRecConfig,
        TagService,
    };
    pub use intellitag_datagen::{
        labeled_sentences, sequence_examples, split_sessions, Session, UserModel, World,
        WorldConfig,
    };
    pub use intellitag_eval::{RankingAccumulator, RankingReport};
    pub use intellitag_gateway::{
        Completion, ErrorCode, ErrorFrame, EventSink, Gateway, GatewayClient, GatewayConfig,
        GatewayHandle, PipelinedClient, RecommendRequest, RecommendResponse, ReplyPayload,
    };
    pub use intellitag_graph::{HetGraph, Metapath, ALL_METAPATHS};
    pub use intellitag_mining::{
        evaluate_extractor, Extractor, MinerConfig, MiningTask, RuleFilter, TagMiner,
    };
    pub use intellitag_obs::{
        format_trace_id, parse_prometheus, parse_trace_id, render_json_lines, render_prometheus,
        tenant_tier, DecisionLog, FinishedTrace, Histogram, HistogramSnapshot, MetricsRegistry,
        RuntimeSnapshot, SloReport, SpanTimer, TraceCollector, TraceConfig, TraceHandle,
        TraceIdGen,
    };
    pub use intellitag_online::{
        click_sessions, recover, ModelSnapshot, OnlineTrainer, SnapshotRegistry, TrainerConfig,
        WalEvent, WalSink, WalWriter,
    };
    pub use intellitag_search::KbWarehouse;
    pub use intellitag_tensor::{
        par_threshold, pool_threads, set_par_threshold, set_pool_threads, DEFAULT_PAR_THRESHOLD,
    };
}
