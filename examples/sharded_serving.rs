//! The sharded, batched serving front end-to-end: spawn `ShardedServer`
//! over per-shard `ModelServer` replicas, drive mixed tenant traffic,
//! demonstrate overload shedding on a deliberately tiny queue, and dump the
//! per-shard observability (labeled Prometheus series, batch sizes, merged
//! front latency).
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use intellitag::prelude::*;

/// Splitmix64: a tiny deterministic traffic mixer.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

fn spawn_front(world: &World, cfg: ShardConfig, registry: MetricsRegistry) -> ShardedServer {
    // Everything a replica needs, cloned into the factory: the factory runs
    // once inside each worker thread (models are not Send — replicas are
    // built where they serve).
    let kb = world.build_kb();
    let tag_texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let rq_tags: Vec<Vec<usize>> = world.rqs.iter().map(|r| r.tags.clone()).collect();
    let tenant_tags: Vec<Vec<usize>> =
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect();
    let counts = world.click_frequency();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let model = Popularity::from_sessions(&train, world.tags.len());
    ShardedServer::spawn(cfg, registry, move |shard| {
        println!("  shard {shard}: replica built");
        ModelServer::new(
            model.clone(),
            kb.clone(),
            tag_texts.clone(),
            rq_tags.clone(),
            tenant_tags.clone(),
            counts.clone(),
        )
    })
}

fn main() {
    let world = World::generate(WorldConfig::tiny(77));
    let tenants = world.tenants.len();
    let questions: Vec<String> = world.rqs.iter().take(12).map(|r| r.text()).collect();

    // ---- a 4-shard front under normal load ------------------------------
    println!("spawning a 4-shard front (batch_max 8, queue 256) ...");
    let registry = MetricsRegistry::new();
    let cfg = ShardConfig { shards: 4, batch_max: 8, queue_capacity: 256, ..Default::default() };
    let front = spawn_front(&world, cfg, registry.clone());
    println!("policy: {} | tenant t is served by shard t % {}", front.policy(), cfg.shards);

    let requests = 600;
    println!("driving {requests} mixed requests from 4 client threads ...");
    std::thread::scope(|scope| {
        for client in 0..4u64 {
            let front = &front;
            let questions = &questions;
            let world = &world;
            scope.spawn(move || {
                let mut rng = Rng(client.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 42);
                for _ in 0..requests / 4 {
                    let tenant = rng.below(tenants);
                    match rng.below(3) {
                        0 => {
                            let q = &questions[rng.below(questions.len())];
                            let r = front.handle_question(tenant, q);
                            assert!(r.latency_us > 0);
                        }
                        1 => {
                            let pool = world.tenant_tag_pool(tenant);
                            let clicks = vec![pool[rng.below(pool.len())]];
                            let _ = front.handle_tag_click(tenant, &clicks);
                        }
                        _ => {
                            let _ = front.cold_start_tags(tenant);
                        }
                    }
                }
            });
        }
    });

    println!("\nper-shard stats:");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "shard", "processed", "front p50", "front p99", "mean batch"
    );
    for shard in 0..cfg.shards {
        let label = [("shard", shard.to_string())];
        let label: Vec<(&str, &str)> = label.iter().map(|(k, v)| (*k, v.as_str())).collect();
        let processed = registry.counter_labeled("sharded.processed", &label).get();
        let lat = registry.histogram_labeled("sharded.request_us", &label).snapshot();
        let batch = registry.histogram_labeled("sharded.batch", &label).snapshot();
        let mean_batch = if batch.count > 0 { batch.sum as f64 / batch.count as f64 } else { 0.0 };
        println!(
            "{:<8} {:>10} {:>9} us {:>9} us {:>12.2}",
            shard,
            processed,
            lat.quantile(0.5),
            lat.quantile(0.99),
            mean_batch
        );
    }
    let merged = front.front_latency_snapshot();
    println!(
        "merged front latency: n={} p50={} us p99={} us (server-side: n={})",
        merged.count,
        merged.quantile(0.5),
        merged.quantile(0.99),
        registry.histogram("serving.request_us").count(),
    );
    front.shutdown();
    println!("front drained and joined cleanly");

    // ---- overload: a tiny queue sheds instead of blocking ----------------
    println!("\noverloading a 1-shard front (batch_max 1, queue 1) with try_ traffic ...");
    let overload_registry = MetricsRegistry::new();
    let small = ShardConfig { shards: 1, batch_max: 1, queue_capacity: 1, ..Default::default() };
    let overloaded = spawn_front(&world, small, overload_registry.clone());
    let (mut ok, mut shed) = (0u64, 0u64);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client in 0..6u64 {
            let front = &overloaded;
            handles.push(scope.spawn(move || {
                let mut rng = Rng(client ^ 0xBEEF);
                let (mut ok, mut shed) = (0u64, 0u64);
                for _ in 0..100 {
                    match front.try_handle_tag_click(rng.below(tenants), &[rng.below(4)]) {
                        Ok(_) => ok += 1,
                        Err(ShedReason::Overloaded) => shed += 1,
                        Err(ShedReason::ShuttingDown) => unreachable!("front is live"),
                    }
                }
                (ok, shed)
            }));
        }
        for h in handles {
            let (o, s) = h.join().unwrap();
            ok += o;
            shed += s;
        }
    });
    println!(
        "answered {ok}, shed {shed} (front counted {}), total {}",
        overloaded.shed_count(),
        ok + shed
    );
    overloaded.shutdown();

    // ---- the scrape surface ---------------------------------------------
    println!("\nPrometheus exposition (sharded.* series only):");
    for line in registry.render_prometheus().lines() {
        if line.contains("sharded_") && !line.contains("_bucket") {
            println!("  {line}");
        }
    }

    println!(
        "\noverloaded front's shed series ({} events):",
        overload_registry.counter("sharded.shed_total").get()
    );
    for line in overload_registry.render_prometheus().lines() {
        if line.contains("sharded_shed") {
            println!("  {line}");
        }
    }
}
