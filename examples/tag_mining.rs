//! Tag mining end to end (paper §III): train the multi-task miner, extract
//! a tag inventory (Table I analogue), compare against the single-task
//! baseline, apply the rule filter, distill a fast student, and run the
//! automatic Q&A collection pipeline.
//!
//! ```sh
//! cargo run --release --example tag_mining
//! ```

use intellitag::mining::{
    collect_qa_pairs, evaluate_extractor, inference_time, mine_tag_inventory, CollectConfig,
    Extractor, MinerConfig, MiningTask, RuleFilter, TagMiner, UserQuestion,
};
use intellitag::prelude::*;

fn main() {
    // A deliberately hard regime: little supervision and noisy annotations,
    // mirroring the paper's mid-70s-to-80% F1 band on real data.
    let mut wc = WorldConfig::small(7);
    wc.label_noise = 0.15;
    let world = World::generate(wc);
    let data = labeled_sentences(&world);
    let (train, test) = data.split_at(330);
    let test = &test[..400];
    println!("labeled RQ sentences: train={} test={}", train.len(), test.len());

    // ----- multi-task vs single-task ---------------------------------------
    let base = MinerConfig {
        train: intellitag::mining::TrainConfig { epochs: 3, lr: 3e-3, ..Default::default() },
        ..Default::default()
    };
    println!("\ntraining MT model (joint segmentation + weighting) ...");
    let mt = TagMiner::train(train, base);
    println!("training ST models (separate tasks) ...");
    let st_seg = TagMiner::train(train, MinerConfig { task: MiningTask::SegmentationOnly, ..base });
    let st_w = TagMiner::train(train, MinerConfig { task: MiningTask::WeightingOnly, ..base });

    let mt_ex = Extractor::multi_task(&mt);
    let st_ex = Extractor::single_task(&st_seg, &st_w);
    println!("\n== Span-level evaluation (Table III analogue) ==");
    println!("{:<20} {:>7}  {:>7}  {:>7}", "Training Mode", "Prec", "Recall", "F1");
    println!("{}", evaluate_extractor(&st_ex, test).table_row("ST model"));
    println!("{}", evaluate_extractor(&mt_ex, test).table_row("MT model"));

    // ----- rules ------------------------------------------------------------
    let corpus: Vec<&[String]> = train.iter().map(|s| s.tokens.as_slice()).collect();
    let mut rules = RuleFilter::from_corpus(corpus);
    rules.min_score = 0.55;
    let mt_rules = Extractor::multi_task(&mt).with_rules(&rules);
    println!("{}", evaluate_extractor(&mt_rules, test).table_row("MT model + r"));

    // ----- distillation ------------------------------------------------------
    println!("\ndistilling a {}-layer student ...", base.student().layers);
    let student = TagMiner::distill(&mt, train, base.student());
    let student_ex = Extractor::multi_task(&student).with_rules(&rules);
    println!("{}", evaluate_extractor(&student_ex, test).table_row("MT model + d + r"));
    let t_teacher = inference_time(&mt_rules, test);
    let t_student = inference_time(&student_ex, test);
    println!(
        "inference over {} sentences: teacher {:?}  student {:?}  ({:.1}x faster)",
        test.len(),
        t_teacher,
        t_student,
        t_teacher.as_secs_f64() / t_student.as_secs_f64().max(1e-9)
    );

    // ----- mined inventory (Table I analogue) --------------------------------
    let inventory = mine_tag_inventory(&mt_rules, test);
    println!("\n== Sample mined tags (Table I analogue) ==");
    println!("{:<28} example RQ", "Tag");
    for tag in inventory.iter().take(8) {
        let rq = test
            .iter()
            .find(|s| s.tokens.join(" ").contains(&tag.text()))
            .map(|s| s.tokens.join(" "))
            .unwrap_or_default();
        println!("{:<28} {rq}", tag.text());
    }

    // ----- automatic Q&A collection (paper §III-A) ---------------------------
    println!("\n== Automatic Q&A collection ==");
    let questions = vec![
        UserQuestion {
            text: "how do i reset my forgotten passphrase".into(),
            reply: Some("Open account settings and choose reset passphrase.".into()),
        },
        UserQuestion { text: "reset forgotten passphrase how".into(), reply: None },
        UserQuestion {
            text: "i want to reset the forgotten passphrase please".into(),
            reply: Some("Use the passphrase reset menu under security.".into()),
        },
        UserQuestion { text: "how to reset forgotten passphrase now".into(), reply: None },
    ];
    let existing: Vec<String> = world.rqs.iter().take(50).map(|r| r.text()).collect();
    let pairs = collect_qa_pairs(&questions, &existing, &CollectConfig::default());
    for p in &pairs {
        println!("new RQ (cluster of {}): {}", p.cluster_size, p.question);
        println!("selected answer:        {}", p.answer);
    }
    if pairs.is_empty() {
        println!("(no uncovered clusters this run)");
    }
}
