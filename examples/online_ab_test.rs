//! Online A/B simulation (paper §VI-F): three traffic buckets —
//! metapath2vec, BERT4Rec and IntelliTag — serve the same simulated user
//! population; daily macro-averaged CTR (Fig. 7), HIR and response latency
//! (Table VI) are reported.
//!
//! ```sh
//! cargo run --release --example online_ab_test
//! ```

use intellitag::prelude::*;

fn main() {
    // The sparse regime: many long-tail tags and small tenants, where the
    // paper's online findings (macro-CTR, HIR) live.
    let world = World::generate(WorldConfig::sparse_eval(23));
    let graph = world.build_graph();
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();

    println!("training the three bucket policies ...");
    let m2v = Metapath2Vec::train(&graph, &M2vConfig::default());
    let tc = TrainConfig { epochs: 3, lr: 3e-3, ..Default::default() };
    let bert = Bert4Rec::train(&train, world.tags.len(), 64, 2, 4, &tc);
    let intellitag =
        IntelliTag::train(&graph, &texts, &train, TagRecConfig { train: tc, ..Default::default() });

    let sim = SimConfig { days: 10, sessions_per_day: 150, ..Default::default() };
    let user = UserModel::default();
    let make_server = |name: &str| {
        println!("bucket: {name}");
        (
            world.build_kb(),
            texts.clone(),
            world.rqs.iter().map(|r| r.tags.clone()).collect::<Vec<_>>(),
            (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect::<Vec<_>>(),
            world.click_frequency(),
        )
    };

    // One metrics registry per bucket: each server publishes its per-stage
    // latency histograms and counters into its own scrape surface.
    let mut outcomes = Vec::new();
    let mut registries = Vec::new();
    {
        let (kb, t, rt, tt, cc) = make_server("metapath2vec");
        let registry = MetricsRegistry::new();
        let server = ModelServer::new(m2v, kb, t, rt, tt, cc).with_metrics(registry.clone());
        outcomes.push(simulate_online(&server, &world, &user, &sim));
        registries.push(registry);
    }
    {
        let (kb, t, rt, tt, cc) = make_server("BERT4Rec");
        let registry = MetricsRegistry::new();
        let server = ModelServer::new(bert, kb, t, rt, tt, cc).with_metrics(registry.clone());
        outcomes.push(simulate_online(&server, &world, &user, &sim));
        registries.push(registry);
    }
    {
        let (kb, t, rt, tt, cc) = make_server("IntelliTag");
        let registry = MetricsRegistry::new();
        let server = ModelServer::new(intellitag, kb, t, rt, tt, cc).with_metrics(registry.clone());
        outcomes.push(simulate_online(&server, &world, &user, &sim));
        registries.push(registry);
    }

    println!("\n== Fig 7: daily macro-averaged CTR ==");
    print!("{:<14}", "day");
    for o in &outcomes {
        print!(" {:>13}", o.policy);
    }
    println!();
    for d in 0..sim.days {
        print!("{:<14}", d + 1);
        for o in &outcomes {
            print!(" {:>13.4}", o.daily[d].macro_ctr);
        }
        println!();
    }

    println!("\n== Table VI: HIR and response latency ==");
    println!(
        "{:<14} {:>8} {:>14} {:>14} {:>10}",
        "Policy", "HIR", "latency(mean)", "latency(p99)", "sessions"
    );
    for o in &outcomes {
        println!(
            "{:<14} {:>8.3} {:>11.3} ms {:>11.3} ms {:>10}",
            o.policy, o.hir, o.mean_latency_ms, o.p99_latency_ms, o.sessions
        );
    }

    println!("\n== per-stage p99 latency (µs, from each bucket's metrics registry) ==");
    println!(
        "{:<14} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "Policy", "recall", "rerank", "score", "cold-starts", "requests"
    );
    for (o, registry) in outcomes.iter().zip(&registries) {
        println!(
            "{:<14} {:>10} {:>10} {:>10} {:>12} {:>10}",
            o.policy,
            registry.histogram("serving.stage.recall_us").quantile(0.99),
            registry.histogram("serving.stage.rerank_us").quantile(0.99),
            registry.histogram("serving.stage.score_us").quantile(0.99),
            registry.counter("serving.cold_start_fallback").get(),
            registry.histogram("serving.request_us").count(),
        );
    }
}
