//! Serial vs pooled GEMM throughput at model-realistic shapes.
//!
//! Times the tensor crate's packed microkernel engine through `matmul` /
//! `matmul_nt` with the compute pool off (`pool_threads = 1`) and on (one
//! thread per hardware core), verifies the pooled outputs are byte-identical
//! to serial (the engine's headline guarantee), compares against the
//! committed `BENCH_gemm.json` baseline, and reports GFLOP/s per shape.
//!
//! Shapes mirror the serving stack: a 17-row context window and a 136-row
//! micro-batch through a dim-64 projection, the batched scoring GEMM
//! against a 400-tag candidate pool, the attention `Q·Kᵀ` product, and a
//! square 256³ reference point.
//!
//! Timing is median-of-5 (median-of-3 in smoke mode) so one scheduler
//! hiccup cannot fake a regression or a win. Assertion policy:
//!
//! * **Parity always hard-fails**: pooled bits must equal serial bits.
//! * Speedup assertions arm only on hosts with ≥ 4 hardware threads: every
//!   shape must then beat 1.0x pooled (the `attn_qkt_136x16` regression
//!   this engine fixed cannot silently return), and the large shapes
//!   marked `assert_speedup` must beat 2.0x.
//! * Baseline deltas (vs the committed `BENCH_gemm.json`) are warn-only:
//!   CI hosts have wildly different arithmetic throughput, so perf drift
//!   is reported, never fatal.
//!
//! ```sh
//! cargo run --release --example bench_gemm            # full run
//! cargo run --release --example bench_gemm -- --json  # + BENCH_gemm.json
//! cargo run --release --example bench_gemm -- --smoke # small CI-sized run
//! ```

use std::time::Instant;

use intellitag::gateway::json;
use intellitag::prelude::*;
use intellitag::tensor::{fma_enabled, gemm_plan, Matrix};

/// Which kernel a shape exercises.
#[derive(Clone, Copy)]
enum Kernel {
    /// `C = A·B` with A `m x k`, B `k x n`.
    MatMul,
    /// `C = A·Bᵀ` with A `m x k`, B `n x k` (attention scores).
    MatMulNt,
}

struct Shape {
    name: &'static str,
    kernel: Kernel,
    m: usize,
    k: usize,
    n: usize,
    /// Whether the ≥2x pooled-speedup assertion covers this shape (large
    /// shapes only; small GEMMs only have to clear the >1x floor).
    assert_speedup: bool,
}

const SHAPES: &[Shape] = &[
    Shape {
        name: "ctx17_proj64",
        kernel: Kernel::MatMul,
        m: 17,
        k: 64,
        n: 64,
        assert_speedup: false,
    },
    Shape {
        name: "batch136_proj64",
        kernel: Kernel::MatMul,
        m: 136,
        k: 64,
        n: 64,
        assert_speedup: false,
    },
    Shape {
        name: "score136_pool400",
        kernel: Kernel::MatMul,
        m: 136,
        k: 64,
        n: 400,
        assert_speedup: true,
    },
    Shape {
        name: "attn_qkt_136x16",
        kernel: Kernel::MatMulNt,
        m: 136,
        k: 16,
        n: 136,
        assert_speedup: false,
    },
    Shape {
        name: "square_256",
        kernel: Kernel::MatMul,
        m: 256,
        k: 256,
        n: 256,
        assert_speedup: true,
    },
];

/// Deterministic pseudo-random fill so serial and pooled phases see the
/// exact same operands.
fn fill(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let mut m = Matrix::zeros(rows, cols);
    for i in 0..rows {
        for j in 0..cols {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((state >> 40) & 0xFFFF) as f32 / 65536.0;
            m.set(i, j, u - 0.5);
        }
    }
    m
}

fn run_kernel(shape: &Shape, a: &Matrix, b: &Matrix) -> Matrix {
    match shape.kernel {
        Kernel::MatMul => a.matmul(b),
        Kernel::MatMulNt => a.matmul_nt(b),
    }
}

/// Median GFLOP/s over `reps` timed runs of `iters` repetitions each
/// (2·m·k·n flops per GEMM), plus one representative output for the
/// parity check.
fn time_kernel(shape: &Shape, a: &Matrix, b: &Matrix, iters: usize, reps: usize) -> (f64, Matrix) {
    let out = run_kernel(shape, a, b); // warm-up + parity sample
    let mut samples = Vec::with_capacity(reps);
    let flops = 2.0 * shape.m as f64 * shape.k as f64 * shape.n as f64 * iters as f64;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(run_kernel(
                std::hint::black_box(shape),
                std::hint::black_box(a),
                std::hint::black_box(b),
            ));
        }
        samples.push(flops / t.elapsed().as_secs_f64().max(1e-9) / 1e9);
    }
    samples.sort_by(|x, y| x.total_cmp(y));
    (samples[samples.len() / 2], out)
}

struct ShapeReport {
    name: &'static str,
    dims: (usize, usize, usize),
    serial_gflops: f64,
    pooled_gflops: f64,
    speedup: f64,
    asserted: bool,
}

/// Serial-GFLOP/s baselines from the committed `BENCH_gemm.json`, if one
/// is present and parseable.
fn read_baseline() -> Vec<(String, f64)> {
    let Ok(text) = std::fs::read_to_string("BENCH_gemm.json") else {
        return Vec::new();
    };
    let Ok(doc) = json::parse(&text) else {
        eprintln!("warning: BENCH_gemm.json exists but is not valid JSON; skipping comparison");
        return Vec::new();
    };
    let Some(json::JsonValue::Obj(shapes)) = doc.get("shapes") else {
        return Vec::new();
    };
    shapes
        .iter()
        .filter_map(|(name, entry)| {
            let g = match entry.get("serial_gflops") {
                Some(json::JsonValue::Num(f)) => *f,
                Some(json::JsonValue::Int(i)) => *i as f64,
                _ => return None,
            };
            Some((name.clone(), g))
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let json_out = std::env::args().any(|a| a == "--json");
    let hw_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let pooled_threads = hw_threads.min(8);
    let assert_armed = hw_threads >= 4;
    let baseline = read_baseline();
    println!(
        "hardware threads: {hw_threads}  pooled run uses {pooled_threads}  fma: {}  \
         speedup assertions {}",
        fma_enabled(),
        if assert_armed { "ARMED (>= 4 threads)" } else { "disarmed (< 4 threads)" }
    );

    let mut reports = Vec::new();
    for shape in SHAPES {
        let iters = {
            let work = shape.m * shape.k * shape.n;
            let budget = if smoke { 40_000_000 } else { 1_200_000_000 };
            (budget / work).clamp(3, 4_000)
        };
        let reps = if smoke { 3 } else { 5 };
        let a = fill(shape.m, shape.k, 0xA5A5 ^ shape.m as u64);
        let b = match shape.kernel {
            Kernel::MatMul => fill(shape.k, shape.n, 0x5A5A ^ shape.n as u64),
            Kernel::MatMulNt => fill(shape.n, shape.k, 0x5A5A ^ shape.n as u64),
        };

        set_pool_threads(1);
        let (serial_gflops, serial_out) = time_kernel(shape, &a, &b, iters, reps);
        set_pool_threads(pooled_threads);
        let plan = gemm_plan(shape.m, shape.k, shape.n);
        let (pooled_gflops, pooled_out) = time_kernel(shape, &a, &b, iters, reps);
        set_pool_threads(0);

        // Parity first: speed means nothing if the bits moved.
        let same = serial_out
            .data()
            .iter()
            .zip(pooled_out.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{}: pooled output is not bit-identical to serial", shape.name);

        let speedup = pooled_gflops / serial_gflops;
        let asserted = assert_armed && shape.assert_speedup;
        println!(
            "  {:<20} {:>4}x{:<4}x{:<4} {:>7.2} -> {:>7.2} GFLOP/s  ({speedup:.2}x, {plan:?}{})",
            shape.name,
            shape.m,
            shape.k,
            shape.n,
            serial_gflops,
            pooled_gflops,
            if asserted { ", asserted >= 2x" } else { "" }
        );
        if let Some((_, base)) = baseline.iter().find(|(n, _)| n == shape.name) {
            let ratio = serial_gflops / base;
            if ratio < 0.7 {
                // Warn-only: CI hosts differ too much for perf to be fatal.
                eprintln!(
                    "warning: {} serial throughput is {ratio:.2}x the committed baseline \
                     ({serial_gflops:.2} vs {base:.2} GFLOP/s)",
                    shape.name
                );
            }
        }
        if assert_armed {
            assert!(
                speedup > 1.0,
                "{}: pooled GEMM must beat serial at {pooled_threads} threads, got {speedup:.2}x",
                shape.name
            );
        }
        if asserted {
            assert!(
                speedup >= 2.0,
                "{}: pooled GEMM must be >= 2x serial at {pooled_threads} threads, got {speedup:.2}x",
                shape.name
            );
        }
        reports.push(ShapeReport {
            name: shape.name,
            dims: (shape.m, shape.k, shape.n),
            serial_gflops,
            pooled_gflops,
            speedup,
            asserted,
        });
    }
    println!("parity: every pooled output bit-identical to serial");
    if baseline.is_empty() {
        println!("baseline: none found (BENCH_gemm.json absent or unreadable)");
    } else {
        println!(
            "baseline: compared {} shapes against BENCH_gemm.json (warn-only)",
            baseline.len()
        );
    }

    if json_out {
        let shapes: Vec<String> = reports
            .iter()
            .map(|r| {
                format!(
                    "    \"{}\": {{\"m\": {}, \"k\": {}, \"n\": {}, \"serial_gflops\": {:.3}, \"pooled_gflops\": {:.3}, \"speedup\": {:.3}, \"speedup_asserted\": {}}}",
                    r.name, r.dims.0, r.dims.1, r.dims.2, r.serial_gflops, r.pooled_gflops,
                    r.speedup, r.asserted
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"bench\": \"gemm\",\n  \"mode\": \"{}\",\n  \"hw_threads\": {},\n  \"pooled_threads\": {},\n  \"par_threshold\": {},\n  \"fma\": {},\n  \"speedup_assert_armed\": {},\n  \"shapes\": {{\n{}\n  }}\n}}\n",
            if smoke { "smoke" } else { "full" },
            hw_threads,
            pooled_threads,
            par_threshold(),
            fma_enabled(),
            assert_armed,
            shapes.join(",\n")
        );
        std::fs::write("BENCH_gemm.json", &body).expect("write BENCH_gemm.json");
        println!("wrote BENCH_gemm.json");
    }
}
