//! End-to-end observability demo: serve simulated traffic through a
//! `ModelServer` wired to a shared `intellitag-obs` registry, then print the
//! stage-by-stage latency picture the paper summarises in Table VI —
//! p50/p90/p99 per serving stage (ES recall, matcher rerank, model scoring,
//! cache lookup) plus cache-hit, cold-start and error counters — and finally
//! the same registry in both export formats (Prometheus text + JSON lines),
//! and the top-5 slowest retained request traces as per-stage waterfalls.
//!
//! ```sh
//! cargo run --release --example metrics_dashboard
//! ```

use intellitag::prelude::*;

fn stage_row(name: &str, snap: &HistogramSnapshot) {
    println!(
        "{:<22} {:>8} {:>9} {:>9} {:>9} {:>9.1}",
        name,
        snap.count,
        snap.quantile(0.50),
        snap.quantile(0.90),
        snap.quantile(0.99),
        snap.mean(),
    );
}

/// One trace as a per-stage waterfall: each span drawn as a bar positioned
/// at its start/end offsets on a shared time axis scaled to the trace total.
fn waterfall(trace: &FinishedTrace) {
    const WIDTH: u64 = 48;
    let total = trace.total_us.max(1);
    println!(
        "trace {}  total {} us  ({} spans)",
        format_trace_id(trace.trace_id),
        trace.total_us,
        trace.spans.len()
    );
    for span in &trace.spans {
        let s = (span.start_us * WIDTH / total).min(WIDTH - 1) as usize;
        let e = ((span.end_us * WIDTH).div_ceil(total) as usize).clamp(s + 1, WIDTH as usize);
        let bar: String =
            (0..WIDTH as usize).map(|i| if (s..e).contains(&i) { '#' } else { '·' }).collect();
        let mut notes = String::new();
        if let Some(shard) = span.shard {
            notes.push_str(&format!("  shard {shard}"));
        }
        if let Some(rows) = span.batch_rows {
            notes.push_str(&format!("  rows {rows}"));
        }
        println!("  {:<10} {bar} {:>6} us{notes}", span.name, span.end_us - span.start_us);
    }
}

fn main() {
    let world = World::generate(WorldConfig::small(7));
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();

    // One registry shared by the model wrapper and the server, so model
    // forward-pass time and per-stage serving time land side by side.
    let registry = MetricsRegistry::new();
    let model = Instrumented::new(Popularity::from_sessions(&train, world.tags.len()), &registry);
    let server = ModelServer::new(
        model,
        world.build_kb(),
        texts,
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect(),
        world.click_frequency(),
    )
    .with_cache(512)
    .with_metrics(registry.clone());

    // Plain traffic: every session replayed as incremental tag clicks, plus
    // the underlying question. Repeated prefixes exercise the cache. Every
    // request is traced; the collector tail-retains the slowest per window.
    let traces = TraceCollector::new(&registry, TraceConfig::default());
    let trace_ids = TraceIdGen::new(0xda5b_0a2d_0000_0001);
    let trace_request = |f: &mut dyn FnMut(&TraceHandle)| {
        let t = TraceHandle::new(trace_ids.next_id());
        f(&t);
        t.record("request", 0, t.now_us());
        traces.offer(t.finish());
    };
    println!("serving {} sessions ...", world.sessions.len());
    for session in &world.sessions {
        trace_request(&mut |t| {
            let _ = server.handle_question_traced(
                session.tenant,
                &world.rqs[session.intent_rq].text(),
                t,
            );
        });
        for len in 1..=session.clicks.len() {
            trace_request(&mut |t| {
                let _ = server.handle_tag_click_traced(session.tenant, &session.clicks[..len], t);
            });
        }
    }

    // Degraded traffic: the paths that used to panic now only move counters.
    let _ = server.handle_question(0, "zzz qqq nothing the kb knows"); // cold start
    let _ = server.handle_question(usize::MAX, "who am i"); // bad tenant
    let _ = server.handle_tag_click(0, &[]); // empty clicks
    let _ = server.handle_tag_click(1, &[usize::MAX]); // bad tag id

    let hist = |name: &str| registry.histogram(name).snapshot();
    let count = |name: &str| registry.counter(name).get();

    println!("\n== per-stage latency (µs) ==");
    println!("{:<22} {:>8} {:>9} {:>9} {:>9} {:>9}", "stage", "count", "p50", "p90", "p99", "mean");
    stage_row("recall (BM25)", &hist("serving.stage.recall_us"));
    stage_row("rerank (QA match)", &hist("serving.stage.rerank_us"));
    stage_row("score (model)", &hist("serving.stage.score_us"));
    stage_row("cache lookup", &hist("serving.stage.cache_us"));
    stage_row("model forward pass", &hist("model.Popularity.score_us"));
    stage_row("question end-to-end", &hist("serving.question_us"));
    stage_row("tag click end-to-end", &hist("serving.tag_click_us"));

    println!("\n== counters ==");
    println!("cache hits            {}", count("serving.cache.hit"));
    println!("cache misses          {}", count("serving.cache.miss"));
    println!("cold-start fallbacks  {}", count("serving.cold_start_fallback"));
    println!("bad-tenant requests   {}", count("serving.error.bad_tenant"));
    println!("bad-tag clicks        {}", count("serving.error.bad_tag"));
    println!("empty-click requests  {}", count("serving.error.empty_clicks"));
    if let Some(rate) = server.cache_hit_rate() {
        println!("cache hit rate        {rate:.3}");
    }

    // What a scraper would fetch from this process.
    println!("\n== Prometheus exposition (serving.* series) ==");
    for line in registry.render_prometheus().lines() {
        if line.contains("serving_") {
            println!("{line}");
        }
    }

    println!("\n== JSON lines (counters and gauges) ==");
    for line in registry.render_json_lines().lines() {
        if line.contains("\"counter\"") || line.contains("\"gauge\"") {
            println!("{line}");
        }
    }

    // The tail the collector kept: the 5 slowest retained traces, each as a
    // per-stage waterfall on a shared time axis.
    println!(
        "\n== top-5 slowest retained traces ({} offered, {} retained) ==",
        traces.seen(),
        traces.traces().len()
    );
    for trace in traces.slowest(5) {
        waterfall(&trace);
    }
}
