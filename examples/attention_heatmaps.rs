//! Attention introspection (paper Fig. 5): trains IntelliTag and prints
//! ASCII heat maps of (a) neighbor attention along the TT metapath,
//! (b) metapath attention per tag, and (c)(d) contextual attention per
//! layer/head over a real session.
//!
//! ```sh
//! cargo run --release --example attention_heatmaps
//! ```

use intellitag::graph::ALL_METAPATHS;
use intellitag::prelude::*;

/// Renders a value in [0, 1] as a shaded block.
fn shade(v: f32) -> char {
    const RAMP: [char; 6] = [' ', '░', '▒', '▓', '█', '█'];
    RAMP[((v.clamp(0.0, 1.0)) * 5.0) as usize]
}

fn main() {
    let world = World::generate(WorldConfig::small(11));
    let graph = world.build_graph();
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let cfg = TagRecConfig {
        train: TrainConfig { epochs: 3, lr: 3e-3, ..Default::default() },
        ..Default::default()
    };
    println!("training IntelliTag for attention introspection ...\n");
    let model = IntelliTag::train(&graph, &texts, &train, cfg);

    // Probe tags: the most clicked ones (they have rich neighborhoods).
    let freq = world.click_frequency();
    let mut by_freq: Vec<usize> = (0..world.tags.len()).collect();
    by_freq.sort_by_key(|&t| std::cmp::Reverse(freq[t]));
    let probes: Vec<usize> = by_freq.into_iter().take(5).collect();

    // ---- (a) neighbor attention on metapath TT ---------------------------
    println!("== Fig 5a: neighbor attention (metapath TT) ==");
    for &t in &probes {
        let attn = model.graph_layers().neighbor_attention(t, 0);
        if attn.len() < 2 {
            continue;
        }
        print!("{:<22}", texts[t]);
        for (n, a) in attn.iter().take(8) {
            print!(" {}{:<14}", shade(*a * attn.len() as f32 / 2.0), texts[*n]);
        }
        println!();
    }

    // ---- (b) metapath attention -------------------------------------------
    println!("\n== Fig 5b: metapath attention ==");
    print!("{:<22}", "tag \\ metapath");
    for mp in ALL_METAPATHS {
        print!(" {:>7}", mp.name());
    }
    println!();
    for &t in &probes {
        let w = model.graph_layers().metapath_attention(t);
        print!("{:<22}", texts[t]);
        for v in w {
            print!(" {:>5.3} {}", v, shade(v * 2.0));
        }
        println!();
    }

    // ---- (c)(d) contextual attention ---------------------------------------
    let session =
        split.test.iter().find(|s| s.clicks.len() >= 3).expect("a session with 3+ clicks");
    let ctx = &session.clicks;
    println!("\n== Fig 5c/d: contextual attention over a session ==");
    println!(
        "session clicks: {:?} + [mask]",
        ctx.iter().map(|&t| texts[t].clone()).collect::<Vec<_>>()
    );
    let attn = model.contextual_attention(ctx);
    for (l, layer) in attn.iter().enumerate() {
        for (h, head) in layer.iter().enumerate().take(2) {
            println!("layer {l}, head {h}:");
            let n = head.rows();
            for r in 0..n {
                print!("  ");
                for c in 0..n {
                    print!("{}", shade(head.get(r, c)));
                }
                let label = if r + 1 == n { "[mask]".to_string() } else { texts[ctx[r]].clone() };
                println!("  {label}");
            }
        }
    }
    println!("\n(rows = query positions; the last row shows what the mask/prediction\nposition attends to — typically dominated by the most recent click.)");
}
