//! Quickstart: generate a synthetic cloud customer-service world, train the
//! IntelliTag model, evaluate it offline, and serve a few requests.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use intellitag::prelude::*;

fn main() {
    // ----- 1. The world (substitute for the paper's proprietary dataset) ---
    let world = World::generate(WorldConfig::small(42));
    let graph = world.build_graph();
    let counts = graph.relation_counts();
    println!("== Synthetic world (Table II analogue) ==");
    println!(
        "T(tags)={}  Q(RQs)={}  E(tenants)={}",
        world.tags.len(),
        world.rqs.len(),
        world.tenants.len()
    );
    println!("asc={}  clk={}  cst={}  crl={}", counts.asc, counts.clk, counts.cst, counts.crl);
    println!(
        "sessions={}  tag clicks={}  average clicks={:.1}\n",
        world.sessions.len(),
        world.total_clicks(),
        world.avg_clicks()
    );

    // ----- 2. Train IntelliTag on the session log -------------------------
    let split = split_sessions(&world.sessions, 0);
    let train: Vec<Vec<usize>> = split.train.iter().map(|s| s.clicks.clone()).collect();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let cfg = TagRecConfig {
        train: TrainConfig { epochs: 3, lr: 3e-3, ..Default::default() },
        ..Default::default()
    };
    println!("training {} on {} sessions ...", cfg.model_name(), train.len());
    let model = IntelliTag::train(&graph, &texts, &train, cfg);

    // ----- 3. Offline evaluation (the paper's §VI-A2 protocol) ------------
    let test = sequence_examples(&split.test);
    let report = evaluate_offline(&model, &test, &world, &ProtocolConfig::default());
    println!("\n== Offline evaluation ({} test examples) ==", test.len());
    println!("{:<16} MRR    N@1    N@5    N@10   HR@5   HR@10", "Model");
    println!("{}", report.table_row("IntelliTag"));

    // ----- 4. Serve requests (the paper's Fig. 1 interaction) -------------
    let server = ModelServer::new(
        model,
        world.build_kb(),
        texts.clone(),
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect(),
        world.click_frequency(),
    );
    // Pick a tenant with a healthy corpus for the demo.
    let tenant = (0..world.tenants.len()).max_by_key(|&e| world.rqs_by_tenant[e].len()).unwrap();
    let rq = &world.rqs[world.rqs_by_tenant[tenant][0]];

    println!("\n== Serving demo (tenant {tenant}) ==");
    println!("user asks: {:?}", rq.text());
    let q = server.handle_question(tenant, &rq.text());
    println!("answer:    {:?}", q.answer.as_deref().unwrap_or("<none>"));
    println!(
        "suggested tags: {:?}  ({} us)",
        q.recommended_tags.iter().map(|&t| texts[t].clone()).collect::<Vec<_>>(),
        q.latency_us
    );

    let first_click = q.recommended_tags[0];
    println!("\nuser clicks tag {:?}", texts[first_click]);
    let r = server.handle_tag_click(tenant, &[first_click]);
    println!(
        "next tags:  {:?}",
        r.recommended_tags.iter().map(|&t| texts[t].clone()).collect::<Vec<_>>()
    );
    println!("predicted questions ({} us):", r.latency_us);
    for &pq in &r.predicted_questions {
        println!("  - {}", world.rqs[pq].text());
    }
    println!(
        "\ncold-start tags: {:?}",
        server.cold_start_tags(tenant).iter().map(|&t| texts[t].clone()).collect::<Vec<_>>()
    );
}
