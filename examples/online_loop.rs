//! The full continuous-training loop, closed over a real TCP socket:
//!
//! ```text
//! clients ──HTTP──▶ gateway ──▶ sharded IntelliTag front
//!                      │ (EventSink)            ▲ epoch-fenced swap
//!                      ▼                        │
//!                  click WAL ──▶ incremental trainer ──▶ versioned snapshot
//! ```
//!
//! Every accepted click/question is appended to the write-ahead event log
//! by the gateway's [`WalSink`]; the trainer tails that log, folds each
//! full batch into the model with a deterministic one-shot increment, and
//! publishes the resulting snapshot through the [`SnapshotRegistry`] into
//! the serving front's [`ModelSwap`]. The front applies it at a drain
//! boundary — zero downtime, no mixed-version batch — and the very next
//! HTTP reply carries the bumped `X-Model-Version` header.
//!
//! The run asserts, per wave of traffic: the WAL grew, the trainer
//! produced exactly one new snapshot version, `/healthz` and the reply
//! headers report it, and (at the end) the front's answers are
//! byte-identical to a fresh server built directly from the latest
//! snapshot bytes.
//!
//! ```sh
//! cargo run --release --example online_loop            # 4 waves
//! cargo run --release --example online_loop -- --smoke # 2 waves (CI-sized)
//! ```

use std::sync::Arc;

use intellitag::prelude::*;

fn quick_cfg() -> TagRecConfig {
    TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig {
            epochs: 1,
            lr: 0.01,
            batch_size: 16,
            seed: 7,
            mask_prob: 0.0,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// The world-derived serving data every replica shares; only the model
/// bytes differ across versions.
struct Stack {
    world: World,
    graph: HetGraph,
    texts: Vec<String>,
    cfg: TagRecConfig,
}

impl Stack {
    fn load(&self, bytes: &[u8]) -> IntelliTag {
        IntelliTag::load(&self.graph, &self.texts, self.cfg, &mut &bytes[..])
            .expect("snapshot bytes load")
    }

    fn server(&self, model: IntelliTag) -> ModelServer<IntelliTag> {
        ModelServer::new(
            model,
            self.world.build_kb(),
            self.texts.clone(),
            self.world.rqs.iter().map(|r| r.tags.clone()).collect(),
            (0..self.world.tenants.len()).map(|t| self.world.tenant_tag_pool(t)).collect(),
            self.world.click_frequency(),
        )
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (waves, per_wave) = if smoke { (2u64, 12usize) } else { (4u64, 24usize) };

    // ---- offline day-zero: world + base model ---------------------------
    let world = World::generate(WorldConfig::tiny(91));
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    println!("training the day-zero IntelliTag checkpoint ...");
    let base = IntelliTag::train(&graph, &texts, &train, quick_cfg());
    let mut base_bytes = Vec::new();
    base.save(&mut base_bytes).expect("in-memory save");
    let stack = Arc::new(Stack { world, graph, texts, cfg: quick_cfg() });

    // ---- serving side: swappable sharded front behind the gateway -------
    let metrics = MetricsRegistry::new();
    let swap = ModelSwap::new();
    let base_bytes = Arc::new(base_bytes);
    let (stack_f, stack_l, boot) =
        (Arc::clone(&stack), Arc::clone(&stack), Arc::clone(&base_bytes));
    let front = Arc::new(ShardedServer::spawn_swappable(
        ShardConfig { shards: 2, batch_max: 4, queue_capacity: 256, ..Default::default() },
        metrics.clone(),
        move |_shard| stack_f.server(stack_f.load(&boot)),
        swap.clone(),
        move |_shard, payload| stack_l.load(&payload.bytes),
    ));

    let wal_dir = std::env::temp_dir().join(format!("itag-online-loop-{}", std::process::id()));
    std::fs::create_dir_all(&wal_dir).expect("temp dir");
    let wal_path = wal_dir.join("clicks.wal");
    let _ = std::fs::remove_file(&wal_path);
    let (writer, recovered) = WalWriter::open(&wal_path, 8, &metrics).expect("wal open");
    assert!(recovered.events.is_empty(), "fresh log starts empty");
    let sink = Arc::new(WalSink::new(writer, &metrics));

    let share = Arc::clone(&front);
    let gateway = Gateway::spawn_with_sink(
        "127.0.0.1:0",
        GatewayConfig { workers: 2, ..Default::default() },
        &metrics,
        move |_worker| Arc::clone(&share),
        Some(Arc::clone(&sink) as Arc<dyn EventSink>),
    )
    .expect("gateway binds an ephemeral port");
    let addr = gateway.addr();
    println!("gateway listening on http://{addr}, logging events to {}", wal_path.display());

    // ---- training side: trainer tailing the very same log ---------------
    let registry = Arc::new(SnapshotRegistry::new(8, &metrics));
    let mut trainer = OnlineTrainer::new(
        stack.load(&base_bytes),
        &wal_path,
        TrainerConfig { batch_events: per_wave, epochs: 1 },
        Arc::clone(&registry),
        Some(swap.clone()),
        &metrics,
    );

    // ---- waves of live traffic ------------------------------------------
    let mut client = GatewayClient::new(addr);
    let tenants = stack.world.tenants.len();
    for wave in 1..=waves {
        let wal_before = metrics.counter("wal.appends").get();
        for i in 0..per_wave {
            let tenant = (wave as usize * 7 + i) % tenants;
            let pool = stack.world.tenant_tag_pool(tenant);
            if i % 6 == 5 {
                // Questions ride the same log; they feed the Q&A side, not
                // sequence training, so they must not perturb increments.
                let rq = &stack.world.rqs_by_tenant[tenant];
                let question = stack.world.rqs[rq[i % rq.len()]].text();
                let req = RecommendRequest { tenant, question: Some(question), clicks: vec![] };
                client.recommend(&req).expect("question answered");
            } else {
                let n = 2 + i % 2.min(pool.len().saturating_sub(2)).max(1);
                let clicks = (0..n).map(|k| pool[(i + k * 3) % pool.len()]).collect();
                let req = RecommendRequest { tenant, question: None, clicks };
                let (_, version) = client.click_versioned(&req).expect("click answered");
                assert_eq!(
                    version,
                    Some(wave - 1),
                    "wave {wave}: replies must carry the previous wave's model version"
                );
            }
        }
        sink.sync(); // flush the wave to disk before the trainer looks

        let appended = metrics.counter("wal.appends").get() - wal_before;
        assert_eq!(appended, per_wave as u64, "every accepted request logs exactly one event");
        let snapshot = trainer
            .poll()
            .expect("trainer polls the log")
            .expect("a full batch must produce a snapshot");
        assert_eq!(snapshot.version, wave, "one snapshot per wave");

        // The swap applies at the next drain boundary: the very next reply
        // and the health endpoint both report the new version.
        let pool = stack.world.tenant_tag_pool(0);
        let (_, version) = client
            .click_versioned(&RecommendRequest {
                tenant: 0,
                question: None,
                clicks: pool[..2.min(pool.len())].to_vec(),
            })
            .expect("post-swap click answered");
        assert_eq!(version, Some(wave), "the swap lands before the next drain");
        let health = client.healthz().expect("healthz");
        assert!(
            health.contains(&format!("\"model_version\":{wave}")),
            "healthz must report v{wave}, got: {health}"
        );
        println!(
            "wave {wave}: {per_wave} events logged -> snapshot v{} ({} events folded) -> live",
            snapshot.version,
            trainer.events_consumed(),
        );
    }

    // ---- parity: the front serves exactly the latest snapshot -----------
    let latest = registry.latest().expect("registry holds the latest snapshot");
    assert_eq!(latest.version, waves);
    let oracle = stack.server(stack.load(&latest.bytes));
    for tenant in 0..tenants {
        let pool = stack.world.tenant_tag_pool(tenant);
        let clicks: Vec<usize> = pool.iter().copied().take(2).collect();
        let expect = oracle.handle_tag_click(tenant, &clicks);
        let req = RecommendRequest { tenant, question: None, clicks };
        let got = client.click(&req).expect("parity click answered");
        assert_eq!(got.recommended_tags, expect.recommended_tags, "tenant {tenant} parity");
        assert_eq!(got.predicted_questions, expect.predicted_questions, "tenant {tenant} parity");
    }
    println!(
        "\nparity: all {tenants} tenants byte-identical to a fresh server from snapshot v{}",
        latest.version
    );

    println!(
        "wal: {} appends / {} bytes / {} fsyncs | trainer: {} increments over {} events | \
         serving: v{:.0} after {} swaps",
        metrics.counter("wal.appends").get(),
        metrics.counter("wal.bytes").get(),
        metrics.counter("wal.fsyncs").get(),
        metrics.counter("trainer.increments").get(),
        metrics.counter("trainer.events_consumed").get(),
        metrics.gauge("serving.model_version").get(),
        metrics.counter("serving.swaps").get(),
    );

    client.close();
    gateway.shutdown();
    drop(front);
    let _ = std::fs::remove_file(&wal_path);
    let _ = std::fs::remove_dir(&wal_dir);
    println!("closed loop verified: serve -> log -> train -> snapshot -> swap -> serve");
}
