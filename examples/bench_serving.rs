//! Serial vs batched tag-click serving on the real IntelliTag model, plus
//! a wire-codec phase over a live gateway.
//!
//! Trains one deterministic IntelliTag checkpoint twice (identical seeds →
//! identical weights, so each phase gets its own isolated metrics registry),
//! replays the same click workload through `handle_tag_click` one request at
//! a time and through `handle_tag_click_batch` in micro-batches, verifies
//! the responses are byte-identical, and reports throughput plus per-stage
//! p50/p90/p99 from the serving histograms.
//!
//! The wire phase then puts a real TCP gateway over a lightweight 4-shard
//! front (Popularity-backed, so codec cost dominates the measurement) and
//! replays the same request mix three ways — blocking JSON/HTTP, blocking
//! binary frames, and the pipelined binary client with 16 frames in
//! flight — recording client-observed p50/p90/p99 per codec. The run
//! asserts binary p50 strictly beats JSON p50 and pipelined throughput is
//! ≥ 1.5× the blocking JSON client.
//!
//! `--governor` adds the self-tuning phase: one governed sharded front is
//! raced against both static extremes (a latency-tuned `batch_max = 1`
//! config and a throughput-tuned `batch_max = 32` config) across two
//! regimes in a single run — a serial latency regime and a 12-client
//! saturation regime. The governed config must match the best static p99
//! in the latency regime *and* the best static throughput under
//! saturation, with byte-identical responses, and its recorded
//! observation trace must replay to the exact decision log.
//!
//! ```sh
//! cargo run --release --example bench_serving                  # full run
//! cargo run --release --example bench_serving -- --json        # + BENCH_serving.json
//! cargo run --release --example bench_serving -- --smoke       # small CI-sized run
//! cargo run --release --example bench_serving -- --governor    # + governed vs static extremes
//! cargo run --release --example bench_serving -- --pool 4      # 4-thread compute pool
//! cargo run --release --example bench_serving -- --pool-parity # byte-parity across pools, then exit
//! ```

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use intellitag::core::{KnobBounds, TagClickResponse};
use intellitag::prelude::*;
use intellitag::tensor::hardware_threads;

/// Splitmix64: a tiny deterministic workload mixer.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Retrain the same IntelliTag checkpoint (fixed seeds make this an exact
/// reload) and wrap it in a fresh `ModelServer` with its own registry.
fn build_server(world: &World) -> ModelServer<IntelliTag> {
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig {
            epochs: 1,
            lr: 0.01,
            batch_size: 16,
            seed: 7,
            mask_prob: 0.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = IntelliTag::train(&graph, &texts, &train, cfg);
    ModelServer::new(
        model,
        world.build_kb(),
        texts,
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
        world.click_frequency(),
    )
}

/// A clicks-only workload: 1-3 clicks from the tenant's pool, with every
/// 16th request an oversized 24-click history (forces context clipping).
fn workload(world: &World, seed: u64, len: usize) -> Vec<(usize, Vec<usize>)> {
    let mut rng = Rng(seed);
    (0..len)
        .map(|i| {
            let tenant = rng.below(world.tenants.len());
            let pool = world.tenant_tag_pool(tenant);
            let n = if i % 16 == 15 { 24 } else { 1 + rng.below(3.min(pool.len().max(1))) };
            (tenant, (0..n).map(|_| pool[rng.below(pool.len())]).collect())
        })
        .collect()
}

struct Quantiles {
    p50: u64,
    p90: u64,
    p99: u64,
}

fn quantiles(h: &Histogram) -> Quantiles {
    let s = h.snapshot();
    Quantiles { p50: s.quantile(0.50), p90: s.quantile(0.90), p99: s.quantile(0.99) }
}

struct PhaseReport {
    name: &'static str,
    wall_us: u64,
    throughput_rps: f64,
    stages: Vec<(&'static str, Quantiles)>,
}

fn phase_report(
    name: &'static str,
    server: &ModelServer<IntelliTag>,
    wall_us: u64,
    requests: usize,
) -> PhaseReport {
    let m = server.metrics();
    let stages = vec![
        ("tag_click_us", quantiles(&m.histogram("serving.tag_click_us"))),
        ("score_us", quantiles(&m.histogram("serving.stage.score_us"))),
        ("recall_us", quantiles(&m.histogram("serving.stage.recall_us"))),
        ("rerank_us", quantiles(&m.histogram("serving.stage.rerank_us"))),
    ];
    let throughput_rps = requests as f64 / (wall_us as f64 / 1e6);
    PhaseReport { name, wall_us, throughput_rps, stages }
}

fn print_report(r: &PhaseReport, requests: usize) {
    println!(
        "\n== {} ==  {} requests in {:.1} ms  ->  {:.0} req/s",
        r.name,
        requests,
        r.wall_us as f64 / 1e3,
        r.throughput_rps
    );
    println!("  {:<14} {:>8} {:>8} {:>8}", "stage", "p50 us", "p90 us", "p99 us");
    for (stage, q) in &r.stages {
        println!("  {:<14} {:>8} {:>8} {:>8}", stage, q.p50, q.p90, q.p99);
    }
}

fn json_report(r: &PhaseReport) -> String {
    let stages: Vec<String> = r
        .stages
        .iter()
        .map(|(stage, q)| {
            format!(
                "      \"{stage}\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                q.p50, q.p90, q.p99
            )
        })
        .collect();
    format!(
        "  \"{}\": {{\n    \"wall_us\": {},\n    \"throughput_rps\": {:.1},\n    \"stages\": {{\n{}\n    }}\n  }}",
        r.name,
        r.wall_us,
        r.throughput_rps,
        stages.join(",\n")
    )
}

// ---------------------------------------------------------------------------
// Wire phase: JSON/HTTP vs binary frames vs pipelined binary, over real TCP.
// ---------------------------------------------------------------------------

/// Everything a Popularity replica needs, cloneable into the gateway's
/// per-worker factory. The wire phase deliberately serves the cheapest
/// model in the stack: when a forward costs microseconds, the codec is
/// what the round trip measures.
#[derive(Clone)]
struct WireParts {
    kb: KbWarehouse,
    tag_texts: Vec<String>,
    rq_tags: Vec<Vec<usize>>,
    tenant_tags: Vec<Vec<usize>>,
    counts: Vec<usize>,
    model: Popularity,
}

impl WireParts {
    fn from_world(world: &World) -> Self {
        let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        WireParts {
            kb: world.build_kb(),
            tag_texts: world.tags.iter().map(|t| t.text()).collect(),
            rq_tags: world.rqs.iter().map(|r| r.tags.clone()).collect(),
            tenant_tags: (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
            counts: world.click_frequency(),
            model: Popularity::from_sessions(&train, world.tags.len()),
        }
    }

    fn build(&self) -> ModelServer<Popularity> {
        ModelServer::new(
            self.model.clone(),
            self.kb.clone(),
            self.tag_texts.clone(),
            self.rq_tags.clone(),
            self.tenant_tags.clone(),
            self.counts.clone(),
        )
    }
}

/// Untimed leading requests that open connections and warm both stacks.
const WIRE_WARMUP: usize = 32;

struct WireReport {
    name: &'static str,
    wall_us: u64,
    throughput_rps: f64,
    q: Quantiles,
}

fn wire_result(name: &'static str, wall_us: u64, n: usize, h: &Histogram) -> WireReport {
    WireReport {
        name,
        wall_us,
        throughput_rps: n as f64 / (wall_us.max(1) as f64 / 1e6),
        q: quantiles(h),
    }
}

/// The blocking JSON/HTTP baseline: one `POST /v1/click` at a time over a
/// pooled keep-alive connection.
fn wire_json_blocking(
    addr: SocketAddr,
    reqs: &[RecommendRequest],
) -> (WireReport, Vec<RecommendResponse>) {
    let mut gw = GatewayClient::new(addr).with_timeout(Duration::from_secs(10));
    for req in reqs.iter().take(WIRE_WARMUP) {
        gw.click(req).expect("json warmup answered");
    }
    let hist = Histogram::new();
    let t = Instant::now();
    let responses: Vec<RecommendResponse> = reqs
        .iter()
        .map(|req| {
            let t0 = Instant::now();
            let resp = gw.click(req).expect("json click answered");
            hist.record(t0.elapsed().as_micros() as u64);
            resp
        })
        .collect();
    (wire_result("json_blocking", t.elapsed().as_micros() as u64, reqs.len(), &hist), responses)
}

/// The same mix as binary frames, still one round trip at a time — the
/// apples-to-apples codec comparison the p50 assertion rides on.
fn wire_binary_blocking(
    addr: SocketAddr,
    reqs: &[RecommendRequest],
) -> (WireReport, Vec<RecommendResponse>) {
    let mut client = PipelinedClient::new(addr, 1, 1).with_timeout(Duration::from_secs(10));
    let answer = |c: Completion| match c.payload {
        ReplyPayload::Response(resp) => resp,
        ReplyPayload::Error(e) => panic!("binary round trip refused: {:?} `{}`", e.code, e.message),
    };
    for req in reqs.iter().take(WIRE_WARMUP) {
        answer(client.round_trip(req, 0).expect("binary warmup"));
    }
    let hist = Histogram::new();
    let t = Instant::now();
    let responses: Vec<RecommendResponse> = reqs
        .iter()
        .map(|req| {
            let t0 = Instant::now();
            let resp = answer(client.round_trip(req, 0).expect("binary round trip"));
            hist.record(t0.elapsed().as_micros() as u64);
            resp
        })
        .collect();
    (wire_result("binary_blocking", t.elapsed().as_micros() as u64, reqs.len(), &hist), responses)
}

/// The pipelined binary client: `pool` sockets × `in_flight` correlated
/// frames each, replies absorbed as they complete. Per-request latency here
/// includes in-flight queueing — the throughput column is the headline.
fn wire_binary_pipelined(
    addr: SocketAddr,
    reqs: &[RecommendRequest],
    pool: usize,
    in_flight: usize,
) -> WireReport {
    let mut client =
        PipelinedClient::new(addr, pool, in_flight).with_timeout(Duration::from_secs(10));
    for req in reqs.iter().take(WIRE_WARMUP) {
        client.round_trip(req, 0).expect("pipelined warmup");
    }
    let hist = Histogram::new();
    let mut started: HashMap<u64, Instant> = HashMap::new();
    let mut answered = 0usize;
    let absorb = |c: Completion, started: &HashMap<u64, Instant>| {
        let t0 = started.get(&c.corr_id).expect("completion maps to a submitted frame");
        match c.payload {
            ReplyPayload::Response(_) => hist.record(t0.elapsed().as_micros() as u64),
            ReplyPayload::Error(e) => {
                panic!("pipelined frame refused: {:?} `{}`", e.code, e.message)
            }
        }
    };
    let cap = pool * in_flight;
    let t = Instant::now();
    for req in reqs {
        let corr = client.submit(req, 0).expect("submit");
        started.insert(corr, Instant::now());
        while client.in_flight() >= cap {
            absorb(client.next_completion().expect("completion"), &started);
            answered += 1;
        }
    }
    for c in client.drain().expect("drain") {
        absorb(c, &started);
        answered += 1;
    }
    let wall_us = t.elapsed().as_micros() as u64;
    assert_eq!(answered, reqs.len(), "every pipelined frame must come back answered");
    wire_result("binary_pipelined", wall_us, reqs.len(), &hist)
}

fn print_wire(r: &WireReport) {
    println!(
        "  {:<18} {:>9.1} ms {:>8.0} req/s {:>7} {:>7} {:>7}",
        r.name,
        r.wall_us as f64 / 1e3,
        r.throughput_rps,
        r.q.p50,
        r.q.p90,
        r.q.p99
    );
}

fn wire_json(r: &WireReport) -> String {
    format!(
        "    \"{}\": {{\"wall_us\": {}, \"throughput_rps\": {:.1}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
        r.name, r.wall_us, r.throughput_rps, r.q.p50, r.q.p90, r.q.p99
    )
}

/// Drives the same click mix through all three clients against one live
/// gateway (4 workers, each its own Popularity replica, answering inline)
/// and asserts the tentpole's two wire-level claims: binary p50 strictly
/// under JSON p50, and pipelined throughput ≥ 1.5× the blocking JSON
/// client.
fn wire_phase(world: &World, reqs: &[(usize, Vec<usize>)]) -> [WireReport; 3] {
    let wire_reqs: Vec<RecommendRequest> = reqs
        .iter()
        .map(|(tenant, clicks)| RecommendRequest {
            tenant: *tenant,
            question: None,
            clicks: clicks.clone(),
        })
        .collect();
    let parts = WireParts::from_world(world);
    let registry = MetricsRegistry::new();
    let gateway = Gateway::spawn(
        "127.0.0.1:0",
        // Binary connections hold their worker for the connection's
        // lifetime; 4 covers the pipelined pool plus a keep-alive JSON
        // socket that has not yet hit its idle deadline.
        GatewayConfig { workers: 4, ..Default::default() },
        &registry,
        move |_worker| parts.build(),
    )
    .expect("gateway binds an ephemeral port");
    let addr = gateway.addr();

    let (json_r, json_responses) = wire_json_blocking(addr, &wire_reqs);
    let (bin_r, bin_responses) = wire_binary_blocking(addr, &wire_reqs);
    let piped_r = wire_binary_pipelined(addr, &wire_reqs, 1, 64);
    gateway.shutdown();

    // Codec parity before codec speed: both wire encodings must carry the
    // exact same answers.
    assert_eq!(json_responses.len(), bin_responses.len());
    for (i, (a, b)) in json_responses.iter().zip(&bin_responses).enumerate() {
        assert!(a.same_content(b), "wire response {i} diverged between JSON and binary");
    }

    println!("\n== wire codecs ==  {} requests per codec, 4 gateway workers", wire_reqs.len());
    println!(
        "  {:<18} {:>12} {:>14} {:>7} {:>7} {:>7}",
        "codec", "wall", "throughput", "p50", "p90", "p99"
    );
    for r in [&json_r, &bin_r, &piped_r] {
        print_wire(r);
    }

    assert!(
        bin_r.q.p50 < json_r.q.p50,
        "binary round-trip p50 ({} us) must be strictly below JSON p50 ({} us)",
        bin_r.q.p50,
        json_r.q.p50
    );
    let ratio = piped_r.throughput_rps / json_r.throughput_rps;
    println!(
        "\nbinary/json p50: {} us vs {} us | pipelined/json throughput: {ratio:.2}x",
        bin_r.q.p50, json_r.q.p50
    );
    assert!(
        ratio >= 1.5,
        "pipelined binary throughput ({:.0} req/s) must be >= 1.5x blocking JSON ({:.0} req/s)",
        piped_r.throughput_rps,
        json_r.throughput_rps
    );
    [json_r, bin_r, piped_r]
}

/// `--pool-parity`: replay the workload through `handle_tag_click_batch`
/// under compute-pool sizes {1, 4} with the parallel threshold forced to 1
/// and assert the responses are byte-identical — the smoke-level proof that
/// `pool_threads` is a pure performance knob all the way up the stack.
fn pool_parity(world: &World, reqs: &[(usize, Vec<usize>)], batch_max: usize) {
    set_par_threshold(1);
    let mut per_size: Vec<Vec<TagClickResponse>> = Vec::new();
    for threads in [1usize, 4] {
        set_pool_threads(threads);
        println!("training checkpoint under pool_threads = {threads} ...");
        let server = build_server(world);
        per_size.push(
            reqs.chunks(batch_max).flat_map(|chunk| server.handle_tag_click_batch(chunk)).collect(),
        );
    }
    set_pool_threads(0);
    set_par_threshold(DEFAULT_PAR_THRESHOLD);
    let (a, b) = (&per_size[0], &per_size[1]);
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert!(x.same_content(y), "response {i} diverged between pool sizes 1 and 4");
    }
    println!("pool parity: all {} responses byte-identical across pool sizes 1 and 4", a.len());
}

// ---------------------------------------------------------------------------
// Governed phase: one self-tuning config vs both static extremes, across a
// latency regime and a saturation regime in a single run.
// ---------------------------------------------------------------------------

/// A snapshot of every governed knob, read from the live process.
#[derive(Clone, Copy)]
struct KnobState {
    batch_max: usize,
    pool_threads: usize,
    par_threshold: usize,
    shed_depth: usize,
}

impl KnobState {
    fn live(knobs: &RuntimeKnobs) -> KnobState {
        KnobState {
            batch_max: knobs.batch_max(),
            pool_threads: pool_threads(),
            par_threshold: par_threshold(),
            shed_depth: knobs.shed_depth(),
        }
    }

    fn to_json(self) -> String {
        format!(
            "{{\"batch_max\": {}, \"pool_threads\": {}, \"par_threshold\": {}, \"shed_depth\": {}}}",
            self.batch_max, self.pool_threads, self.par_threshold, self.shed_depth
        )
    }
}

/// The two-regime workload every config replays, plus the untimed warm
/// traffic that opens caches and (for the governed run) gives the control
/// loop ticks to adapt on before the stopwatch starts.
struct GovernorWorkloads {
    latency: Vec<(usize, Vec<usize>)>,
    saturation: Vec<(usize, Vec<usize>)>,
    warm: Vec<(usize, Vec<usize>)>,
    clients: usize,
}

/// One config's trip through both regimes.
struct RegimeRun {
    name: &'static str,
    latency: Quantiles,
    saturation_rps: f64,
    responses: Vec<TagClickResponse>,
    initial: KnobState,
    final_knobs: KnobState,
    decisions: u64,
}

/// Hammers the front with `clients` blocking threads striding the request
/// list, and reassembles the responses in request order so parity stays
/// elementwise.
fn saturate(
    front: &ShardedServer,
    reqs: &[(usize, Vec<usize>)],
    clients: usize,
) -> (u64, Vec<TagClickResponse>) {
    let t = Instant::now();
    let per_client: Vec<Vec<(usize, TagClickResponse)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || {
                    reqs.iter()
                        .enumerate()
                        .skip(c)
                        .step_by(clients)
                        .map(|(i, (tenant, clicks))| (i, front.handle_tag_click(*tenant, clicks)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("saturation client")).collect()
    });
    let wall_us = t.elapsed().as_micros() as u64;
    let mut responses: Vec<Option<TagClickResponse>> = (0..reqs.len()).map(|_| None).collect();
    for chunk in per_client {
        for (i, r) in chunk {
            responses[i] = Some(r);
        }
    }
    (wall_us, responses.into_iter().map(|r| r.expect("every request answered")).collect())
}

/// Spawns one sharded front at the given static knobs (optionally governed),
/// replays the latency regime serially and the saturation regime
/// concurrently, and returns both regime numbers plus the knob trajectory.
fn regime_run(
    world: &Arc<World>,
    name: &'static str,
    batch_max: usize,
    pool: usize,
    governed: bool,
    wl: &GovernorWorkloads,
) -> RegimeRun {
    set_pool_threads(pool);
    set_par_threshold(DEFAULT_PAR_THRESHOLD);
    let registry = MetricsRegistry::new();
    println!("training checkpoint for `{name}` (batch_max = {batch_max}, pool = {pool}) ...");
    let factory_world = Arc::clone(world);
    let front = ShardedServer::spawn(
        ShardConfig { shards: 1, batch_max, queue_capacity: 64, ..Default::default() },
        registry.clone(),
        move |_| build_server(&factory_world),
    );
    let knobs = front.knobs();
    let governor = if governed {
        let cfg = GovernorConfig {
            initial_batch_max: batch_max,
            initial_pool_threads: pool,
            initial_shed_depth: 64,
            shed_bounds: KnobBounds { min: 8, max: 64 },
            ..GovernorConfig::default()
        };
        let log = DecisionLog::new(4096);
        let runtime = GovernorRuntime::spawn(
            cfg.clone(),
            registry.clone(),
            Arc::clone(&knobs),
            log.clone(),
            Duration::from_millis(5),
        );
        Some((cfg, log, runtime))
    } else {
        None
    };
    let initial = KnobState::live(&knobs);

    // Untimed warm-up: open the score caches before the stopwatch starts.
    for (tenant, clicks) in wl.warm.iter().take(32) {
        front.handle_tag_click(*tenant, clicks);
    }

    // -- latency regime: one blocking request at a time. Three passes, and
    // the reported quantiles come from the quietest one: single-request
    // tails on a shared CI core are scheduling-noise-bound, and a one-off
    // preemption must not masquerade as a knob regression.
    let mut responses: Vec<TagClickResponse> = Vec::new();
    let mut latency: Option<Quantiles> = None;
    for pass in 0..5 {
        let hist = Histogram::new();
        let pass_responses: Vec<TagClickResponse> = wl
            .latency
            .iter()
            .map(|(tenant, clicks)| {
                let t0 = Instant::now();
                let resp = front.handle_tag_click(*tenant, clicks);
                hist.record(t0.elapsed().as_micros() as u64);
                resp
            })
            .collect();
        if pass == 0 {
            responses = pass_responses;
        }
        let q = quantiles(&hist);
        if latency.as_ref().is_none_or(|best| q.p99 < best.p99) {
            latency = Some(q);
        }
    }
    let latency = latency.expect("at least one latency pass");

    // An idle trickle between the regimes: sparse lone requests keep the
    // drain counters moving while queues sit empty, which is exactly the
    // idle signal the governed loop shrinks `batch_max` on. Statics just
    // serve a handful of cheap requests.
    for (tenant, clicks) in wl.warm.iter().take(15) {
        front.handle_tag_click(*tenant, clicks);
        std::thread::sleep(Duration::from_millis(2));
    }

    // -- saturation regime: a full untimed adaptation pass (the governed
    // loop needs several backlog ticks to walk `batch_max` back up), then
    // three timed passes keeping the quietest wall clock — a 12-client
    // hammer on a shared core is scheduler roulette, and a preempted pass
    // must not masquerade as a knob regression. Statics get the identical
    // treatment, so the comparison stays fair.
    let _ = saturate(&front, &wl.saturation, wl.clients);
    let mut saturation_rps = 0f64;
    for pass in 0..3 {
        let (sat_wall_us, sat_responses) = saturate(&front, &wl.saturation, wl.clients);
        if pass == 0 {
            responses.extend(sat_responses);
        }
        let rps = wl.saturation.len() as f64 / (sat_wall_us.max(1) as f64 / 1e6);
        saturation_rps = saturation_rps.max(rps);
    }

    let final_knobs = KnobState::live(&knobs);
    let mut decisions = 0;
    if let Some((cfg, log, runtime)) = governor {
        decisions = runtime.decision_count();
        // Determinism proof while the loop still ticks: the log is an
        // append-only pure function of the observation prefix, so lines
        // read *before* the trace must be a prefix of the trace's replay.
        let lines = log.lines();
        let trace = runtime.observations();
        let replayed = Governor::replay(cfg, &trace);
        assert!(
            replayed.len() >= lines.len() && replayed[..lines.len()] == lines[..],
            "recorded trace must replay to the live decision log \
             (replayed {} lines, live log has {})",
            replayed.len(),
            lines.len()
        );
        println!(
            "  `{name}`: {decisions} decisions, trace of {} observations replays byte-identically",
            trace.len()
        );
        runtime.stop();
    }
    drop(front);
    set_pool_threads(0);
    set_par_threshold(DEFAULT_PAR_THRESHOLD);

    RegimeRun { name, latency, saturation_rps, responses, initial, final_knobs, decisions }
}

/// `--governor`: races one governed config against both static extremes on
/// the same two-regime workload and asserts the paper-grade claim — a
/// single governed process matches the latency-tuned extreme's p99 *and*
/// the throughput-tuned extreme's saturated throughput, byte-identically.
fn governor_phase(world: &Arc<World>, smoke: bool) -> [RegimeRun; 3] {
    let (lat_n, sat_n, warm_n) = if smoke { (160, 960, 240) } else { (400, 1_920, 480) };
    let wl = GovernorWorkloads {
        latency: workload(world, 1313, lat_n),
        saturation: workload(world, 2717, sat_n),
        warm: workload(world, 3535, warm_n),
        clients: 12,
    };
    println!(
        "\n== governed serving ==  latency regime: {lat_n} serial requests | \
         saturation regime: {sat_n} requests x {} clients",
        wl.clients
    );

    let latency_tuned = regime_run(world, "latency_tuned", 1, hardware_threads(), false, &wl);
    let throughput_tuned = regime_run(world, "throughput_tuned", 32, 1, false, &wl);
    let governed = regime_run(world, "governed", 8, 1, true, &wl);

    // Parity across configs before any speed claim: every governed knob is
    // a pure performance knob, so all three fronts must answer identically.
    for run in [&throughput_tuned, &governed] {
        assert_eq!(latency_tuned.responses.len(), run.responses.len());
        for (i, (a, b)) in latency_tuned.responses.iter().zip(&run.responses).enumerate() {
            assert!(
                a.same_content(b),
                "response {i} diverged between latency_tuned and {}",
                run.name
            );
        }
    }
    println!(
        "parity: all {} responses byte-identical across all three configs",
        latency_tuned.responses.len()
    );

    println!(
        "  {:<18} {:>8} {:>8} {:>11} {:>10}  final knobs",
        "config", "p50 us", "p99 us", "sat req/s", "decisions"
    );
    for r in [&latency_tuned, &throughput_tuned, &governed] {
        println!(
            "  {:<18} {:>8} {:>8} {:>11.0} {:>10}  batch={} pool={} par={}",
            r.name,
            r.latency.p50,
            r.latency.p99,
            r.saturation_rps,
            r.decisions,
            r.final_knobs.batch_max,
            r.final_knobs.pool_threads,
            r.final_knobs.par_threshold
        );
    }

    // The acceptance claim, both halves on the same run: the governed
    // config lives within matching distance of the latency extreme's tail
    // while beating the un-batched extreme's throughput and holding the
    // batched extreme's.
    assert!(governed.decisions > 0, "the governor never stepped a knob across both regimes");
    for stat in [&latency_tuned, &throughput_tuned] {
        assert!(
            governed.latency.p99 as f64 <= 1.35 * stat.latency.p99 as f64,
            "latency regime: governed p99 ({} us) must match {} p99 ({} us) within 35%",
            governed.latency.p99,
            stat.name,
            stat.latency.p99
        );
    }
    assert!(
        governed.saturation_rps >= 1.10 * latency_tuned.saturation_rps,
        "saturation: governed ({:.0} req/s) must beat the latency-tuned extreme ({:.0} req/s)",
        governed.saturation_rps,
        latency_tuned.saturation_rps
    );
    assert!(
        governed.saturation_rps >= 0.80 * throughput_tuned.saturation_rps,
        "saturation: governed ({:.0} req/s) must hold the throughput-tuned extreme ({:.0} req/s) \
         within 20%",
        governed.saturation_rps,
        throughput_tuned.saturation_rps
    );
    println!(
        "\ngoverned vs extremes: p99 {} us (best static {} us) | \
         saturated {:.0} req/s ({:.2}x latency-tuned, {:.2}x throughput-tuned)",
        governed.latency.p99,
        latency_tuned.latency.p99.min(throughput_tuned.latency.p99),
        governed.saturation_rps,
        governed.saturation_rps / latency_tuned.saturation_rps,
        governed.saturation_rps / throughput_tuned.saturation_rps
    );
    [latency_tuned, throughput_tuned, governed]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let parity_only = args.iter().any(|a| a == "--pool-parity");
    let governor = args.iter().any(|a| a == "--governor");
    let pool = args
        .iter()
        .position(|a| a == "--pool")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse::<usize>().expect("--pool takes a thread count"));
    let requests = if smoke || parity_only { 240 } else { 2_000 };
    let batch_max = 8usize;

    let world = Arc::new(World::generate(WorldConfig::tiny(71)));
    let reqs = workload(&world, 909, requests);

    if parity_only {
        pool_parity(&world, &reqs, batch_max);
        return;
    }
    if let Some(threads) = pool {
        set_pool_threads(threads);
        println!("compute pool: {} threads", intellitag::prelude::pool_threads());
    }

    println!("training IntelliTag checkpoint for the serial phase ...");
    let serial_server = build_server(&world);
    println!("training the identical checkpoint for the batched phase ...");
    let batched_server = build_server(&world);

    // ---- serial: one forward per request ---------------------------------
    let t = Instant::now();
    let serial_responses: Vec<TagClickResponse> = reqs
        .iter()
        .map(|(tenant, clicks)| serial_server.handle_tag_click(*tenant, clicks))
        .collect();
    let serial_wall = t.elapsed().as_micros() as u64;

    // ---- batched: one stacked forward per micro-batch --------------------
    let t = Instant::now();
    let batched_responses: Vec<TagClickResponse> = reqs
        .chunks(batch_max)
        .flat_map(|chunk| batched_server.handle_tag_click_batch(chunk))
        .collect();
    let batched_wall = t.elapsed().as_micros() as u64;

    // Parity first: speed means nothing if the answers moved.
    assert_eq!(serial_responses.len(), batched_responses.len());
    for (i, (a, b)) in serial_responses.iter().zip(&batched_responses).enumerate() {
        assert!(a.same_content(b), "batched response {i} diverged from serial");
    }
    println!("parity: all {requests} batched responses byte-identical to serial");

    let serial = phase_report("serial", &serial_server, serial_wall, requests);
    let batched = phase_report("batched", &batched_server, batched_wall, requests);
    print_report(&serial, requests);
    print_report(&batched, requests);

    let speedup = batched.throughput_rps / serial.throughput_rps;
    println!("\nbatched/serial throughput: {speedup:.2}x (batch_max = {batch_max})");
    assert!(
        batched.throughput_rps > serial.throughput_rps,
        "batched throughput ({:.0} req/s) must beat serial ({:.0} req/s)",
        batched.throughput_rps,
        serial.throughput_rps
    );

    // Per-tenant-tier SLO view of the batched phase, against the paper's
    // 150 ms budget (Table VI).
    let slo = SloReport::from_registry(batched_server.metrics(), 150_000);
    println!("\n{}", slo.render_text());

    // The same click mix shape, now over real TCP: blocking JSON vs
    // blocking binary frames vs the pipelined binary client. Wire round
    // trips are microseconds, so the phase gets a larger request count
    // than the model phases to keep the wall-clock numbers out of the
    // noise.
    let wire_requests = if smoke { 1_200 } else { 4_000 };
    let wire = wire_phase(&world, &workload(&world, 4242, wire_requests));

    // The self-tuning phase: one governed config against both static
    // extremes, two traffic regimes, byte-identical answers.
    let governed_runs = if governor { Some(governor_phase(&world, smoke)) } else { None };

    if json {
        let wire_body = format!(
            "  \"wire\": {{\n    \"requests\": {},\n{},\n{},\n{},\n    \"binary_vs_json_p50\": {:.3},\n    \"pipelined_vs_json_throughput\": {:.3}\n  }}",
            wire_requests,
            wire_json(&wire[0]),
            wire_json(&wire[1]),
            wire_json(&wire[2]),
            wire[1].q.p50 as f64 / wire[0].q.p50.max(1) as f64,
            wire[2].throughput_rps / wire[0].throughput_rps,
        );
        // Both ends of the governed knob trajectory land in the JSON: what
        // the process started at and where the governor left every knob.
        let governor_body = governed_runs
            .as_ref()
            .map(|[lt, tt, gv]| {
                format!(
                    "  \"governor\": {{\n    \"decisions\": {},\n    \"initial\": {},\n    \"final\": {},\n    \"latency_p99_us\": {{\"latency_tuned\": {}, \"throughput_tuned\": {}, \"governed\": {}}},\n    \"saturation_rps\": {{\"latency_tuned\": {:.1}, \"throughput_tuned\": {:.1}, \"governed\": {:.1}}}\n  }},\n",
                    gv.decisions,
                    gv.initial.to_json(),
                    gv.final_knobs.to_json(),
                    lt.latency.p99,
                    tt.latency.p99,
                    gv.latency.p99,
                    lt.saturation_rps,
                    tt.saturation_rps,
                    gv.saturation_rps,
                )
            })
            .unwrap_or_default();
        let body = format!(
            "{{\n  \"bench\": \"serving\",\n  \"mode\": \"{}\",\n  \"model\": \"intellitag\",\n  \"requests\": {},\n  \"batch_max\": {},\n  \"pool_threads\": {},\n  \"par_threshold\": {},\n{},\n{},\n  \"slo\": {},\n{},\n{}  \"speedup\": {:.3}\n}}\n",
            if smoke { "smoke" } else { "full" },
            requests,
            batch_max,
            intellitag::prelude::pool_threads(),
            par_threshold(),
            json_report(&serial),
            json_report(&batched),
            slo.to_json(),
            wire_body,
            governor_body,
            speedup
        );
        std::fs::write("BENCH_serving.json", &body).expect("write BENCH_serving.json");
        println!("wrote BENCH_serving.json");
    }
}
