//! Load-generate against the gateway over a real TCP socket: a sharded
//! `ShardedServer` of real IntelliTag replicas behind `Gateway`, hammered
//! by N client threads of click-heavy mixed traffic, with a mid-run
//! `/metrics` scrape and a wire-level latency report (p50/p90/p99 from
//! the shared obs histograms).
//!
//! `--binary` switches the client threads from the blocking JSON
//! `GatewayClient` to the pipelined binary `PipelinedClient` (16
//! correlated frames in flight per socket); the mid-run scrape and the
//! end-of-run traced probe still ride HTTP on the same port, proving the
//! sniffer serves both protocols side by side.
//!
//! Because IntelliTag forwards cost real time, concurrent clients outpace
//! the workers and micro-batch drains actually fill: the run asserts the
//! merged `sharded.batch_rows` mean lands above 1 (amortized forwards).
//!
//! Every request is accounted for: answered + shed == sent, or the run
//! fails. Shed responses (`503` / shed error frames) are load management,
//! not loss.
//!
//! `--governor` attaches the self-tuning runtime governor to the front:
//! the control loop samples live queue depths and SLO burn while the load
//! runs, steps `batch_max` / shed depth on the shared knobs, and serves
//! its decision log at `/debug/governor` on the same port as the load —
//! the run scrapes it over the wire and replays the recorded observation
//! trace to prove the decision log is deterministic.
//!
//! ```sh
//! cargo run --release --example http_loadgen                      # 8 JSON clients
//! cargo run --release --example http_loadgen -- --smoke           # small CI-sized run
//! cargo run --release --example http_loadgen -- --binary --smoke  # pipelined binary clients
//! cargo run --release --example http_loadgen -- --governor        # governed front + /debug/governor
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use intellitag::gateway::ClientError;
use intellitag::obs::GOVERNOR_TICKS_METRIC;
use intellitag::prelude::*;

/// Splitmix64: a tiny deterministic traffic mixer.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Retrain the deterministic IntelliTag checkpoint (fixed seeds → identical
/// weights per replica) and wrap it in a fresh `ModelServer`.
fn build_replica(world: &World) -> ModelServer<IntelliTag> {
    let graph = world.build_graph();
    let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
    let train: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
    let cfg = TagRecConfig {
        dim: 16,
        heads: 2,
        seq_layers: 1,
        neighbor_cap: 4,
        train: TrainConfig {
            epochs: 1,
            lr: 0.01,
            batch_size: 16,
            seed: 7,
            mask_prob: 0.0,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = IntelliTag::train(&graph, &texts, &train, cfg);
    ModelServer::new(
        model,
        world.build_kb(),
        texts,
        world.rqs.iter().map(|r| r.tags.clone()).collect(),
        (0..world.tenants.len()).map(|t| world.tenant_tag_pool(t)).collect(),
        world.click_frequency(),
    )
}

/// Pull `(name, duration_us)` out of one `/debug/traces` JSON line.
fn span_durations(trace_line: &str) -> Vec<(String, u64)> {
    let field = |obj: &str, key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let at = obj.find(&pat)? + pat.len();
        let rest = &obj[at..];
        let end = rest.find([',', '}']).unwrap_or(rest.len());
        rest[..end].trim().parse().ok()
    };
    let spans_at = trace_line.find("\"spans\":[").expect("spans array") + "\"spans\":[".len();
    let body = &trace_line[spans_at..trace_line.rfind(']').expect("array close")];
    body.split("},")
        .filter(|s| !s.trim().is_empty())
        .map(|obj| {
            let name_at = obj.find("\"name\":\"").expect("span name") + "\"name\":\"".len();
            let name = obj[name_at..].split('"').next().expect("name close").to_string();
            let start = field(obj, "start_us").expect("start_us");
            let end = field(obj, "end_us").expect("end_us");
            (name, end - start)
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let binary = std::env::args().any(|a| a == "--binary");
    let governed = std::env::args().any(|a| a == "--governor");
    let (clients, per_client) = if smoke { (8usize, 40usize) } else { (8usize, 200usize) };
    let in_flight = 16usize;

    // ---- the stack: world -> sharded IntelliTag front -> HTTP gateway ----
    let world = Arc::new(World::generate(WorldConfig::tiny(77)));
    let tenants = world.tenants.len();
    let questions: Vec<String> = world.rqs.iter().take(12).map(|r| r.text()).collect();

    let registry = MetricsRegistry::new();
    let shards = if smoke { 2usize } else { 4usize };
    println!("spawning a {shards}-shard IntelliTag front (power-of-two-choices routing) ...");
    let factory_world = Arc::clone(&world);
    let front = Arc::new(ShardedServer::spawn(
        ShardConfig {
            shards,
            batch_max: 8,
            queue_capacity: 256,
            routing: RoutingPolicy::PowerOfTwoChoices,
            ..Default::default()
        },
        registry.clone(),
        move |shard| {
            let server = build_replica(&factory_world);
            println!("  shard {shard}: IntelliTag replica trained");
            server
        },
    ));

    // The self-tuning loop rides the same knobs the workers drain under;
    // its decision log is handed to the gateway so `/debug/governor` can
    // serve it on the load-bearing port. Defaults line up with the front:
    // initial `batch_max` 8, shed depth at the 256 queue capacity.
    let knobs = front.knobs();
    let governor = governed.then(|| {
        let cfg = GovernorConfig::default();
        let log = DecisionLog::new(4096);
        let runtime = GovernorRuntime::spawn(
            cfg.clone(),
            registry.clone(),
            Arc::clone(&knobs),
            log.clone(),
            Duration::from_millis(5),
        );
        println!("governor attached: sampling every 5 ms, decisions at /debug/governor");
        (cfg, log, runtime)
    });

    let share = Arc::clone(&front);
    let gateway = Gateway::spawn(
        "127.0.0.1:0",
        // One gateway worker per client: the gateway must not be the
        // concurrency bottleneck, or shard queues never build depth and
        // micro-batches stay singletons. A binary connection holds its
        // worker for the connection's lifetime, so binary mode adds two
        // spares for the mid-run HTTP scraper and the traced probe.
        GatewayConfig {
            workers: if binary { clients + 2 } else { clients },
            governor: governor.as_ref().map(|(_, log, _)| log.clone()),
            ..Default::default()
        },
        &registry,
        move |_worker| Arc::clone(&share),
    )
    .expect("gateway binds an ephemeral port");
    let addr = gateway.addr();
    println!(
        "gateway listening on http://{addr} ({clients} {} clients x {per_client} requests)\n",
        if binary { "pipelined binary" } else { "blocking JSON" }
    );

    // ---- drive mixed traffic over the wire -------------------------------
    let answered = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    // Sheds suffered by the mid-run scraper, tracked separately: they
    // increment `gateway.shed` but are not part of the load accounting.
    let scrape_shed = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for client in 0..clients {
            let questions = &questions;
            let world = &world;
            let registry = &registry;
            let (answered, shed) = (&answered, &shed);
            scope.spawn(move || {
                let mut rng = Rng((client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x10AD);
                let wire = registry.histogram("loadgen.wire_us");
                // Click-heavy mix (4/6 clicks): the tag-click path is the
                // one the workers micro-batch, so it carries the load.
                let reqs: Vec<RecommendRequest> = (0..per_client)
                    .map(|_| {
                        let tenant = rng.below(tenants);
                        match rng.below(6) {
                            0 => RecommendRequest {
                                tenant,
                                question: Some(questions[rng.below(questions.len())].clone()),
                                clicks: vec![],
                            },
                            1 => RecommendRequest { tenant, question: None, clicks: vec![] },
                            _ => {
                                let pool = world.tenant_tag_pool(tenant);
                                let n = 1 + rng.below(3.min(pool.len().max(1)));
                                RecommendRequest {
                                    tenant,
                                    question: None,
                                    clicks: (0..n).map(|_| pool[rng.below(pool.len())]).collect(),
                                }
                            }
                        }
                    })
                    .collect();
                if binary {
                    // Pipelined binary frames: up to `in_flight` correlated
                    // requests ride one socket, completing out of order.
                    let mut gw = PipelinedClient::new(addr, 1, in_flight)
                        .with_timeout(Duration::from_secs(10));
                    let mut started: HashMap<u64, Instant> = HashMap::new();
                    let absorb = |c: Completion, started: &HashMap<u64, Instant>| {
                        let t0 = started[&c.corr_id];
                        match &c.payload {
                            ReplyPayload::Response(_) => {
                                wire.record(t0.elapsed().as_micros() as u64);
                                answered.fetch_add(1, Ordering::Relaxed);
                            }
                            _ if c.payload.is_shed() => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            ReplyPayload::Error(e) => {
                                panic!("client {client}: frame lost: {:?} `{}`", e.code, e.message)
                            }
                        }
                    };
                    for req in &reqs {
                        let corr = gw.submit(req, 0).expect("submit");
                        started.insert(corr, Instant::now());
                        while gw.in_flight() >= in_flight {
                            absorb(gw.next_completion().expect("completion"), &started);
                        }
                    }
                    for c in gw.drain().expect("drain") {
                        absorb(c, &started);
                    }
                } else {
                    let mut gw =
                        GatewayClient::new(addr).with_timeout(Duration::from_millis(10_000));
                    for req in &reqs {
                        let timer = SpanTimer::start();
                        let result =
                            if req.clicks.is_empty() { gw.recommend(req) } else { gw.click(req) };
                        match result {
                            Ok(_) => {
                                wire.record(timer.elapsed_us());
                                answered.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(ClientError::Shed) => {
                                shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("client {client}: request lost: {e}"),
                        }
                    }
                }
            });
        }

        // One live scrape while the load is in flight — the registry is
        // served over the same gateway the load rides. A saturated gateway
        // may shed the scrape connection too; count each shed attempt so
        // the run-end `gateway.shed` accounting stays exact, and retry.
        scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(10));
            let mut scraper = GatewayClient::new(addr);
            for attempt in 1..=20 {
                match scraper.scrape_metrics() {
                    Ok(text) => {
                        let parsed = parse_prometheus(&text).expect("mid-run scrape must parse");
                        println!(
                            "mid-run /metrics scrape: {} bytes, {} samples, parses cleanly",
                            text.len(),
                            parsed.len()
                        );
                        return;
                    }
                    Err(ClientError::Shed) => {
                        scrape_shed.fetch_add(1, Ordering::Relaxed);
                        println!("mid-run scrape attempt {attempt} shed (gateway saturated)");
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => panic!("mid-run scrape failed: {e}"),
                }
            }
            println!("mid-run scrape gave up: gateway saturated for all attempts");
        });
    });
    let elapsed = started.elapsed();

    // ---- accounting: nothing lost ----------------------------------------
    let sent = (clients * per_client) as u64;
    let answered = answered.into_inner();
    let shed_seen = shed.into_inner();
    let scrape_shed = scrape_shed.into_inner();
    assert_eq!(
        answered + shed_seen,
        sent,
        "lost requests: answered {answered} + shed {shed_seen} != sent {sent}"
    );
    if binary {
        // Frame-level accounting: every 200/503 the gateway counted on the
        // binary routes is one a client absorbed as a completion.
        let count = |route: &str, status: &str| {
            registry
                .counter_labeled("gateway.requests", &[("route", route), ("status", status)])
                .get()
        };
        let served_srv = count("recommend_bin", "200") + count("click_bin", "200");
        let shed_srv = count("recommend_bin", "503") + count("click_bin", "503");
        assert_eq!(served_srv, answered, "gateway 200 counters must match answered frames");
        assert_eq!(shed_srv, shed_seen, "gateway 503 counters must match shed frames");
        // Queue sheds ride error frames, not the accept path, so the only
        // accept-level sheds possible here are the scraper's.
        assert_eq!(registry.counter("gateway.shed").get(), scrape_shed);
    } else {
        // Every shed the gateway counted is one a client observed — load
        // traffic or the scraper, nothing unaccounted.
        assert_eq!(registry.counter("gateway.shed").get(), shed_seen + scrape_shed);
    }
    println!(
        "\nsent {sent} | answered {answered} | shed {shed_seen} | zero lost | {:.0} req/s",
        answered as f64 / elapsed.as_secs_f64()
    );

    // ---- the latency ladder, all from one registry -----------------------
    let wire = registry.histogram("loadgen.wire_us").snapshot();
    let gw_us = registry.merged_histogram("gateway.request_us");
    let shard_us = registry.merged_histogram("sharded.request_us");
    let model_us = registry.histogram("serving.request_us").snapshot();
    println!("\n{:<26} {:>8} {:>10} {:>10} {:>10}", "stage", "n", "p50", "p90", "p99");
    for (stage, h) in [
        ("client wire round-trip", &wire),
        ("gateway handling", &gw_us),
        ("sharded front", &shard_us),
        ("model serving", &model_us),
    ] {
        println!(
            "{:<26} {:>8} {:>7} us {:>7} us {:>7} us",
            stage,
            h.count,
            h.quantile(0.5),
            h.quantile(0.9),
            h.quantile(0.99)
        );
    }

    // ---- micro-batch fill: the whole point of the batched path -----------
    let drains = registry.merged_histogram("sharded.batch");
    let rows = registry.merged_histogram("sharded.batch_rows");
    let rows_mean = rows.mean();
    println!(
        "\nmicro-batching: {} drains | {} click batches | rows mean {:.2} | rows max {}",
        drains.count, rows.count, rows_mean, rows.max
    );
    assert!(
        rows_mean > 1.0,
        "click batches never filled: sharded.batch_rows mean {rows_mean:.2} <= 1 \
         (clients should outpace IntelliTag forwards)"
    );

    println!("\ngateway route counters:");
    for line in registry.render_prometheus().lines() {
        if line.starts_with("gateway_requests{") {
            println!("  {line}");
        }
    }

    // ---- per-tenant-tier SLO view, against the paper's 150 ms budget ------
    let slo = SloReport::from_registry(&registry, 150_000);
    println!("\n{}", slo.render_text());

    // ---- trace e2e: one traced click, then read it back off the wire -----
    // A client-supplied X-Trace-Id must come back in /debug/traces with a
    // span decomposition that fits inside the measured wire latency.
    let mut prober = GatewayClient::new(addr).with_timeout(Duration::from_millis(10_000));
    let probe_id = 0x10ad_6e11u64;
    let pool = world.tenant_tag_pool(0);
    let probe = RecommendRequest { tenant: 0, question: None, clicks: vec![pool[0]] };
    let timer = SpanTimer::start();
    let (_, echoed) = prober.click_traced(&probe, probe_id).expect("traced probe answered");
    let wall_us = timer.elapsed_us().max(1);
    assert_eq!(echoed, Some(probe_id), "gateway must echo the client's X-Trace-Id");
    let traces = prober.debug_traces().expect("debug traces served");
    let retained = traces.lines().count();
    assert!(retained >= 1, "/debug/traces retained no traces after the run");
    let wanted = format!("\"trace_id\":\"{}\"", format_trace_id(probe_id));
    let line = traces
        .lines()
        .find(|l| l.contains(&wanted))
        .expect("probe trace retained (tail-based retention keeps the newest window)");
    let spans = span_durations(line);
    let dur = |name: &str| {
        spans.iter().find(|(n, _)| n == name).map(|(_, d)| *d).unwrap_or_else(|| {
            panic!("span `{name}` missing from probe trace: {spans:?}");
        })
    };
    // shard.queue + drain partition the in-front time; both they and the
    // gateway span must fit inside what the client measured on the wire.
    let decomposed = dur("shard.queue") + dur("drain");
    assert!(
        decomposed <= wall_us && dur("gateway") <= wall_us,
        "trace spans exceed wire latency: queue+drain {decomposed} us, \
         gateway {} us, wire {wall_us} us",
        dur("gateway")
    );
    println!(
        "trace e2e: {retained} retained traces | probe {} | queue+drain {decomposed} us \
         <= wire {wall_us} us",
        format_trace_id(probe_id)
    );

    // ---- governed run: scrape the decision log off the wire, replay it ---
    if let Some((cfg, log, runtime)) = governor {
        let body = prober.debug_governor().expect("debug governor served");
        assert!(
            body.contains(GOVERNOR_TICKS_METRIC),
            "/debug/governor must render governor.* metrics, got: {body}"
        );
        // The log is an append-only pure function of the observation
        // prefix, so lines read before the trace must be a prefix of the
        // trace's replay — byte-identical decision for decision.
        let lines = log.lines();
        let trace = runtime.observations();
        let replayed = Governor::replay(cfg, &trace);
        assert!(
            replayed.len() >= lines.len() && replayed[..lines.len()] == lines[..],
            "recorded trace must replay to the served decision log \
             (replayed {} lines, live log has {})",
            replayed.len(),
            lines.len()
        );
        println!(
            "\ngovernor: {} decisions over {} ticks | trace of {} observations replays \
             byte-identically | final batch_max {} shed_depth {}",
            runtime.decision_count(),
            registry.counter(GOVERNOR_TICKS_METRIC).get(),
            trace.len(),
            knobs.batch_max(),
            knobs.shed_depth()
        );
        runtime.stop();
    }

    gateway.shutdown();
    drop(front);
    println!("\ngateway drained and joined cleanly{}", if smoke { " (smoke run)" } else { "" });
}
