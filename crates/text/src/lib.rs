//! # intellitag-text
//!
//! Text processing substrate for the IntelliTag reproduction:
//!
//! * [`tokenize`] / [`Vocab`] — word tokenization and id mapping.
//! * [`CorpusStats`] — term frequency, IDF and PMI, backing the tag
//!   post-processing rules of paper §III-B.
//! * [`dbscan`] — density clustering for the automatic Q&A collection
//!   pipeline (paper §III-A uses DBSCAN over question embeddings).
//! * [`HashedEmbedder`] — deterministic feature-hashed sentence/tag vectors,
//!   the offline substitute for the paper's Transformer text embeddings.

#![warn(missing_docs)]

mod dbscan;
mod embed;
mod stats;
mod tokenize;

pub use dbscan::{dbscan, dbscan_points, Assignment};
pub use embed::{cosine, euclidean, l2_normalize, HashedEmbedder};
pub use stats::CorpusStats;
pub use tokenize::{tokenize, Vocab, UNK_ID, UNK_TOKEN};
