//! Corpus statistics backing the paper's tag post-processing rules (§III-B):
//! tag frequency, inverse document frequency, and averaged point-wise mutual
//! information between the words inside a tag.

use std::collections::HashMap;

/// Term/document statistics over a tokenized corpus.
#[derive(Debug, Clone, Default)]
pub struct CorpusStats {
    /// Total token occurrences per term.
    term_freq: HashMap<String, usize>,
    /// Number of documents containing the term.
    doc_freq: HashMap<String, usize>,
    /// Co-occurrence counts of ordered-normalized word pairs within a window.
    pair_freq: HashMap<(String, String), usize>,
    /// Total number of tokens in the corpus.
    total_tokens: usize,
    /// Number of documents.
    num_docs: usize,
    /// PMI co-occurrence window size (in tokens).
    window: usize,
}

impl CorpusStats {
    /// Creates empty statistics with a PMI co-occurrence window.
    pub fn new(window: usize) -> Self {
        CorpusStats { window: window.max(1), ..Default::default() }
    }

    /// Adds one document (a tokenized sentence) to the statistics.
    pub fn add_document(&mut self, tokens: &[String]) {
        self.num_docs += 1;
        self.total_tokens += tokens.len();
        let mut seen: HashMap<&str, ()> = HashMap::new();
        for tok in tokens {
            *self.term_freq.entry(tok.clone()).or_default() += 1;
            if seen.insert(tok, ()).is_none() {
                *self.doc_freq.entry(tok.clone()).or_default() += 1;
            }
        }
        for (i, a) in tokens.iter().enumerate() {
            for b in tokens.iter().skip(i + 1).take(self.window) {
                let key = if a <= b { (a.clone(), b.clone()) } else { (b.clone(), a.clone()) };
                *self.pair_freq.entry(key).or_default() += 1;
            }
        }
    }

    /// Number of documents ingested.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Total token occurrences of `term`.
    pub fn term_frequency(&self, term: &str) -> usize {
        self.term_freq.get(term).copied().unwrap_or(0)
    }

    /// Relative frequency `tf / total_tokens` of `term`.
    pub fn relative_frequency(&self, term: &str) -> f64 {
        if self.total_tokens == 0 {
            return 0.0;
        }
        self.term_frequency(term) as f64 / self.total_tokens as f64
    }

    /// Smoothed inverse document frequency:
    /// `ln((1 + N) / (1 + df)) + 1`.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        ((1.0 + self.num_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Point-wise mutual information between two words
    /// (`ln p(a,b) / (p(a) p(b))`), following Church & Hanks (1990) as cited
    /// by the paper. Returns a large negative value when the pair never
    /// co-occurs and 0 when either word is unseen.
    pub fn pmi(&self, a: &str, b: &str) -> f64 {
        let fa = self.term_frequency(a);
        let fb = self.term_frequency(b);
        if fa == 0 || fb == 0 || self.total_tokens == 0 {
            return 0.0;
        }
        let key =
            if a <= b { (a.to_string(), b.to_string()) } else { (b.to_string(), a.to_string()) };
        let fab = self.pair_freq.get(&key).copied().unwrap_or(0);
        if fab == 0 {
            return -10.0;
        }
        let n = self.total_tokens as f64;
        let p_ab = fab as f64 / n;
        let p_a = fa as f64 / n;
        let p_b = fb as f64 / n;
        (p_ab / (p_a * p_b)).ln()
    }

    /// Averaged PMI over all unordered word pairs inside a candidate tag
    /// (paper rule 4). Single-word tags score 0 by convention — the rule
    /// only measures intra-tag consistency.
    pub fn avg_pmi(&self, words: &[String]) -> f64 {
        if words.len() < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..words.len() {
            for j in i + 1..words.len() {
                sum += self.pmi(&words[i], &words[j]);
                count += 1;
            }
        }
        sum / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenize::tokenize;

    fn stats(docs: &[&str]) -> CorpusStats {
        let mut s = CorpusStats::new(4);
        for d in docs {
            s.add_document(&tokenize(d));
        }
        s
    }

    #[test]
    fn frequencies_count_occurrences() {
        let s = stats(&["a a b", "a c"]);
        assert_eq!(s.term_frequency("a"), 3);
        assert_eq!(s.term_frequency("b"), 1);
        assert_eq!(s.term_frequency("zzz"), 0);
        assert_eq!(s.num_docs(), 2);
        assert!((s.relative_frequency("a") - 0.6).abs() < 1e-9);
    }

    #[test]
    fn idf_decreases_with_document_frequency() {
        let s = stats(&["common rare", "common", "common other"]);
        assert!(s.idf("rare") > s.idf("common"));
        // unseen terms get the maximum idf
        assert!(s.idf("unseen") >= s.idf("rare"));
    }

    #[test]
    fn pmi_positive_for_collocations() {
        // "etc card" always co-occur; "etc" and "noise" never do.
        let s = stats(&[
            "apply etc card",
            "cancel etc card",
            "etc card fee",
            "random noise words",
            "more noise here",
        ]);
        assert!(s.pmi("etc", "card") > 0.0, "collocation should have positive PMI");
        assert_eq!(s.pmi("etc", "noise"), -10.0, "never co-occur");
        assert_eq!(s.pmi("etc", "unseen"), 0.0, "unseen word");
    }

    #[test]
    fn pmi_is_symmetric() {
        let s = stats(&["open bluetooth now", "bluetooth open later"]);
        assert!((s.pmi("open", "bluetooth") - s.pmi("bluetooth", "open")).abs() < 1e-12);
    }

    #[test]
    fn avg_pmi_single_word_is_zero() {
        let s = stats(&["a b c"]);
        assert_eq!(s.avg_pmi(&["a".into()]), 0.0);
        assert!(s.avg_pmi(&["a".into(), "b".into()]) != 0.0);
    }

    #[test]
    fn window_limits_pairs() {
        let mut s = CorpusStats::new(1);
        s.add_document(&tokenize("a b c"));
        // window 1: only adjacent pairs counted
        assert!(s.pmi("a", "b") > -10.0);
        assert_eq!(s.pmi("a", "c"), -10.0);
    }
}
