//! Deterministic text vectorization.
//!
//! The paper feeds questions through a Transformer to get sentence embeddings
//! for DBSCAN clustering (§III-A), and gives TagRec 100-dimensional tag
//! feature vectors "learned from a text perspective" (§VI-A3). With no
//! pretrained encoder available offline, this module provides the classical
//! substitute: L2-normalized feature-hashed bag-of-words vectors (optionally
//! with character n-grams), which preserve exactly the property both uses
//! rely on — texts about the same thing land close together in cosine space.

use crate::tokenize::tokenize;

/// FNV-1a 64-bit hash (stable across runs and platforms).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A feature-hashing text embedder producing fixed-width dense vectors.
#[derive(Debug, Clone)]
pub struct HashedEmbedder {
    dim: usize,
    /// Include character trigrams in addition to whole words, which gives
    /// related word forms ("activate"/"activation") overlapping features.
    pub char_ngrams: bool,
}

impl HashedEmbedder {
    /// Creates an embedder with the given output dimensionality.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "embedding dim must be positive");
        HashedEmbedder { dim, char_ngrams: true }
    }

    /// Output width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embeds one text into an L2-normalized vector. An empty text maps to
    /// the zero vector.
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let mut v = vec![0.0f32; self.dim];
        let tokens = tokenize(text);
        for tok in &tokens {
            self.add_feature(&mut v, tok.as_bytes());
            if self.char_ngrams && tok.len() > 3 {
                let bytes = tok.as_bytes();
                for w in bytes.windows(3) {
                    self.add_feature(&mut v, w);
                }
            }
        }
        l2_normalize(&mut v);
        v
    }

    /// Embeds a pre-tokenized slice of words (used for tag names).
    pub fn embed_tokens(&self, tokens: &[String]) -> Vec<f32> {
        self.embed(&tokens.join(" "))
    }

    fn add_feature(&self, v: &mut [f32], bytes: &[u8]) {
        let h = fnv1a(bytes);
        let idx = (h % self.dim as u64) as usize;
        // Sign hash decorrelates collisions (Weinberger et al., 2009).
        let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
        v[idx] += sign;
    }
}

/// Normalizes a vector to unit L2 norm in place (no-op on the zero vector).
pub fn l2_normalize(v: &mut [f32]) {
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity between two equal-length vectors (0 when either is 0).
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: length mismatch");
    let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
    let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Euclidean distance between two equal-length vectors.
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter().zip(b).map(|(x, y)| ((x - y) as f64).powi(2)).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedding_is_deterministic_and_normalized() {
        let e = HashedEmbedder::new(64);
        let a = e.embed("how to change password");
        let b = e.embed("how to change password");
        assert_eq!(a, b);
        let norm: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn similar_texts_are_closer_than_different_ones() {
        let e = HashedEmbedder::new(128);
        let q1 = e.embed("how do i change my password");
        let q2 = e.embed("change password how");
        let q3 = e.embed("apply for etc card on highway");
        assert!(cosine(&q1, &q2) > cosine(&q1, &q3));
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = HashedEmbedder::new(16);
        let v = e.embed("!!!");
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn cosine_bounds() {
        let e = HashedEmbedder::new(64);
        let a = e.embed("refund order cancel");
        let b = e.embed("bluetooth activate open");
        let c = cosine(&a, &b);
        assert!((-1.0..=1.0).contains(&c));
        assert!((cosine(&a, &a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn euclidean_zero_iff_same() {
        let e = HashedEmbedder::new(32);
        let a = e.embed("open account");
        assert_eq!(euclidean(&a, &a), 0.0);
        let b = e.embed("close account");
        assert!(euclidean(&a, &b) > 0.0);
    }

    #[test]
    fn embed_tokens_matches_joined_text() {
        let e = HashedEmbedder::new(32);
        let toks = vec!["initial".to_string(), "vpn".to_string(), "password".to_string()];
        assert_eq!(e.embed_tokens(&toks), e.embed("initial vpn password"));
    }
}
