//! DBSCAN density clustering (Ester et al., 1996), used by the automatic
//! Q&A collection pipeline to cluster user questions (paper §III-A).

/// Cluster assignment produced by [`dbscan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Point belongs to the cluster with this id (0-based, dense).
    Cluster(usize),
    /// Point is density noise.
    Noise,
}

impl Assignment {
    /// The cluster id, if any.
    pub fn cluster(self) -> Option<usize> {
        match self {
            Assignment::Cluster(c) => Some(c),
            Assignment::Noise => None,
        }
    }
}

/// Runs DBSCAN over `n` points given a pairwise distance function.
///
/// * `eps` — neighborhood radius.
/// * `min_pts` — minimum neighborhood size (including the point itself) for a
///   point to be a core point.
///
/// Returns one [`Assignment`] per point. Cluster ids are dense, assigned in
/// discovery order. The implementation is the textbook O(n²) algorithm, which
/// is appropriate for the few-thousand-question batches the collection
/// pipeline clusters per day.
pub fn dbscan(
    n: usize,
    eps: f64,
    min_pts: usize,
    mut dist: impl FnMut(usize, usize) -> f64,
) -> Vec<Assignment> {
    const UNVISITED: isize = -2;
    const NOISE: isize = -1;
    let mut labels = vec![UNVISITED; n];
    let mut cluster: isize = 0;

    let neighbors = |p: usize, dist: &mut dyn FnMut(usize, usize) -> f64| -> Vec<usize> {
        (0..n).filter(|&q| dist(p, q) <= eps).collect()
    };

    for p in 0..n {
        if labels[p] != UNVISITED {
            continue;
        }
        let nbrs = neighbors(p, &mut dist);
        if nbrs.len() < min_pts {
            labels[p] = NOISE;
            continue;
        }
        labels[p] = cluster;
        let mut queue: Vec<usize> = nbrs.into_iter().filter(|&q| q != p).collect();
        let mut qi = 0;
        while qi < queue.len() {
            let q = queue[qi];
            qi += 1;
            if labels[q] == NOISE {
                labels[q] = cluster; // border point
            }
            if labels[q] != UNVISITED {
                continue;
            }
            labels[q] = cluster;
            let qn = neighbors(q, &mut dist);
            if qn.len() >= min_pts {
                for r in qn {
                    if labels[r] == UNVISITED || labels[r] == NOISE {
                        queue.push(r);
                    }
                }
            }
        }
        cluster += 1;
    }

    labels
        .into_iter()
        .map(|l| if l >= 0 { Assignment::Cluster(l as usize) } else { Assignment::Noise })
        .collect()
}

/// Convenience wrapper clustering dense vectors by Euclidean distance.
pub fn dbscan_points(points: &[Vec<f32>], eps: f64, min_pts: usize) -> Vec<Assignment> {
    dbscan(points.len(), eps, min_pts, |a, b| {
        points[a]
            .iter()
            .zip(&points[b])
            .map(|(x, y)| (x - y) as f64 * (x - y) as f64)
            .sum::<f64>()
            .sqrt()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_blobs_and_noise() {
        let mut pts: Vec<Vec<f32>> = Vec::new();
        for i in 0..5 {
            pts.push(vec![0.0 + i as f32 * 0.01, 0.0]);
        }
        for i in 0..5 {
            pts.push(vec![10.0 + i as f32 * 0.01, 10.0]);
        }
        pts.push(vec![100.0, 100.0]); // outlier
        let a = dbscan_points(&pts, 0.5, 3);
        let c0 = a[0].cluster().unwrap();
        let c1 = a[5].cluster().unwrap();
        assert_ne!(c0, c1);
        for i in 0..5 {
            assert_eq!(a[i], Assignment::Cluster(c0));
            assert_eq!(a[5 + i], Assignment::Cluster(c1));
        }
        assert_eq!(a[10], Assignment::Noise);
    }

    #[test]
    fn all_noise_when_min_pts_too_high() {
        let pts = vec![vec![0.0], vec![10.0], vec![20.0]];
        let a = dbscan_points(&pts, 1.0, 2);
        assert!(a.iter().all(|&x| x == Assignment::Noise));
    }

    #[test]
    fn single_cluster_chain_links() {
        // Chain of points, each within eps of the next: one cluster.
        let pts: Vec<Vec<f32>> = (0..10).map(|i| vec![i as f32 * 0.9]).collect();
        let a = dbscan_points(&pts, 1.0, 2);
        assert!(a.iter().all(|&x| x == Assignment::Cluster(0)));
    }

    #[test]
    fn empty_input() {
        let a = dbscan_points(&[], 1.0, 2);
        assert!(a.is_empty());
    }

    #[test]
    fn border_point_joins_cluster() {
        // 3 dense core points + 1 border point within eps of a core point but
        // with too few neighbors to be core itself.
        let pts: Vec<Vec<f64>> = vec![vec![0.0], vec![0.1], vec![0.2], vec![1.0]];
        let a = dbscan(4, 0.85, 3, |x, y| (pts[x][0] - pts[y][0]).abs());
        assert_eq!(a[3].cluster(), a[0].cluster());
    }
}
