//! Tokenization and vocabulary handling.
//!
//! The paper works on Chinese customer-service text; this reproduction's
//! synthetic corpus is ASCII, so a lowercase word tokenizer (alphanumeric
//! runs) is the faithful equivalent of the paper's word segmentation step.

use std::collections::HashMap;

/// Splits text into lowercase alphanumeric tokens.
///
/// Punctuation and whitespace are separators; digits stay inside tokens so
/// product names like "etc2" survive.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Reserved id for out-of-vocabulary tokens.
pub const UNK_ID: usize = 0;
/// Reserved token string for out-of-vocabulary tokens.
pub const UNK_TOKEN: &str = "<unk>";

/// A frozen token ↔ id mapping with an `<unk>` fallback at id 0.
#[derive(Debug, Clone)]
pub struct Vocab {
    token_to_id: HashMap<String, usize>,
    id_to_token: Vec<String>,
}

impl Vocab {
    /// Builds a vocabulary from tokenized sentences, keeping tokens that
    /// appear at least `min_count` times. Ids are assigned in descending
    /// frequency (ties broken lexicographically) after the `<unk>` slot.
    pub fn build<'a, I>(sentences: I, min_count: usize) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for sent in sentences {
            for tok in sent {
                *counts.entry(tok.as_str()).or_default() += 1;
            }
        }
        let mut items: Vec<(&str, usize)> =
            counts.into_iter().filter(|&(_, c)| c >= min_count).collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut id_to_token = vec![UNK_TOKEN.to_string()];
        id_to_token.extend(items.iter().map(|(t, _)| t.to_string()));
        let token_to_id = id_to_token.iter().enumerate().map(|(i, t)| (t.clone(), i)).collect();
        Vocab { token_to_id, id_to_token }
    }

    /// Builds directly from raw strings using [`tokenize`].
    pub fn from_texts<S: AsRef<str>>(texts: &[S], min_count: usize) -> Self {
        let tokenized: Vec<Vec<String>> = texts.iter().map(|t| tokenize(t.as_ref())).collect();
        Vocab::build(tokenized.iter().map(|v| v.as_slice()), min_count)
    }

    /// Token id, or [`UNK_ID`] when unknown.
    pub fn id(&self, token: &str) -> usize {
        self.token_to_id.get(token).copied().unwrap_or(UNK_ID)
    }

    /// Token string for an id.
    ///
    /// # Panics
    /// Panics when `id` is out of range.
    pub fn token(&self, id: usize) -> &str {
        &self.id_to_token[id]
    }

    /// True when the token is in the vocabulary (not `<unk>`).
    pub fn contains(&self, token: &str) -> bool {
        self.token_to_id.contains_key(token)
    }

    /// Vocabulary size including the `<unk>` slot.
    pub fn len(&self) -> usize {
        self.id_to_token.len()
    }

    /// True when only `<unk>` is present.
    pub fn is_empty(&self) -> bool {
        self.id_to_token.len() <= 1
    }

    /// Encodes a raw string to ids (unknowns map to [`UNK_ID`]).
    pub fn encode(&self, text: &str) -> Vec<usize> {
        tokenize(text).iter().map(|t| self.id(t)).collect()
    }

    /// Decodes ids back to a space-joined string.
    pub fn decode(&self, ids: &[usize]) -> String {
        ids.iter().map(|&i| self.token(i)).collect::<Vec<_>>().join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_lowercases_and_splits() {
        assert_eq!(tokenize("How to change Password?!"), vec!["how", "to", "change", "password"]);
        assert_eq!(tokenize("  a--b  "), vec!["a", "b"]);
        assert!(tokenize("...").is_empty());
    }

    #[test]
    fn tokenize_keeps_digits() {
        assert_eq!(tokenize("pay v2 fee"), vec!["pay", "v2", "fee"]);
    }

    #[test]
    fn vocab_assigns_by_frequency() {
        let v = Vocab::from_texts(&["b b b a a c"], 1);
        assert_eq!(v.token(UNK_ID), UNK_TOKEN);
        assert_eq!(v.id("b"), 1);
        assert_eq!(v.id("a"), 2);
        assert_eq!(v.id("c"), 3);
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn vocab_min_count_filters() {
        let v = Vocab::from_texts(&["a a b"], 2);
        assert!(v.contains("a"));
        assert!(!v.contains("b"));
        assert_eq!(v.id("b"), UNK_ID);
    }

    #[test]
    fn encode_decode_roundtrip_known_tokens() {
        let v = Vocab::from_texts(&["open bluetooth now"], 1);
        let ids = v.encode("open bluetooth");
        assert_eq!(v.decode(&ids), "open bluetooth");
    }

    #[test]
    fn unknown_maps_to_unk() {
        let v = Vocab::from_texts(&["hello"], 1);
        assert_eq!(v.encode("goodbye"), vec![UNK_ID]);
    }
}
