//! SR-GNN (Wu et al., AAAI 2019): each session becomes a small directed
//! graph over its unique tags; a gated GNN propagates along click edges and
//! an attentive readout forms the session embedding, scored against tag
//! embeddings.

use intellitag_nn::{Embedding, Linear};
use intellitag_tensor::{Matrix, ParamSet, Tape, Tensor};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::recommender::{SequenceRecommender, TrainConfig};

/// A trained SR-GNN model.
pub struct SrGnn {
    emb: Embedding,
    w_in: Linear,
    w_out: Linear,
    gate_z: Linear,
    gate_r: Linear,
    gate_h: Linear,
    attn_q1: Linear,
    attn_q2: Linear,
    attn_v: Linear,
    fuse: Linear,
    num_tags: usize,
    dim: usize,
    /// Number of gated propagation steps.
    steps: usize,
}

impl SrGnn {
    /// Trains on click sessions with next-click prefix examples.
    pub fn train(sessions: &[Vec<usize>], num_tags: usize, dim: usize, cfg: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new(cfg.lr);
        let l = |n: &str, i: usize, o: usize, ps: &mut ParamSet, rng: &mut StdRng| {
            Linear::new(&format!("srgnn.{n}"), i, o, true, ps, rng)
        };
        let model = SrGnn {
            emb: Embedding::new("srgnn.emb", num_tags, dim, &mut params, &mut rng),
            w_in: l("w_in", dim, dim, &mut params, &mut rng),
            w_out: l("w_out", dim, dim, &mut params, &mut rng),
            gate_z: l("gate_z", 3 * dim, dim, &mut params, &mut rng),
            gate_r: l("gate_r", 3 * dim, dim, &mut params, &mut rng),
            gate_h: l("gate_h", 3 * dim, dim, &mut params, &mut rng),
            attn_q1: l("attn_q1", dim, dim, &mut params, &mut rng),
            attn_q2: l("attn_q2", dim, dim, &mut params, &mut rng),
            attn_v: l("attn_v", dim, 1, &mut params, &mut rng),
            fuse: l("fuse", 2 * dim, dim, &mut params, &mut rng),
            num_tags,
            dim,
            steps: 1,
        };

        let mut examples: Vec<(&[usize], usize)> = Vec::new();
        for s in sessions {
            for k in 1..s.len() {
                examples.push((&s[..k], s[k]));
            }
        }
        let steps = (examples.len() * cfg.epochs).div_ceil(cfg.batch_size.max(1));
        params.total_steps = Some(steps.max(1));

        let mut order: Vec<usize> = (0..examples.len()).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut in_batch = 0;
            for (i, &ex) in order.iter().enumerate() {
                let (ctx, target) = examples[ex];
                let tape = Tape::training(cfg.seed ^ (epoch as u64) << 32 ^ ex as u64);
                let logits = model.session_logits(&tape, ctx);
                let loss = logits.cross_entropy_logits(&[target]);
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == cfg.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            if cfg.verbose {
                println!(
                    "SR-GNN epoch {epoch}: loss {:.4}",
                    epoch_loss / examples.len().max(1) as f64
                );
            }
        }
        model
    }

    /// Builds the session graph, propagates, reads out and scores all tags.
    fn session_logits(&self, tape: &Tape, context: &[usize]) -> Tensor {
        // Unique nodes in order of first appearance.
        let mut nodes: Vec<usize> = Vec::new();
        let mut node_of = std::collections::HashMap::new();
        for &t in context {
            node_of.entry(t).or_insert_with(|| {
                nodes.push(t);
                nodes.len() - 1
            });
        }
        let n = nodes.len();
        // Row-normalized in/out adjacency from consecutive clicks.
        let mut a_in = Matrix::zeros(n, n);
        let mut a_out = Matrix::zeros(n, n);
        for w in context.windows(2) {
            let (u, v) = (node_of[&w[0]], node_of[&w[1]]);
            if u != v {
                a_out.set(u, v, a_out.get(u, v) + 1.0);
                a_in.set(v, u, a_in.get(v, u) + 1.0);
            }
        }
        for m in [&mut a_in, &mut a_out] {
            for r in 0..n {
                let s: f32 = m.row_slice(r).iter().sum();
                if s > 0.0 {
                    for v in m.row_slice_mut(r) {
                        *v /= s;
                    }
                }
            }
        }

        let mut h = self.emb.forward(tape, &nodes);
        let a_in = tape.constant(a_in);
        let a_out = tape.constant(a_out);
        for _ in 0..self.steps {
            let m_in = self.w_in.forward(tape, &a_in.matmul(&h));
            let m_out = self.w_out.forward(tape, &a_out.matmul(&h));
            let a = Tensor::concat_cols(&[m_in, m_out]); // n x 2d
            let ah = Tensor::concat_cols(&[a.clone(), h.clone()]); // n x 3d
            let z = self.gate_z.forward(tape, &ah).sigmoid();
            let r = self.gate_r.forward(tape, &ah).sigmoid();
            let arh = Tensor::concat_cols(&[a, r.mul(&h)]);
            let cand = self.gate_h.forward(tape, &arh).tanh();
            let keep = z.scale(-1.0).add_scalar(1.0);
            h = keep.mul(&cand).add(&z.mul(&h));
        }

        // Readout: local = last clicked node; global = attention over nodes.
        let last = h.row(node_of[context.last().expect("non-empty context")]);
        let q = self
            .attn_q1
            .forward(tape, &h)
            .add(&self.attn_q2.forward(tape, &last).repeat_rows(n))
            .sigmoid();
        let alpha = self.attn_v.forward(tape, &q); // n x 1
        let global = alpha.transpose().matmul(&h); // 1 x d
        let session = self.fuse.forward(tape, &Tensor::concat_cols(&[last, global])); // 1 x d
        debug_assert_eq!(session.shape(), (1, self.dim));
        // Score against tag embeddings (dot products).
        session.matmul(&tape.param(self.emb.param()).transpose())
    }
}

impl SequenceRecommender for SrGnn {
    fn name(&self) -> &str {
        "SR-GNN"
    }

    fn score_all(&self, context: &[usize]) -> Vec<f32> {
        if context.is_empty() {
            return vec![0.0; self.num_tags];
        }
        let tape = Tape::new();
        self.session_logits(&tape, context).value().into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_sessions(n: usize, count: usize) -> Vec<Vec<usize>> {
        (0..count)
            .map(|i| {
                let start = i % n;
                vec![start, (start + 1) % n, (start + 2) % n]
            })
            .collect()
    }

    #[test]
    fn learns_deterministic_transitions() {
        let n = 6;
        let sessions = cyclic_sessions(n, 60);
        let cfg = TrainConfig { epochs: 8, seed: 3, ..Default::default() };
        let m = SrGnn::train(&sessions, n, 16, &cfg);
        let mut correct = 0;
        for start in 0..n {
            let scores = m.score_all(&[start, (start + 1) % n]);
            let pred =
                scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            if pred == (start + 2) % n {
                correct += 1;
            }
        }
        assert!(correct >= n - 2, "learned {correct}/{n} transitions");
    }

    #[test]
    fn repeated_clicks_collapse_to_one_node() {
        let sessions = vec![vec![0, 1, 0, 1]];
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        let m = SrGnn::train(&sessions, 3, 8, &cfg);
        // Must not panic and must return full scores.
        assert_eq!(m.score_all(&[0, 1, 0]).len(), 3);
    }

    #[test]
    fn single_click_context_works() {
        let sessions = cyclic_sessions(4, 8);
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        let m = SrGnn::train(&sessions, 4, 8, &cfg);
        assert_eq!(m.score_all(&[2]).len(), 4);
        assert_eq!(m.score_all(&[]), vec![0.0; 4]);
    }
}
