//! A transparent observability wrapper around any [`SequenceRecommender`].
//!
//! The model-scoring stage is the latency-dominant part of the serving path
//! for the learned models (the paper's Table VI latency row is essentially
//! "how expensive is one forward pass"), so the scoring path gets its own
//! histogram and call counter, keyed by the wrapped model's name. Wrap the
//! model before handing it to the `ModelServer` and share the registry via
//! `with_metrics` to see model time and stage time side by side.

use std::sync::Arc;

use intellitag_obs::{Counter, Histogram, MetricsRegistry};

use crate::recommender::SequenceRecommender;

/// Wraps a recommender, timing every scoring call into
/// `model.{name}.score_us` and counting calls in `model.{name}.score_calls`.
pub struct Instrumented<M> {
    inner: M,
    score_latency: Arc<Histogram>,
    score_calls: Arc<Counter>,
    batch_rows: Arc<Histogram>,
}

impl<M: SequenceRecommender> Instrumented<M> {
    /// Wraps `inner`, registering its metrics in `registry`.
    pub fn new(inner: M, registry: &MetricsRegistry) -> Self {
        let name = inner.name();
        Instrumented {
            score_latency: registry.histogram(&format!("model.{name}.score_us")),
            score_calls: registry.counter(&format!("model.{name}.score_calls")),
            batch_rows: registry.histogram(&format!("model.{name}.batch_rows")),
            inner,
        }
    }

    /// The wrapped recommender.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Unwraps the recommender.
    pub fn into_inner(self) -> M {
        self.inner
    }
}

impl<M: SequenceRecommender> SequenceRecommender for Instrumented<M> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn score_all(&self, context: &[usize]) -> Vec<f32> {
        self.score_calls.inc();
        let span = self.score_latency.span();
        let out = self.inner.score_all(context);
        span.finish();
        out
    }

    fn score_candidates(&self, context: &[usize], candidates: &[usize]) -> Vec<f32> {
        self.score_calls.inc();
        let span = self.score_latency.span();
        let out = self.inner.score_candidates(context, candidates);
        span.finish();
        out
    }

    // Must forward explicitly: falling back to the trait default would route
    // through `self.score_candidates` per item, silently discarding the
    // wrapped model's batched forward and inflating `score_calls`.
    fn score_candidates_batch(&self, reqs: &[(&[usize], &[usize])]) -> Vec<Vec<f32>> {
        self.score_calls.inc();
        self.batch_rows.record(reqs.len() as u64);
        let span = self.score_latency.span();
        let out = self.inner.score_candidates_batch(reqs);
        span.finish();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recommender::Popularity;

    #[test]
    fn scores_pass_through_unchanged() {
        let registry = MetricsRegistry::new();
        let plain = Popularity::from_counts(&[1, 5, 3]);
        let wrapped = Instrumented::new(Popularity::from_counts(&[1, 5, 3]), &registry);
        assert_eq!(wrapped.name(), "Popularity");
        assert_eq!(wrapped.score_all(&[0]), plain.score_all(&[0]));
        assert_eq!(wrapped.score_candidates(&[0], &[2, 1]), plain.score_candidates(&[0], &[2, 1]));
        assert_eq!(wrapped.recommend(&[1], 2), plain.recommend(&[1], 2));
    }

    #[test]
    fn scoring_calls_are_counted_and_timed() {
        let registry = MetricsRegistry::new();
        let wrapped = Instrumented::new(Popularity::from_counts(&[1, 5, 3]), &registry);
        let _ = wrapped.score_all(&[0]);
        let _ = wrapped.score_candidates(&[0], &[1, 2]);
        // recommend() routes through score_all, adding a third call.
        let _ = wrapped.recommend(&[0], 2);
        assert_eq!(registry.counter("model.Popularity.score_calls").get(), 3);
        assert_eq!(registry.histogram("model.Popularity.score_us").count(), 3);
    }

    #[test]
    fn batch_forwards_as_one_call_and_matches_serial() {
        let registry = MetricsRegistry::new();
        let wrapped = Instrumented::new(Popularity::from_counts(&[1, 5, 3]), &registry);
        let ctx_a = [0usize];
        let ctx_b = [1usize, 2];
        let pool = [0usize, 1, 2];
        let reqs: Vec<(&[usize], &[usize])> = vec![(&ctx_a, &pool), (&ctx_b, &pool)];
        let batched = wrapped.score_candidates_batch(&reqs);
        assert_eq!(batched[0], wrapped.inner().score_candidates(&ctx_a, &pool));
        assert_eq!(batched[1], wrapped.inner().score_candidates(&ctx_b, &pool));
        // One batched call = one score_calls tick, not one per row.
        assert_eq!(registry.counter("model.Popularity.score_calls").get(), 1);
        assert_eq!(registry.histogram("model.Popularity.batch_rows").count(), 1);
    }
}
