//! The common interface every TagRec-task model implements, plus shared
//! training configuration.

/// A next-tag recommender: given the tags a user clicked so far, score every
/// candidate tag for the next click.
pub trait SequenceRecommender {
    /// Model name as printed in the paper's tables.
    fn name(&self) -> &str;

    /// Scores every tag (`len == num_tags`); higher means more likely next.
    ///
    /// `context` lists the clicked tags oldest-first and must be non-empty
    /// unless the model supports cold start.
    fn score_all(&self, context: &[usize]) -> Vec<f32>;

    /// Scores a candidate subset. The default indexes into
    /// [`SequenceRecommender::score_all`]; models with cheap pairwise scores
    /// (metapath2vec) override this to skip the full pass.
    fn score_candidates(&self, context: &[usize], candidates: &[usize]) -> Vec<f32> {
        let all = self.score_all(context);
        candidates.iter().map(|&c| all[c]).collect()
    }

    /// Scores a batch of `(context, candidates)` requests at once. The
    /// default falls back to one [`SequenceRecommender::score_candidates`]
    /// call per request; models whose forward pass can stack contexts into a
    /// single matrix (TagRec's contextual attention) override this so a
    /// micro-batch drain costs one forward instead of `reqs.len()`.
    ///
    /// Overrides must stay bit-exact with the per-item path: callers (the
    /// sharded serving front) treat batched and serial scoring as
    /// interchangeable.
    fn score_candidates_batch(&self, reqs: &[(&[usize], &[usize])]) -> Vec<Vec<f32>> {
        reqs.iter()
            .map(|&(context, candidates)| self.score_candidates(context, candidates))
            .collect()
    }

    /// Top-`k` recommendations, excluding tags already in `context`.
    fn recommend(&self, context: &[usize], k: usize) -> Vec<usize> {
        let scores = self.score_all(context);
        let mut idx: Vec<usize> = (0..scores.len()).filter(|t| !context.contains(t)).collect();
        idx.sort_by(|&a, &b| {
            scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        idx.truncate(k);
        idx
    }
}

/// Shared training hyperparameters (paper §VI-A4: Adam, lr 1e-3, weight
/// decay 0.01, linear decay, batch 128, mask proportion 0.2).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Passes over the training sessions.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-accumulation batch size.
    pub batch_size: usize,
    /// RNG seed (initialization, masking, shuffling).
    pub seed: u64,
    /// Mask proportion for masked-sequence models.
    pub mask_prob: f64,
    /// Print a progress line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { epochs: 3, lr: 1e-3, batch_size: 32, seed: 0, mask_prob: 0.2, verbose: false }
    }
}

/// Frequency-ranked popularity recommender — the cold-start fallback the
/// deployed system uses before any click happens (§V-B), and a sanity floor
/// for the learned models. `Clone` lets every shard of the serving front
/// carry its own replica.
#[derive(Debug, Clone)]
pub struct Popularity {
    scores: Vec<f32>,
}

impl Popularity {
    /// Builds from per-tag click counts.
    pub fn from_counts(counts: &[usize]) -> Self {
        Popularity { scores: counts.iter().map(|&c| c as f32).collect() }
    }

    /// Builds by counting clicks in training sessions.
    pub fn from_sessions(sessions: &[Vec<usize>], num_tags: usize) -> Self {
        let mut counts = vec![0usize; num_tags];
        for s in sessions {
            for &c in s {
                counts[c] += 1;
            }
        }
        Popularity::from_counts(&counts)
    }
}

impl SequenceRecommender for Popularity {
    fn name(&self) -> &str {
        "Popularity"
    }

    fn score_all(&self, _context: &[usize]) -> Vec<f32> {
        self.scores.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_ranks_by_count() {
        let p = Popularity::from_counts(&[1, 5, 3]);
        assert_eq!(p.recommend(&[], 3), vec![1, 2, 0]);
    }

    #[test]
    fn recommend_excludes_context() {
        let p = Popularity::from_counts(&[1, 5, 3]);
        assert_eq!(p.recommend(&[1], 2), vec![2, 0]);
    }

    #[test]
    fn score_candidates_defaults_to_score_all_subset() {
        let p = Popularity::from_counts(&[1, 5, 3]);
        assert_eq!(p.score_candidates(&[], &[2, 0]), vec![3.0, 1.0]);
    }

    #[test]
    fn from_sessions_counts_clicks() {
        let sessions = vec![vec![0, 1], vec![1, 2, 1]];
        let p = Popularity::from_sessions(&sessions, 3);
        assert_eq!(p.score_all(&[]), vec![1.0, 3.0, 1.0]);
    }

    #[test]
    fn deterministic_tie_break() {
        let p = Popularity::from_counts(&[2, 2, 2]);
        assert_eq!(p.recommend(&[], 3), vec![0, 1, 2]);
    }
}
