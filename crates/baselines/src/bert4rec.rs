//! BERT4Rec (Sun et al., CIKM 2019): a bidirectional Transformer over the
//! click sequence, trained with the cloze (masked-item) objective and
//! evaluated by appending a mask token after the context.

use intellitag_nn::{Embedding, Linear, PositionEmbedding, TransformerEncoder};
use intellitag_tensor::{ParamSet, Tape, Tensor};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::recommender::{SequenceRecommender, TrainConfig};

/// Maximum supported sequence length (sessions cap at 12 clicks + 1 mask).
const MAX_LEN: usize = 16;

/// A trained BERT4Rec model.
pub struct Bert4Rec {
    emb: Embedding,
    pos: PositionEmbedding,
    encoder: TransformerEncoder,
    out: Linear,
    num_tags: usize,
    mask_id: usize,
}

impl Bert4Rec {
    /// Trains with the cloze objective: each session position is replaced by
    /// the mask token with probability `cfg.mask_prob` (at least one per
    /// session), and the model predicts the original tags at masked slots.
    pub fn train(
        sessions: &[Vec<usize>],
        num_tags: usize,
        dim: usize,
        layers: usize,
        heads: usize,
        cfg: &TrainConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new(cfg.lr);
        // Tag vocabulary + one mask token.
        let emb = Embedding::new("bert4rec.emb", num_tags + 1, dim, &mut params, &mut rng);
        let pos = PositionEmbedding::new("bert4rec.pos", MAX_LEN, dim, &mut params, &mut rng);
        let encoder =
            TransformerEncoder::new("bert4rec.enc", layers, dim, heads, &mut params, &mut rng);
        let out = Linear::new("bert4rec.out", dim, num_tags, true, &mut params, &mut rng);
        let model = Bert4Rec { emb, pos, encoder, out, num_tags, mask_id: num_tags };

        let usable: Vec<&Vec<usize>> = sessions.iter().filter(|s| s.len() >= 2).collect();
        // Two masked instances per session per epoch, as in the original
        // BERT4Rec's duplicated training sequences; this also matches the
        // ~1.7 prefix examples per session the next-click baselines see.
        let instances = 2;
        let steps = (usable.len() * instances * cfg.epochs).div_ceil(cfg.batch_size.max(1));
        params.total_steps = Some(steps.max(1));

        let mut order: Vec<usize> =
            (0..usable.len()).flat_map(|i| std::iter::repeat_n(i, instances)).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut in_batch = 0;
            for (i, &si) in order.iter().enumerate() {
                let session = usable[si];
                let len = session.len().min(MAX_LEN);
                let clip = &session[session.len() - len..];
                // Cloze masking.
                let mut input = clip.to_vec();
                let mut targets: Vec<(usize, usize)> = Vec::new(); // (pos, gold)
                for (p, &tag) in clip.iter().enumerate() {
                    if rng.gen_bool(cfg.mask_prob) {
                        input[p] = model.mask_id;
                        targets.push((p, tag));
                    }
                }
                if targets.is_empty() {
                    let p = rng.gen_range(0..len);
                    input[p] = model.mask_id;
                    targets.push((p, clip[p]));
                }

                let tape = Tape::training(cfg.seed ^ (epoch as u64) << 32 ^ si as u64);
                let hidden = model.encode(&tape, &input);
                // Gather masked positions and predict their original tags.
                let rows: Vec<Tensor> = targets.iter().map(|&(p, _)| hidden.row(p)).collect();
                let stacked = Tensor::concat_rows(&rows);
                let logits = model.out.forward(&tape, &stacked);
                let gold: Vec<usize> = targets.iter().map(|&(_, g)| g).collect();
                let loss = logits.cross_entropy_logits(&gold);
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == cfg.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            if cfg.verbose {
                println!(
                    "BERT4Rec epoch {epoch}: loss {:.4}",
                    epoch_loss / usable.len().max(1) as f64
                );
            }
        }
        model
    }

    fn encode(&self, tape: &Tape, input: &[usize]) -> Tensor {
        let x = self.emb.forward(tape, input);
        let p = self.pos.forward(tape, input.len());
        self.encoder.forward(tape, &x.add(&p))
    }
}

impl SequenceRecommender for Bert4Rec {
    fn name(&self) -> &str {
        "BERT4Rec"
    }

    fn score_all(&self, context: &[usize]) -> Vec<f32> {
        if context.is_empty() {
            return vec![0.0; self.num_tags];
        }
        // Keep the most recent clicks and append the mask token (Eq. 8's
        // z_mask at position N+1).
        let len = context.len().min(MAX_LEN - 1);
        let mut input = context[context.len() - len..].to_vec();
        input.push(self.mask_id);
        let tape = Tape::new();
        let hidden = self.encode(&tape, &input);
        let last = hidden.row(input.len() - 1);
        self.out.forward(&tape, &last).value().into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cyclic_sessions(n: usize, count: usize) -> Vec<Vec<usize>> {
        (0..count)
            .map(|i| {
                let start = i % n;
                vec![start, (start + 1) % n, (start + 2) % n, (start + 3) % n]
            })
            .collect()
    }

    #[test]
    fn learns_cyclic_structure() {
        let n = 6;
        let sessions = cyclic_sessions(n, 90);
        let cfg =
            TrainConfig { epochs: 30, lr: 0.01, batch_size: 16, seed: 2, ..Default::default() };
        let m = Bert4Rec::train(&sessions, n, 16, 1, 2, &cfg);
        let mut correct = 0;
        for start in 0..n {
            let ctx = vec![start, (start + 1) % n];
            let scores = m.score_all(&ctx);
            let pred =
                scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            if pred == (start + 2) % n {
                correct += 1;
            }
        }
        assert!(correct >= n - 2, "learned {correct}/{n} bigram continuations");
    }

    #[test]
    fn long_contexts_are_clipped() {
        let sessions = cyclic_sessions(4, 8);
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        let m = Bert4Rec::train(&sessions, 4, 8, 1, 2, &cfg);
        let long_ctx: Vec<usize> = (0..40).map(|i| i % 4).collect();
        assert_eq!(m.score_all(&long_ctx).len(), 4);
    }

    #[test]
    fn empty_context_is_safe() {
        let sessions = cyclic_sessions(4, 8);
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        let m = Bert4Rec::train(&sessions, 4, 8, 1, 2, &cfg);
        assert_eq!(m.score_all(&[]), vec![0.0; 4]);
    }
}
