//! GRU4Rec (Hidasi et al. / Jannach & Ludewig 2017): a GRU over the clicked
//! sequence, final hidden state projected to tag logits.

use intellitag_nn::{Embedding, Gru, Linear};
use intellitag_tensor::{ParamSet, Tape};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::recommender::{SequenceRecommender, TrainConfig};

/// A trained GRU4Rec model.
pub struct Gru4Rec {
    emb: Embedding,
    gru: Gru,
    out: Linear,
    num_tags: usize,
}

impl Gru4Rec {
    /// Trains on click sessions (`sessions[i]` is a session's ordered tag
    /// clicks). Every prefix of length >= 1 predicts the following click.
    pub fn train(sessions: &[Vec<usize>], num_tags: usize, dim: usize, cfg: &TrainConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut params = ParamSet::new(cfg.lr);
        let emb = Embedding::new("gru4rec.emb", num_tags, dim, &mut params, &mut rng);
        let gru = Gru::new("gru4rec.gru", dim, dim, &mut params, &mut rng);
        let out = Linear::new("gru4rec.out", dim, num_tags, true, &mut params, &mut rng);

        let mut examples: Vec<(&[usize], usize)> = Vec::new();
        for s in sessions {
            for k in 1..s.len() {
                examples.push((&s[..k], s[k]));
            }
        }
        let steps = (examples.len() * cfg.epochs).div_ceil(cfg.batch_size.max(1));
        params.total_steps = Some(steps.max(1));

        let model = Gru4Rec { emb, gru, out, num_tags };
        let mut order: Vec<usize> = (0..examples.len()).collect();
        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut in_batch = 0;
            for (i, &ex) in order.iter().enumerate() {
                let (ctx, target) = examples[ex];
                let tape = Tape::training(cfg.seed ^ (epoch as u64) << 32 ^ ex as u64);
                let x = model.emb.forward(&tape, ctx);
                let h = model.gru.forward_last(&tape, &x);
                let logits = model.out.forward(&tape, &h);
                let loss = logits.cross_entropy_logits(&[target]);
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == cfg.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            if cfg.verbose {
                println!(
                    "GRU4Rec epoch {epoch}: loss {:.4}",
                    epoch_loss / examples.len().max(1) as f64
                );
            }
        }
        model
    }
}

impl SequenceRecommender for Gru4Rec {
    fn name(&self) -> &str {
        "GRU4Rec"
    }

    fn score_all(&self, context: &[usize]) -> Vec<f32> {
        if context.is_empty() {
            return vec![0.0; self.num_tags];
        }
        let tape = Tape::new();
        let x = self.emb.forward(&tape, context);
        let h = self.gru.forward_last(&tape, &x);
        self.out.forward(&tape, &h).value().into_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic world: tag t is always followed by tag (t+1) % n.
    fn cyclic_sessions(n: usize, count: usize) -> Vec<Vec<usize>> {
        (0..count)
            .map(|i| {
                let start = i % n;
                vec![start, (start + 1) % n, (start + 2) % n]
            })
            .collect()
    }

    #[test]
    fn learns_deterministic_transitions() {
        let n = 6;
        let sessions = cyclic_sessions(n, 60);
        let cfg =
            TrainConfig { epochs: 30, lr: 0.01, batch_size: 16, seed: 1, ..Default::default() };
        let m = Gru4Rec::train(&sessions, n, 16, &cfg);
        let mut correct = 0;
        for start in 0..n {
            let scores = m.score_all(&[start]);
            let pred =
                scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            if pred == (start + 1) % n {
                correct += 1;
            }
        }
        assert!(correct >= n - 1, "learned {correct}/{n} transitions");
    }

    #[test]
    fn empty_context_is_safe() {
        let sessions = vec![vec![0, 1]];
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        let m = Gru4Rec::train(&sessions, 3, 8, &cfg);
        assert_eq!(m.score_all(&[]), vec![0.0; 3]);
    }

    #[test]
    fn scores_cover_all_tags() {
        let sessions = cyclic_sessions(4, 8);
        let cfg = TrainConfig { epochs: 1, ..Default::default() };
        let m = Gru4Rec::train(&sessions, 4, 8, &cfg);
        assert_eq!(m.score_all(&[0]).len(), 4);
        assert_eq!(m.name(), "GRU4Rec");
    }
}
