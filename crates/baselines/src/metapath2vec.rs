//! metapath2vec (Dong et al., KDD 2017): unsupervised tag embeddings from
//! metapath-guided random walks with skip-gram + negative sampling.
//!
//! As deployed in the paper's online comparison, recommendation only depends
//! on the *last* clicked tag: nearest neighbors in the embedding space are
//! precomputed offline, making online service a table lookup (Table VI shows
//! its much lower latency for exactly this reason).

use intellitag_graph::{metapath_walk, HetGraph, Metapath};
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::recommender::SequenceRecommender;

/// Training hyperparameters for metapath2vec.
#[derive(Debug, Clone, Copy)]
pub struct M2vConfig {
    /// Embedding width.
    pub dim: usize,
    /// Walks started per tag.
    pub walks_per_tag: usize,
    /// Walk length in tags.
    pub walk_len: usize,
    /// Skip-gram window.
    pub window: usize,
    /// Negative samples per positive pair.
    pub negatives: usize,
    /// SGD learning rate.
    pub lr: f32,
    /// Training epochs over the walk corpus.
    pub epochs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for M2vConfig {
    fn default() -> Self {
        M2vConfig {
            dim: 64,
            walks_per_tag: 20,
            walk_len: 12,
            window: 3,
            negatives: 6,
            lr: 0.025,
            epochs: 6,
            seed: 0,
        }
    }
}

/// A trained metapath2vec model.
pub struct Metapath2Vec {
    /// Center embeddings (the representation used downstream).
    emb: Vec<Vec<f32>>,
    num_tags: usize,
}

impl Metapath2Vec {
    /// Generates metapath-guided walks over the heterogeneous graph and
    /// trains skip-gram with negative sampling (manual SGD — the classic
    /// word2vec update, no autograd needed).
    pub fn train(graph: &HetGraph, cfg: &M2vConfig) -> Self {
        let num_tags = graph.num_tags();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // The walk scheme cycles through all four paper metapaths so every
        // relation contributes context pairs.
        let scheme = [Metapath::TT, Metapath::TQT, Metapath::TQQT, Metapath::TQEQT];

        let mut walks: Vec<Vec<usize>> = Vec::with_capacity(num_tags * cfg.walks_per_tag);
        for t in 0..num_tags {
            for _ in 0..cfg.walks_per_tag {
                let w = metapath_walk(graph, t, &scheme, cfg.walk_len, &mut rng);
                if w.len() >= 2 {
                    walks.push(w);
                }
            }
        }

        let limit = (1.0 / cfg.dim as f32).sqrt();
        let mut emb: Vec<Vec<f32>> = (0..num_tags)
            .map(|_| (0..cfg.dim).map(|_| rng.gen_range(-limit..=limit)).collect())
            .collect();
        let mut ctx: Vec<Vec<f32>> = vec![vec![0.0; cfg.dim]; num_tags];

        for _ in 0..cfg.epochs {
            walks.shuffle(&mut rng);
            for walk in &walks {
                for (i, &center) in walk.iter().enumerate() {
                    let lo = i.saturating_sub(cfg.window);
                    let hi = (i + cfg.window + 1).min(walk.len());
                    for (j, &pos) in walk.iter().enumerate().take(hi).skip(lo) {
                        if j == i {
                            continue;
                        }
                        sgd_pair(&mut emb, &mut ctx, center, pos, 1.0, cfg.lr);
                        for _ in 0..cfg.negatives {
                            let neg = rng.gen_range(0..num_tags);
                            if neg != pos {
                                sgd_pair(&mut emb, &mut ctx, center, neg, 0.0, cfg.lr);
                            }
                        }
                    }
                }
            }
        }

        Metapath2Vec { emb, num_tags }
    }

    /// The embedding of one tag.
    pub fn embedding(&self, tag: usize) -> &[f32] {
        &self.emb[tag]
    }

    /// Cosine similarity between two tags' embeddings.
    pub fn similarity(&self, a: usize, b: usize) -> f32 {
        intellitag_text::cosine(&self.emb[a], &self.emb[b])
    }
}

/// One skip-gram SGD update on the pair `(center, context)` toward `label`.
fn sgd_pair(
    emb: &mut [Vec<f32>],
    ctx: &mut [Vec<f32>],
    center: usize,
    context: usize,
    label: f32,
    lr: f32,
) {
    let dot: f32 = emb[center].iter().zip(&ctx[context]).map(|(a, b)| a * b).sum();
    let pred = 1.0 / (1.0 + (-dot).exp());
    let g = (pred - label) * lr;
    for k in 0..emb[center].len() {
        let e = emb[center][k];
        let c = ctx[context][k];
        emb[center][k] -= g * c;
        ctx[context][k] -= g * e;
    }
}

impl SequenceRecommender for Metapath2Vec {
    fn name(&self) -> &str {
        "metapath2vec"
    }

    /// Scores by cosine similarity with the **last** clicked tag only — the
    /// model has no sequential component (paper §VI-F).
    fn score_all(&self, context: &[usize]) -> Vec<f32> {
        let Some(&last) = context.last() else {
            return vec![0.0; self.num_tags];
        };
        (0..self.num_tags).map(|t| self.similarity(last, t)).collect()
    }

    fn score_candidates(&self, context: &[usize], candidates: &[usize]) -> Vec<f32> {
        let Some(&last) = context.last() else {
            return vec![0.0; candidates.len()];
        };
        candidates.iter().map(|&c| self.similarity(last, c)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_graph::HetGraphBuilder;

    /// Two cliques of tags bridged by nothing: embeddings must separate them.
    fn two_community_graph() -> HetGraph {
        let mut b = HetGraphBuilder::new(8, 8, 2);
        // Community A: tags 0-3 on rqs 0-3, tenant 0, dense co-clicks.
        for t in 0..4usize {
            b.add_asc(t, t);
            b.set_tenant(t, 0);
        }
        for i in 0..4usize {
            for j in i + 1..4 {
                b.add_clk(i, j);
            }
        }
        b.add_cst(0, 1).add_cst(2, 3);
        // Community B: tags 4-7 on rqs 4-7, tenant 1.
        for t in 4..8usize {
            b.add_asc(t, t);
            b.set_tenant(t, 1);
        }
        for i in 4..8usize {
            for j in i + 1..8 {
                b.add_clk(i, j);
            }
        }
        b.add_cst(4, 5).add_cst(6, 7);
        b.build()
    }

    #[test]
    fn communities_separate_in_embedding_space() {
        let g = two_community_graph();
        let cfg = M2vConfig { epochs: 6, seed: 1, dim: 16, ..Default::default() };
        let m = Metapath2Vec::train(&g, &cfg);
        // Average within-community similarity must beat across-community.
        let mut within = 0.0;
        let mut across = 0.0;
        let mut nw = 0;
        let mut na = 0;
        for a in 0..8 {
            for b in 0..8 {
                if a == b {
                    continue;
                }
                let s = m.similarity(a, b);
                if (a < 4) == (b < 4) {
                    within += s;
                    nw += 1;
                } else {
                    across += s;
                    na += 1;
                }
            }
        }
        let within = within / nw as f32;
        let across = across / na as f32;
        assert!(within > across + 0.1, "within {within} should exceed across {across}");
    }

    #[test]
    fn scoring_uses_last_click_only() {
        let g = two_community_graph();
        let m = Metapath2Vec::train(&g, &M2vConfig { epochs: 2, ..Default::default() });
        let a = m.score_all(&[7, 0]);
        let b = m.score_all(&[0]);
        assert_eq!(a, b, "only the last click matters");
        assert_eq!(m.score_all(&[]), vec![0.0; 8]);
    }

    #[test]
    fn score_candidates_matches_score_all() {
        let g = two_community_graph();
        let m = Metapath2Vec::train(&g, &M2vConfig { epochs: 1, ..Default::default() });
        let all = m.score_all(&[3]);
        let sub = m.score_candidates(&[3], &[5, 1]);
        assert_eq!(sub, vec![all[5], all[1]]);
    }
}
