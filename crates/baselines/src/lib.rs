//! # intellitag-baselines
//!
//! The four baseline recommenders the paper compares against (§VI-A4), all
//! implemented from scratch on the project's autograd engine:
//!
//! * [`Gru4Rec`] — GRU sequence model (Jannach & Ludewig, 2017).
//! * [`SrGnn`] — session-graph gated GNN (Wu et al., 2019).
//! * [`Metapath2Vec`] — unsupervised heterogeneous-graph embeddings
//!   (Dong et al., 2017); scores by last-click similarity only.
//! * [`Bert4Rec`] — bidirectional Transformer with cloze training
//!   (Sun et al., 2019).
//!
//! Everything implements [`SequenceRecommender`], the interface the offline
//! evaluation (Table IV), the ablations (Table V) and the online simulator
//! (Fig. 7 / Table VI) consume. [`Popularity`] is the deployed cold-start
//! fallback, and [`Instrumented`] wraps any recommender with scoring-path
//! latency/call metrics for the `intellitag-obs` registry.

#![warn(missing_docs)]

mod bert4rec;
mod gru4rec;
mod instrumented;
mod metapath2vec;
mod recommender;
mod srgnn;

pub use bert4rec::Bert4Rec;
pub use gru4rec::Gru4Rec;
pub use instrumented::Instrumented;
pub use metapath2vec::{M2vConfig, Metapath2Vec};
pub use recommender::{Popularity, SequenceRecommender, TrainConfig};
pub use srgnn::SrGnn;
