//! The sharded, batched serving front: N worker threads, each owning a full
//! [`ModelServer`] replica, multiplexing tenant traffic over bounded
//! `std::sync::mpsc` request queues.
//!
//! This is the ROADMAP's "next scaling step" for the paper's online system
//! (§V): the deployed stack serves heavy tenant traffic with strict latency
//! SLOs (Table VI), which a single synchronous server cannot absorb. The
//! front routes requests per the configured [`RoutingPolicy`] — static
//! `tenant % shards` partitioning (the default, keeping a tenant's cache
//! and counters shard-local) or load-aware power-of-two-choices over live
//! per-shard queue depths — micro-batches queue drains (up to
//! `batch_max` requests per wakeup, amortizing scheduler round trips), and
//! degrades gracefully under overload: queues are bounded, the `try_`
//! variants shed with a counter instead of blocking, and shutdown drains
//! every in-flight request before the workers exit.
//!
//! The headline guarantee — enforced by `tests/sharded_parity.rs` — is that
//! for any request stream the front returns responses identical to a
//! single-process [`ModelServer`] built from the same data: shard count and
//! batch size are pure performance knobs. This holds because every model in
//! the workspace is deterministic and each shard owns a complete replica,
//! so no request's answer depends on scheduling.
//!
//! Every shard publishes labeled series into the shared
//! [`MetricsRegistry`]: `sharded.request_us{shard="i"}` (client-observed
//! queue + processing latency), `sharded.batch{shard="i"}` (drain sizes),
//! `sharded.queue_depth{shard="i"}` gauges, and `sharded.processed` /
//! `sharded.shed` counters, while the inner servers' `serving.*` metrics
//! aggregate across shards in the same registry.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use intellitag_baselines::SequenceRecommender;
use intellitag_obs::{
    tenant_tier, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, SpanTimer,
    TraceHandle, SLO_SHED_METRIC, SLO_TIER_LABEL,
};

use crate::serving::{
    ModelServer, PendingReply, QuestionResponse, Submission, TagClickResponse, TagService,
};

/// How the front picks a shard for each request. Every shard owns a full
/// deterministic replica, so the policy changes latency and load balance,
/// never answers — the parity tests hold under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Static partitioning: `tenant % shards`. A tenant's cache and
    /// counters stay shard-local; one hot tenant can hotspot one shard.
    #[default]
    TenantHash,
    /// Power-of-two-choices: sample two distinct candidate shards per
    /// request (deterministically, from a per-front sequence) and route to
    /// the one with the smaller queue depth. Spreads multi-replica tenants
    /// across the fleet; the classic result is exponential improvement in
    /// max load over one random choice.
    PowerOfTwoChoices,
}

/// Tuning knobs of the sharded front. Parity with the single-process server
/// holds for every setting; these trade latency against throughput only.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Worker threads, each owning one `ModelServer` replica. Tenants are
    /// partitioned as `tenant % shards`.
    pub shards: usize,
    /// Maximum requests drained per worker wakeup (micro-batch size). `1`
    /// disables batching.
    pub batch_max: usize,
    /// Bounded per-shard queue capacity. Blocking calls apply backpressure
    /// when the queue is full; `try_` calls shed instead.
    pub queue_capacity: usize,
    /// Shard selection policy (default: static `tenant % shards`).
    pub routing: RoutingPolicy,
    /// Tensor compute-pool threads *per process* (`0` = leave the global
    /// setting alone — env override or `available_parallelism`). The pool is
    /// process-global, so all shards share it: a front running S shards with
    /// a P-thread pool can have up to `S × P` runnable threads. There is no
    /// manual sizing rule to follow — the runtime governor
    /// (`crate::governor`) watches live queue depths and resizes the pool
    /// for the current regime; this field only picks the starting point.
    /// Pool size never changes answers (kernels are bit-identical across
    /// pool sizes), so this is a pure latency/throughput knob.
    pub pool_threads: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            batch_max: 8,
            queue_capacity: 256,
            routing: RoutingPolicy::TenantHash,
            pool_threads: 0,
        }
    }
}

/// The front's *runtime-adjustable* throughput knobs, shared between the
/// client side (`try_send` admission), every shard worker (per-drain
/// `batch_max` load), and the governor that steps them. Construction-time
/// [`ShardConfig`] values seed these; everything after that is atomic, so
/// the governor can retune a live front without pausing a single drain.
///
/// Both knobs are pure performance knobs: every drain still serves its
/// whole batch with one model version and the batched path is bit-exact
/// versus serial, so stepping them never changes answers — only how work
/// is grouped and when overload sheds begin.
#[derive(Debug)]
pub struct RuntimeKnobs {
    /// Live micro-batch ceiling; workers load this at each drain top.
    batch_max: AtomicUsize,
    /// Soft admission limit: `try_`/`submit_` calls shed once a shard's
    /// live depth exceeds this, *before* the physical queue is full.
    shed_depth: AtomicUsize,
    /// Physical per-shard queue capacity — the immutable upper bound for
    /// both knobs (mpsc queues cannot be regrown in place).
    queue_capacity: usize,
}

impl RuntimeKnobs {
    /// Seeds the knobs from construction-time values. `shed_depth` starts
    /// at `queue_capacity` (no soft shedding until the governor says so).
    pub fn new(batch_max: usize, queue_capacity: usize) -> Self {
        assert!(batch_max >= 1, "batch_max must be at least 1");
        assert!(queue_capacity >= 1, "queue_capacity must be at least 1");
        RuntimeKnobs {
            batch_max: AtomicUsize::new(batch_max.min(queue_capacity)),
            shed_depth: AtomicUsize::new(queue_capacity),
            queue_capacity,
        }
    }

    /// Current micro-batch ceiling.
    pub fn batch_max(&self) -> usize {
        self.batch_max.load(Ordering::Relaxed)
    }

    /// Sets the micro-batch ceiling, clamped to `[1, queue_capacity]`.
    /// Takes effect at each worker's next drain.
    pub fn set_batch_max(&self, n: usize) {
        self.batch_max.store(n.clamp(1, self.queue_capacity), Ordering::Relaxed);
    }

    /// Current soft admission limit for the shedding request paths.
    pub fn shed_depth(&self) -> usize {
        self.shed_depth.load(Ordering::Relaxed)
    }

    /// Sets the soft admission limit, clamped to `[1, queue_capacity]`.
    pub fn set_shed_depth(&self, n: usize) {
        self.shed_depth.store(n.clamp(1, self.queue_capacity), Ordering::Relaxed);
    }

    /// The immutable physical queue capacity both knobs are bounded by.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

/// A published model snapshot in transit to the shard workers: a monotonic
/// version id plus the serialized artifact bytes (for the learned models,
/// the `IntelliTag::save` format; the front treats them as opaque). The
/// bytes ride an `Arc` so S shards share one buffer instead of S copies.
#[derive(Debug, Clone)]
pub struct SwapPayload {
    /// Monotonic snapshot version (the trainer/registry's published id).
    pub version: u64,
    /// Serialized model artifact the per-shard loader rebuilds from.
    pub bytes: Arc<Vec<u8>>,
}

/// The hot-swap mailbox between a trainer and a [`ShardedServer`]'s
/// workers. A publisher (the online trainer, a deploy script, a test)
/// [`publish`](ModelSwap::publish)es versioned payloads; every worker polls
/// the mailbox at its drain boundaries and rebuilds its replica from the
/// newest payload it has not applied yet. Intermediate versions may be
/// skipped — workers always jump to the latest — but versions never
/// regress, and because the poll sits *between* drains, no drain is ever
/// served by two model versions (the epoch fence
/// `tests/hot_swap_parity.rs` pins).
///
/// Clone freely: clones share the mailbox.
#[derive(Clone, Default)]
pub struct ModelSwap {
    inner: Arc<SwapInner>,
}

#[derive(Default)]
struct SwapInner {
    /// Version of the payload in `slot` (0 = nothing published). Read
    /// lock-free on the per-drain fast path; written under the slot lock.
    version: AtomicU64,
    slot: Mutex<Option<SwapPayload>>,
}

impl ModelSwap {
    /// An empty mailbox (version 0, nothing to apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a snapshot for the workers to pick up. Returns `false`
    /// (dropping the payload) unless `payload.version` is strictly newer
    /// than the currently published one — versions are monotonic, so a
    /// late or duplicate publish can never roll a replica back.
    pub fn publish(&self, payload: SwapPayload) -> bool {
        let mut slot = self.inner.slot.lock().expect("swap slot poisoned");
        if payload.version <= self.inner.version.load(Ordering::Acquire) {
            return false;
        }
        self.inner.version.store(payload.version, Ordering::Release);
        *slot = Some(payload);
        true
    }

    /// The most recently published version (0 before the first publish).
    pub fn latest_version(&self) -> u64 {
        self.inner.version.load(Ordering::Acquire)
    }

    /// The published payload if it is newer than `seen` — the workers'
    /// per-drain poll. Lock-free when nothing new is pending (the steady
    /// state), so idle polling costs one atomic load per drain.
    fn newer_than(&self, seen: u64) -> Option<SwapPayload> {
        if self.inner.version.load(Ordering::Acquire) <= seen {
            return None;
        }
        self.inner.slot.lock().expect("swap slot poisoned").clone()
    }
}

/// The shard-side loader: rebuilds a (non-`Send`) model from snapshot
/// payload bytes *inside* the worker thread that will serve it.
type ModelLoader<M> = Arc<dyn Fn(usize, &SwapPayload) -> M + Send + Sync>;

/// Per-worker swap state: the shared mailbox, the loader that rebuilds a
/// (non-`Send`) model from payload bytes *inside* the worker thread, and
/// this worker's high-water mark of applied versions.
struct WorkerSwap<M> {
    swap: ModelSwap,
    loader: ModelLoader<M>,
    /// Front-wide maximum applied version (what `/healthz` reports).
    applied: Arc<AtomicU64>,
    shard: usize,
    /// Last version this worker applied (or started from).
    seen: u64,
}

impl<M: SequenceRecommender> WorkerSwap<M> {
    /// The epoch fence. Called between drains — after a batch is collected
    /// but before any of it is served — so every request in a drain is
    /// answered by exactly one model version. [`ModelServer::install_model`]
    /// also drops the response cache and score-row LRU, so no post-swap
    /// request can observe a score computed by the previous version.
    fn apply_pending(&mut self, server: &mut ModelServer<M>) {
        let Some(payload) = self.swap.newer_than(self.seen) else { return };
        let model = (self.loader)(self.shard, &payload);
        server.install_model(model, payload.version);
        self.seen = payload.version;
        self.applied.fetch_max(payload.version, Ordering::AcqRel);
    }
}

/// The mix stage of splitmix64 — cheap, stateless, and deterministic, which
/// keeps power-of-two-choices candidate sampling reproducible run to run.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a `try_` request was rejected without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The shard's bounded queue was full (overload shedding; counted in
    /// `sharded.shed`).
    Overloaded,
    /// The shard's worker has exited (the front is shutting down).
    ShuttingDown,
}

/// A request's trace riding the queue: the shared handle plus the trace-
/// relative enqueue stamp, so the worker can close the `shard.queue` span.
type JobTrace = Option<(TraceHandle, u64)>;

/// One request in flight to a shard worker.
enum Job {
    Question {
        tenant: usize,
        text: String,
        reply: mpsc::Sender<QuestionResponse>,
        trace: JobTrace,
    },
    TagClick {
        tenant: usize,
        clicks: Vec<usize>,
        reply: mpsc::Sender<TagClickResponse>,
        trace: JobTrace,
    },
    ColdStart {
        tenant: usize,
        reply: mpsc::Sender<Vec<usize>>,
    },
}

/// Stamps a job trace at enqueue time.
fn job_trace(trace: Option<&TraceHandle>) -> JobTrace {
    trace.map(|t| (t.clone(), t.now_us()))
}

/// Client-side handle to one shard: the bounded queue plus the metric
/// handles both sides of the queue share.
struct Shard {
    tx: SyncSender<Job>,
    /// Requests currently enqueued or being drained (mirrored into the
    /// `sharded.queue_depth{shard=..}` gauge by whichever side moved last).
    depth: Arc<AtomicI64>,
    depth_gauge: Arc<Gauge>,
    /// Client-observed latency (queue wait + batching delay + processing).
    front_latency: Arc<Histogram>,
    shed: Arc<Counter>,
}

/// Per-shard state the worker thread updates while draining.
struct WorkerMetrics {
    /// The shard this worker serves — annotated onto `shard.queue` and
    /// `drain` trace spans so a trace names the shard that handled it.
    shard: u32,
    depth: Arc<AtomicI64>,
    depth_gauge: Arc<Gauge>,
    batch_sizes: Arc<Histogram>,
    /// Effective rows per batched score call — the size of each drain's
    /// tag-click partition (`sharded.batch_rows{shard=..}`). Mean > 1 means
    /// the one-forward-per-drain path is actually amortizing forwards.
    batch_rows: Arc<Histogram>,
    processed: Arc<Counter>,
}

/// The sharded, batched front over per-shard [`ModelServer`] replicas.
///
/// Construction goes through [`ShardedServer::spawn`], which runs the
/// factory once *inside* each worker thread — the models in this workspace
/// hold `Rc`-based autograd parameters and are not `Send`, so replicas must
/// be built where they will serve, exactly like the deployed one-replica-
/// per-worker layout. Dropping the front (or calling
/// [`ShardedServer::shutdown`]) closes the queues, drains every accepted
/// request, and joins the workers.
pub struct ShardedServer {
    shards: Vec<Shard>,
    workers: Vec<JoinHandle<()>>,
    registry: MetricsRegistry,
    policy: String,
    config: ShardConfig,
    shed_total: Arc<Counter>,
    /// Per-tenant-tier shed counters (`slo.shed{tenant_tier=..}`), bound
    /// once and indexed `tenant % 3` so the shed path never formats names.
    slo_shed: [Arc<Counter>; 3],
    worker_lost: Arc<Counter>,
    /// Per-front sequence feeding power-of-two-choices candidate sampling.
    route_seq: AtomicU64,
    /// Highest snapshot version any worker has applied (workers fence swaps
    /// at their own drain boundaries, so individual replicas may trail this
    /// for one drain during a rollout).
    applied_version: Arc<AtomicU64>,
    /// Live knobs shared with every worker (and the governor, if any).
    knobs: Arc<RuntimeKnobs>,
}

impl ShardedServer {
    /// Spawns `cfg.shards` worker threads, building one server replica per
    /// shard via `factory(shard_id)` inside the worker. Every replica is
    /// rebound onto the shared `registry`, so `serving.*` metrics aggregate
    /// across shards while `sharded.*{shard="i"}` series stay per shard.
    ///
    /// # Panics
    /// Panics when any knob in `cfg` is zero, or when a factory panics
    /// during startup (the spawn surfaces worker construction failures
    /// instead of serving into the void).
    pub fn spawn<M, F>(cfg: ShardConfig, registry: MetricsRegistry, factory: F) -> Self
    where
        M: SequenceRecommender + 'static,
        F: Fn(usize) -> ModelServer<M> + Send + Sync + 'static,
    {
        Self::spawn_inner(cfg, registry, factory, None)
    }

    /// [`ShardedServer::spawn`] with live model hot-swap: on top of the
    /// per-shard `factory`, every worker polls `swap` at its drain
    /// boundaries and, when a newer [`SwapPayload`] has been published,
    /// rebuilds its replica's model via `loader(shard_id, payload)` and
    /// installs it atomically between drains — the epoch fence. `loader`
    /// runs inside the worker thread (models are not `Send`), must be
    /// deterministic in the payload bytes, and is expected to be the
    /// inverse of however the payload was serialized (e.g.
    /// `IntelliTag::load` over an `IntelliTag::save` artifact).
    ///
    /// Swapping never loses requests: requests already drained are served
    /// by the old version, later drains by the new one, and the caches the
    /// replica keeps are invalidated as part of the install.
    pub fn spawn_swappable<M, F, L>(
        cfg: ShardConfig,
        registry: MetricsRegistry,
        factory: F,
        swap: ModelSwap,
        loader: L,
    ) -> Self
    where
        M: SequenceRecommender + 'static,
        F: Fn(usize) -> ModelServer<M> + Send + Sync + 'static,
        L: Fn(usize, &SwapPayload) -> M + Send + Sync + 'static,
    {
        Self::spawn_inner(cfg, registry, factory, Some((swap, Arc::new(loader) as _)))
    }

    #[allow(clippy::type_complexity)]
    fn spawn_inner<M, F>(
        cfg: ShardConfig,
        registry: MetricsRegistry,
        factory: F,
        swap: Option<(ModelSwap, Arc<dyn Fn(usize, &SwapPayload) -> M + Send + Sync>)>,
    ) -> Self
    where
        M: SequenceRecommender + 'static,
        F: Fn(usize) -> ModelServer<M> + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_max >= 1, "batch_max must be at least 1");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be at least 1");
        if cfg.pool_threads != 0 {
            intellitag_tensor::set_pool_threads(cfg.pool_threads);
        }
        let factory = Arc::new(factory);
        let (ready_tx, ready_rx) = mpsc::channel::<(String, u64)>();
        let applied_version = Arc::new(AtomicU64::new(0));
        let knobs = Arc::new(RuntimeKnobs::new(cfg.batch_max, cfg.queue_capacity));
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        for shard_id in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity);
            let sid = shard_id.to_string();
            let labels = [("shard", sid.as_str())];
            let depth = Arc::new(AtomicI64::new(0));
            let shard = Shard {
                tx,
                depth: Arc::clone(&depth),
                depth_gauge: registry.gauge_labeled("sharded.queue_depth", &labels),
                front_latency: registry.histogram_labeled("sharded.request_us", &labels),
                shed: registry.counter_labeled("sharded.shed", &labels),
            };
            let worker_metrics = WorkerMetrics {
                shard: shard_id as u32,
                depth,
                depth_gauge: Arc::clone(&shard.depth_gauge),
                batch_sizes: registry.histogram_labeled("sharded.batch", &labels),
                batch_rows: registry.histogram_labeled("sharded.batch_rows", &labels),
                processed: registry.counter_labeled("sharded.processed", &labels),
            };
            let (factory, registry, ready_tx) =
                (Arc::clone(&factory), registry.clone(), ready_tx.clone());
            let worker_knobs = Arc::clone(&knobs);
            let worker_swap = swap.as_ref().map(|(s, l)| WorkerSwap {
                swap: s.clone(),
                loader: Arc::clone(l),
                applied: Arc::clone(&applied_version),
                shard: shard_id,
                seen: 0,
            });
            let handle = std::thread::Builder::new()
                .name(format!("intellitag-shard-{shard_id}"))
                .spawn(move || {
                    let server = factory(shard_id).with_metrics(registry);
                    let _ = ready_tx.send((server.policy(), server.model_version()));
                    drop(ready_tx);
                    let mut worker_swap = worker_swap;
                    if let Some(ctx) = worker_swap.as_mut() {
                        // The factory's checkpoint is this worker's floor;
                        // only strictly newer snapshots swap in.
                        ctx.seen = server.model_version();
                    }
                    worker_loop(server, rx, worker_metrics, worker_knobs, worker_swap);
                })
                .expect("spawn shard worker");
            shards.push(shard);
            workers.push(handle);
        }
        drop(ready_tx);
        // Wait for every replica to finish building; a factory panic shows
        // up here as a truncated ready stream.
        let ready: Vec<(String, u64)> = ready_rx.iter().take(cfg.shards).collect();
        assert_eq!(ready.len(), cfg.shards, "a shard worker died during startup");
        // fetch_max, not store: a worker may already have fenced in a newer
        // snapshot before spawn finished collecting ready messages.
        let base_version = ready.iter().map(|&(_, v)| v).max().unwrap_or(0);
        applied_version.fetch_max(base_version, Ordering::AcqRel);
        ShardedServer {
            shards,
            workers,
            policy: ready.into_iter().next().map(|(p, _)| p).unwrap_or_default(),
            shed_total: registry.counter("sharded.shed_total"),
            slo_shed: [0u64, 1, 2].map(|t| {
                registry.counter_labeled(SLO_SHED_METRIC, &[(SLO_TIER_LABEL, tenant_tier(t))])
            }),
            worker_lost: registry.counter("sharded.error.worker_lost"),
            registry,
            config: cfg,
            route_seq: AtomicU64::new(0),
            applied_version,
            knobs,
        }
    }

    /// The front's live runtime knobs — hand a clone to the governor (or
    /// poke them directly in tests). Stepping them mid-flight is safe and
    /// never changes answers.
    pub fn knobs(&self) -> Arc<RuntimeKnobs> {
        Arc::clone(&self.knobs)
    }

    /// Highest snapshot version any shard worker has applied (0 until a
    /// versioned checkpoint is installed). During a rollout individual
    /// replicas may trail by at most one drain — each worker fences at its
    /// own drain boundary — so this is the front's "serving at least
    /// version N" watermark, mirrored by the gateway's `/healthz` field and
    /// `X-Model-Version` reply header.
    pub fn model_version(&self) -> u64 {
        self.applied_version.load(Ordering::Acquire)
    }

    /// The tenant's *static* home shard (`tenant % shards`) — where its
    /// requests go under [`RoutingPolicy::TenantHash`]. Under
    /// [`RoutingPolicy::PowerOfTwoChoices`] routing is per-request and
    /// load-aware; see [`ShardedServer::route`].
    pub fn shard_for(&self, tenant: usize) -> usize {
        tenant % self.shards.len()
    }

    /// Picks the shard that will serve this request, per the configured
    /// [`RoutingPolicy`]. Power-of-two-choices samples two distinct
    /// candidates from a deterministic sequence and takes the one with the
    /// smaller live queue depth (ties go to the first candidate).
    pub fn route(&self, tenant: usize) -> usize {
        let n = self.shards.len();
        match self.config.routing {
            RoutingPolicy::TenantHash => tenant % n,
            RoutingPolicy::PowerOfTwoChoices => {
                if n == 1 {
                    return 0;
                }
                let seq = self.route_seq.fetch_add(1, Ordering::Relaxed);
                let h = splitmix64(seq ^ (tenant as u64).rotate_left(32));
                let a = (h % n as u64) as usize;
                let mut b = (splitmix64(h) % (n as u64 - 1)) as usize;
                if b >= a {
                    b += 1; // distinct second choice
                }
                let depth_a = self.shards[a].depth.load(Ordering::Relaxed);
                let depth_b = self.shards[b].depth.load(Ordering::Relaxed);
                if depth_b < depth_a {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// The front's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Total requests shed across all shards.
    pub fn shed_count(&self) -> u64 {
        self.shed_total.get()
    }

    /// Merged client-observed front latency across every shard's
    /// `sharded.request_us{shard=..}` series.
    pub fn front_latency_snapshot(&self) -> HistogramSnapshot {
        self.registry.merged_histogram("sharded.request_us")
    }

    /// Shuts the front down: closes every queue, drains all accepted
    /// requests, and joins the workers. Dropping the front does the same.
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        self.shards.clear(); // drop senders: workers drain, then exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Sends a job to the routed shard, blocking when the queue is full
    /// (backpressure). Returns `false` when the worker is gone.
    fn send(&self, shard: usize, job: Job) -> bool {
        let shard = &self.shards[shard];
        let depth = shard.depth.fetch_add(1, Ordering::Relaxed) + 1;
        shard.depth_gauge.set(depth as f64);
        if shard.tx.send(job).is_err() {
            shard.depth.fetch_sub(1, Ordering::Relaxed);
            self.worker_lost.inc();
            return false;
        }
        true
    }

    /// Sends a job without blocking; sheds when the shard's live depth
    /// exceeds the governed soft limit ([`RuntimeKnobs::shed_depth`]) or
    /// the physical queue is full. Blocking sends ignore the soft limit —
    /// they apply backpressure instead of shedding, by contract.
    fn try_send(&self, shard: usize, job: Job) -> Result<(), ShedReason> {
        let shard = &self.shards[shard];
        let depth = shard.depth.fetch_add(1, Ordering::Relaxed) + 1;
        if depth > self.knobs.shed_depth() as i64 {
            shard.depth.fetch_sub(1, Ordering::Relaxed);
            shard.shed.inc();
            self.shed_total.inc();
            return Err(ShedReason::Overloaded);
        }
        match shard.tx.try_send(job) {
            Ok(()) => {
                shard.depth_gauge.set(depth as f64);
                Ok(())
            }
            Err(e) => {
                shard.depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => {
                        shard.shed.inc();
                        self.shed_total.inc();
                        Err(ShedReason::Overloaded)
                    }
                    TrySendError::Disconnected(_) => {
                        self.worker_lost.inc();
                        Err(ShedReason::ShuttingDown)
                    }
                }
            }
        }
    }

    /// Completes a round trip: waits for the reply and records the
    /// client-observed latency on the shard that served it.
    fn finish<T>(&self, shard: usize, timer: SpanTimer, reply: Receiver<T>) -> Option<T> {
        match reply.recv() {
            Ok(resp) => {
                self.shards[shard].front_latency.record(timer.elapsed_us());
                Some(resp)
            }
            Err(_) => {
                self.worker_lost.inc();
                None
            }
        }
    }

    /// Records a shed request against the tenant's tier SLO series.
    fn record_shed(&self, tenant: usize, reason: ShedReason) {
        if reason == ShedReason::Overloaded {
            self.slo_shed[tenant % 3].inc();
        }
    }

    /// Handles a typed question through the front, blocking under
    /// backpressure. A lost worker degrades to an empty response (plus the
    /// `sharded.error.worker_lost` counter) — the client never panics.
    pub fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        self.handle_question_inner(tenant, question, None)
    }

    /// [`Self::handle_question`] with the request's trace riding the queue:
    /// the worker closes a `shard.queue` span at dequeue, wraps the drain in
    /// a `drain` span, and the replica records per-stage spans.
    pub fn handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> QuestionResponse {
        self.handle_question_inner(tenant, question, Some(trace))
    }

    fn handle_question_inner(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> QuestionResponse {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent = self.send(
            shard,
            Job::Question {
                tenant,
                text: question.to_string(),
                reply: reply_tx,
                trace: job_trace(trace),
            },
        );
        let degraded = |timer: SpanTimer| QuestionResponse {
            rq: None,
            answer: None,
            recommended_tags: Vec::new(),
            latency_us: timer.elapsed_us(),
        };
        if !sent {
            return degraded(timer);
        }
        self.finish(shard, timer, reply_rx).unwrap_or_else(|| degraded(timer))
    }

    /// Handles a tag click through the front, blocking under backpressure.
    pub fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        self.handle_tag_click_inner(tenant, clicks, None)
    }

    /// [`Self::handle_tag_click`] with the request's trace riding the
    /// queue; batched drains record each member's amortized score share.
    pub fn handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> TagClickResponse {
        self.handle_tag_click_inner(tenant, clicks, Some(trace))
    }

    fn handle_tag_click_inner(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> TagClickResponse {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent = self.send(
            shard,
            Job::TagClick {
                tenant,
                clicks: clicks.to_vec(),
                reply: reply_tx,
                trace: job_trace(trace),
            },
        );
        let degraded = |timer: SpanTimer| TagClickResponse {
            recommended_tags: Vec::new(),
            predicted_questions: Vec::new(),
            latency_us: timer.elapsed_us(),
        };
        if !sent {
            return degraded(timer);
        }
        self.finish(shard, timer, reply_rx).unwrap_or_else(|| degraded(timer))
    }

    /// Cold-start tags for a tenant, served by the routed shard.
    pub fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        if !self.send(shard, Job::ColdStart { tenant, reply: reply_tx }) {
            return Vec::new();
        }
        self.finish(shard, timer, reply_rx).unwrap_or_default()
    }

    /// Non-blocking question: sheds with [`ShedReason::Overloaded`] instead
    /// of waiting when the shard's queue is full. Sheds tick the tenant
    /// tier's `slo.shed{tenant_tier=..}` counter.
    pub fn try_handle_question(
        &self,
        tenant: usize,
        question: &str,
    ) -> Result<QuestionResponse, ShedReason> {
        self.try_handle_question_inner(tenant, question, None)
    }

    /// [`Self::try_handle_question`] with the request's trace riding the
    /// queue.
    pub fn try_handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> Result<QuestionResponse, ShedReason> {
        self.try_handle_question_inner(tenant, question, Some(trace))
    }

    fn try_handle_question_inner(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> Result<QuestionResponse, ShedReason> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.try_send(
            shard,
            Job::Question {
                tenant,
                text: question.to_string(),
                reply: reply_tx,
                trace: job_trace(trace),
            },
        )
        .inspect_err(|&reason| self.record_shed(tenant, reason))?;
        self.finish(shard, timer, reply_rx).ok_or(ShedReason::ShuttingDown)
    }

    /// Non-blocking tag click: sheds instead of waiting on a full queue.
    /// Sheds tick the tenant tier's `slo.shed{tenant_tier=..}` counter.
    pub fn try_handle_tag_click(
        &self,
        tenant: usize,
        clicks: &[usize],
    ) -> Result<TagClickResponse, ShedReason> {
        self.try_handle_tag_click_inner(tenant, clicks, None)
    }

    /// [`Self::try_handle_tag_click`] with the request's trace riding the
    /// queue.
    pub fn try_handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> Result<TagClickResponse, ShedReason> {
        self.try_handle_tag_click_inner(tenant, clicks, Some(trace))
    }

    /// Submits a question without waiting for the reply: the job rides the
    /// routed shard's queue exactly like [`Self::handle_question`], but the
    /// caller gets the reply channel back as a [`PendingReply`] instead of
    /// blocking on it. A full queue sheds ([`Submission::Rejected`]) rather
    /// than stalling the submitter — the contract the gateway's pipelined
    /// binary connections need to keep many correlated requests in flight.
    /// Each job carries its own reply channel, so replies stay correlated
    /// with their requests no matter how drains batch or reorder work.
    pub fn submit_question(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> Submission<QuestionResponse> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job::Question {
            tenant,
            text: question.to_string(),
            reply: reply_tx,
            trace: job_trace(trace),
        };
        self.submission(shard, tenant, job, reply_rx, timer)
    }

    /// Submits a tag click without waiting (see [`Self::submit_question`]).
    pub fn submit_tag_click(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> Submission<TagClickResponse> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        let job = Job::TagClick {
            tenant,
            clicks: clicks.to_vec(),
            reply: reply_tx,
            trace: job_trace(trace),
        };
        self.submission(shard, tenant, job, reply_rx, timer)
    }

    /// Submits a cold-start lookup without waiting (see
    /// [`Self::submit_question`]).
    pub fn submit_cold_start(&self, tenant: usize) -> Submission<Vec<usize>> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.submission(shard, tenant, Job::ColdStart { tenant, reply: reply_tx }, reply_rx, timer)
    }

    /// Shared tail of the `submit_*` family: non-blocking enqueue, shed
    /// accounting on rejection, and a [`PendingReply`] that records the
    /// shard's client-observed latency when the reply finally lands.
    fn submission<T>(
        &self,
        shard: usize,
        tenant: usize,
        job: Job,
        reply_rx: Receiver<T>,
        timer: SpanTimer,
    ) -> Submission<T> {
        match self.try_send(shard, job) {
            Ok(()) => Submission::Pending(
                PendingReply::new(reply_rx)
                    .with_latency(Arc::clone(&self.shards[shard].front_latency), timer),
            ),
            Err(reason) => {
                self.record_shed(tenant, reason);
                Submission::Rejected(reason)
            }
        }
    }

    fn try_handle_tag_click_inner(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> Result<TagClickResponse, ShedReason> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.try_send(
            shard,
            Job::TagClick {
                tenant,
                clicks: clicks.to_vec(),
                reply: reply_tx,
                trace: job_trace(trace),
            },
        )
        .inspect_err(|&reason| self.record_shed(tenant, reason))?;
        self.finish(shard, timer, reply_rx).ok_or(ShedReason::ShuttingDown)
    }
}

impl TagService for ShardedServer {
    fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        ShardedServer::handle_question(self, tenant, question)
    }

    fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        ShardedServer::handle_tag_click(self, tenant, clicks)
    }

    fn handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> QuestionResponse {
        ShardedServer::handle_question_traced(self, tenant, question, trace)
    }

    fn handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> TagClickResponse {
        ShardedServer::handle_tag_click_traced(self, tenant, clicks, trace)
    }

    fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        ShardedServer::cold_start_tags(self, tenant)
    }

    fn submit_question(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> Submission<QuestionResponse> {
        ShardedServer::submit_question(self, tenant, question, trace)
    }

    fn submit_tag_click(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> Submission<TagClickResponse> {
        ShardedServer::submit_tag_click(self, tenant, clicks, trace)
    }

    fn submit_cold_start(&self, tenant: usize) -> Submission<Vec<usize>> {
        ShardedServer::submit_cold_start(self, tenant)
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn latency_snapshot(&self) -> HistogramSnapshot {
        // The shards' inner servers all publish into the shared registry,
        // so the plain `serving.request_us` histogram already aggregates
        // every shard's server-side latency.
        self.registry.histogram("serving.request_us").snapshot()
    }

    fn policy(&self) -> String {
        self.policy.clone()
    }

    fn model_version(&self) -> u64 {
        ShardedServer::model_version(self)
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// Closes a job's `shard.queue` span (enqueue -> dequeue) and returns the
/// handle plus the dequeue stamp — which doubles as the `drain` span start.
fn close_queue_span(trace: JobTrace, shard: u32) -> Option<(TraceHandle, u64)> {
    trace.map(|(t, enq)| {
        let deq = t.now_us();
        t.record_annotated("shard.queue", enq, deq, Some(shard), None);
        (t, deq)
    })
}

/// Records the member's `drain` span: dequeue -> reply-ready, annotated
/// with the shard and the drain's total size. Recorded *before* the reply
/// is sent so the client never observes a trace missing its drain span.
fn close_drain_span(trace: &Option<(TraceHandle, u64)>, shard: u32, rows: u32) {
    if let Some((t, deq)) = trace {
        t.record_annotated("drain", *deq, t.now_us(), Some(shard), Some(rows));
    }
}

/// The worker loop: block for one request, then drain up to `batch_max - 1`
/// more without blocking, record the batch size, and serve the batch
/// through the shard's replica. Each drain is partitioned: questions and
/// cold starts are answered inline, while the drain's tag clicks ride one
/// batched score call (`ModelServer::handle_tag_click_batch`) — one model
/// forward per drain instead of one per click, with the effective batch
/// size recorded in `sharded.batch_rows{shard=..}`. Batched and serial
/// scoring are bit-exact, so this changes latency only, never answers.
///
/// Traced jobs get their `shard.queue` span closed at dequeue and a `drain`
/// span (annotated with the shard and drain size) recorded before their
/// reply is released; the replica's traced handlers add per-stage spans in
/// between. Untraced jobs take the exact pre-tracing path.
///
/// Exits when every client handle is gone and the queue is empty —
/// `std::sync::mpsc` delivers buffered messages after sender drop, which is
/// what makes shutdown drain instead of abort.
fn worker_loop<M: SequenceRecommender>(
    mut server: ModelServer<M>,
    rx: Receiver<Job>,
    metrics: WorkerMetrics,
    knobs: Arc<RuntimeKnobs>,
    mut swap: Option<WorkerSwap<M>>,
) {
    let mut batch = Vec::with_capacity(knobs.batch_max());
    while let Ok(first) = rx.recv() {
        // The live batch ceiling is re-read at every drain top, so a
        // governor step lands at the next drain boundary — the same fence
        // discipline model hot-swaps use.
        let batch_max = knobs.batch_max();
        batch.push(first);
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        // The epoch fence: a pending snapshot swaps in here — after the
        // drain is collected, before any of it is served — so every drain
        // is answered by exactly one model version.
        if let Some(ctx) = swap.as_mut() {
            ctx.apply_pending(&mut server);
        }
        let remaining =
            metrics.depth.fetch_sub(batch.len() as i64, Ordering::Relaxed) - batch.len() as i64;
        metrics.depth_gauge.set(remaining.max(0) as f64);
        metrics.batch_sizes.record(batch.len() as u64);
        let drain_size = batch.len() as u32;
        // `processed` is incremented before each reply is released so that
        // once a client holds a response, the counter already reflects it —
        // registry reconciliation never lags behind the clients' own
        // accounting. A send error means the client gave up on the reply
        // (e.g. a shed-and-retry harness); the request was still served.
        let mut click_reqs: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut click_replies: Vec<mpsc::Sender<TagClickResponse>> = Vec::new();
        let mut click_traces: Vec<Option<(TraceHandle, u64)>> = Vec::new();
        for job in batch.drain(..) {
            match job {
                Job::Question { tenant, text, reply, trace } => {
                    let trace = close_queue_span(trace, metrics.shard);
                    let resp = match &trace {
                        Some((t, _)) => server.handle_question_traced(tenant, &text, t),
                        None => server.handle_question(tenant, &text),
                    };
                    close_drain_span(&trace, metrics.shard, drain_size);
                    metrics.processed.inc();
                    let _ = reply.send(resp);
                }
                Job::TagClick { tenant, clicks, reply, trace } => {
                    click_reqs.push((tenant, clicks));
                    click_replies.push(reply);
                    click_traces.push(close_queue_span(trace, metrics.shard));
                }
                Job::ColdStart { tenant, reply } => {
                    let resp = server.cold_start_tags(tenant);
                    metrics.processed.inc();
                    let _ = reply.send(resp);
                }
            }
        }
        match click_reqs.len() {
            0 => {}
            1 => {
                // A lone click skips the batch plumbing — with `batch_max`
                // of 1 this is exactly the pre-batching worker.
                metrics.batch_rows.record(1);
                let (tenant, clicks) = click_reqs.pop().expect("one click request");
                let resp = match &click_traces[0] {
                    Some((t, _)) => server.handle_tag_click_traced(tenant, &clicks, t),
                    None => server.handle_tag_click(tenant, &clicks),
                };
                close_drain_span(&click_traces[0], metrics.shard, drain_size);
                metrics.processed.inc();
                let _ = click_replies[0].send(resp);
            }
            rows => {
                metrics.batch_rows.record(rows as u64);
                let responses = if click_traces.iter().any(Option::is_some) {
                    let handles: Vec<Option<TraceHandle>> =
                        click_traces.iter().map(|t| t.as_ref().map(|(h, _)| h.clone())).collect();
                    server.handle_tag_click_batch_traced(&click_reqs, &handles)
                } else {
                    server.handle_tag_click_batch(&click_reqs)
                };
                click_reqs.clear();
                for ((resp, reply), trace) in
                    responses.into_iter().zip(&click_replies).zip(&click_traces)
                {
                    close_drain_span(trace, metrics.shard, drain_size);
                    metrics.processed.inc();
                    let _ = reply.send(resp);
                }
            }
        }
        click_replies.clear();
        click_traces.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_baselines::Popularity;
    use intellitag_search::KbWarehouse;

    fn server_with<M: SequenceRecommender>(model: M) -> ModelServer<M> {
        let mut kb = KbWarehouse::new();
        kb.add_pair("how to change password", "settings > security", 0);
        kb.add_pair("how to apply for etc card", "apply in the etc menu", 0);
        kb.add_pair("where to cancel the order", "orders > cancel", 1);
        let tag_texts = vec![
            "change".into(),
            "password".into(),
            "apply".into(),
            "etc card".into(),
            "cancel".into(),
            "order".into(),
        ];
        let rq_tags = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let tenant_tags = vec![vec![0, 1, 2, 3], vec![4, 5]];
        let clicks = vec![5, 9, 3, 7, 2, 4];
        ModelServer::new(model, kb, tag_texts, rq_tags, tenant_tags, clicks)
    }

    fn replica() -> ModelServer<Popularity> {
        server_with(Popularity::from_counts(&[5, 9, 3, 7, 2, 4]))
    }

    fn front(cfg: ShardConfig) -> (ShardedServer, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        let front = ShardedServer::spawn(cfg, registry.clone(), |_shard| replica());
        (front, registry)
    }

    #[test]
    fn front_matches_single_process_server() {
        let single = replica();
        let (front, _) = front(ShardConfig { shards: 2, ..Default::default() });
        for tenant in 0..2 {
            let q = front.handle_question(tenant, "how to change password");
            assert!(q.same_content(&single.handle_question(tenant, "how to change password")));
            let c = front.handle_tag_click(tenant, &[4 * tenant]);
            assert!(c.same_content(&single.handle_tag_click(tenant, &[4 * tenant])));
            assert_eq!(front.cold_start_tags(tenant), single.cold_start_tags(tenant));
        }
    }

    #[test]
    fn per_shard_series_land_in_shared_registry() {
        let (front, registry) = front(ShardConfig { shards: 2, ..Default::default() });
        let _ = front.handle_tag_click(0, &[0]); // shard 0
        let _ = front.handle_tag_click(1, &[4]); // shard 1
        for shard in ["0", "1"] {
            let h = registry.histogram_labeled("sharded.request_us", &[("shard", shard)]);
            assert_eq!(h.count(), 1, "shard {shard} front latency not recorded");
        }
        assert_eq!(front.front_latency_snapshot().count, 2);
        // Inner servers aggregate into the plain serving histograms.
        assert_eq!(registry.histogram("serving.request_us").count(), 2);
        let text = registry.render_prometheus();
        assert!(text.contains("sharded_request_us_count{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("sharded_request_us_count{shard=\"1\"} 1"), "{text}");
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        // One slow shard with a deep queue: enqueue from a helper thread,
        // then drop the front while requests are still queued — every reply
        // channel must still resolve.
        let (front, registry) = front(ShardConfig {
            shards: 1,
            batch_max: 2,
            queue_capacity: 64,
            ..Default::default()
        });
        let n = 32;
        let replies: Vec<_> = (0..n)
            .map(|i| {
                let (tx, rx) = mpsc::channel();
                front
                    .try_send(
                        0,
                        Job::TagClick { tenant: 0, clicks: vec![i % 4], reply: tx, trace: None },
                    )
                    .expect("queue has room");
                rx
            })
            .collect();
        front.shutdown();
        for rx in replies {
            let resp = rx.recv().expect("request drained, not dropped");
            assert!(!resp.recommended_tags.is_empty() || !resp.predicted_questions.is_empty());
        }
        assert_eq!(
            registry.counter_labeled("sharded.processed", &[("shard", "0")]).get(),
            n as u64
        );
    }

    #[test]
    fn batching_is_observable_and_bounded() {
        let (front, registry) = front(ShardConfig {
            shards: 1,
            batch_max: 4,
            queue_capacity: 64,
            ..Default::default()
        });
        for _ in 0..3 {
            let _ = front.handle_tag_click(0, &[0]);
        }
        front.shutdown();
        let batches = registry.histogram_labeled("sharded.batch", &[("shard", "0")]).snapshot();
        assert!(batches.count >= 1);
        assert!(batches.max <= 4, "batch exceeded batch_max: {}", batches.max);
    }

    /// Runs one `worker_loop` to completion over a preloaded queue on the
    /// current thread — deterministic drain composition, no racing worker.
    fn run_worker(jobs: Vec<Job>, batch_max: usize) -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        let server = replica().with_metrics(registry.clone());
        let (tx, rx) = mpsc::sync_channel(jobs.len().max(1));
        for job in jobs {
            tx.try_send(job).expect("preload fits the queue");
        }
        drop(tx);
        let labels = [("shard", "0")];
        let metrics = WorkerMetrics {
            shard: 0,
            depth: Arc::new(AtomicI64::new(0)),
            depth_gauge: registry.gauge_labeled("sharded.queue_depth", &labels),
            batch_sizes: registry.histogram_labeled("sharded.batch", &labels),
            batch_rows: registry.histogram_labeled("sharded.batch_rows", &labels),
            processed: registry.counter_labeled("sharded.processed", &labels),
        };
        worker_loop(server, rx, metrics, Arc::new(RuntimeKnobs::new(batch_max, 64)), None);
        registry
    }

    #[test]
    fn full_drain_scores_clicks_as_one_batch() {
        // A queue preloaded with 5 clicks drains as one batch of 5: one
        // batch_rows record, answers identical to a single-process server.
        let single = replica();
        let clicks: Vec<Vec<usize>> = vec![vec![0], vec![1, 0], vec![2], vec![0], vec![3, 2]];
        let (jobs, replies): (Vec<Job>, Vec<_>) = clicks
            .iter()
            .map(|c| {
                let (tx, rx) = mpsc::channel();
                (Job::TagClick { tenant: 0, clicks: c.clone(), reply: tx, trace: None }, rx)
            })
            .unzip();
        let registry = run_worker(jobs, 8);
        for (c, rx) in clicks.iter().zip(replies) {
            let resp = rx.recv().expect("drained");
            assert!(resp.same_content(&single.handle_tag_click(0, c)), "clicks {c:?} diverged");
        }
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert_eq!(rows.count, 1, "5 preloaded clicks must drain as one batch");
        assert_eq!(rows.max, 5);
        assert_eq!(registry.counter_labeled("sharded.processed", &[("shard", "0")]).get(), 5);
        // One batched score call served 4 unique click histories; stage
        // accounting stays per-request.
        assert_eq!(registry.histogram("serving.stage.score_us").count(), 5);
    }

    #[test]
    fn all_question_drain_records_no_batch_rows() {
        // A drain that is 100% questions has an empty click partition: the
        // batched path must not run (no batch_rows samples, no empty-batch
        // score call) and every question still answers.
        let single = replica();
        let questions = ["how to change password", "how to apply for etc card"];
        let (jobs, replies): (Vec<Job>, Vec<_>) = questions
            .iter()
            .map(|q| {
                let (tx, rx) = mpsc::channel();
                (Job::Question { tenant: 0, text: q.to_string(), reply: tx, trace: None }, rx)
            })
            .unzip();
        let registry = run_worker(jobs, 8);
        for (q, rx) in questions.iter().zip(replies) {
            assert!(rx.recv().expect("drained").same_content(&single.handle_question(0, q)));
        }
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert_eq!(rows.count, 0, "question-only drains must not tick batch_rows");
        assert_eq!(registry.histogram("serving.stage.score_us").count(), 0);
    }

    #[test]
    fn batch_max_one_disables_batching() {
        let single = replica();
        let (front, registry) = front(ShardConfig {
            shards: 1,
            batch_max: 1,
            queue_capacity: 64,
            ..Default::default()
        });
        for i in 0..6usize {
            let c = front.handle_tag_click(0, &[i % 4]);
            assert!(c.same_content(&single.handle_tag_click(0, &[i % 4])));
        }
        front.shutdown();
        let batches = registry.histogram_labeled("sharded.batch", &[("shard", "0")]).snapshot();
        assert_eq!(batches.max, 1, "batch_max=1 must never drain more than one");
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert!(rows.count >= 1);
        assert_eq!(rows.max, 1);
    }

    #[test]
    fn mixed_drain_with_degraded_and_oversized_requests() {
        // Force one drain holding questions, cold starts, valid clicks,
        // degraded clicks, and an oversized click history — the partitioned
        // worker must answer each exactly like the single-process server.
        let single = replica();
        let (front, _) = front(ShardConfig {
            shards: 1,
            batch_max: 16,
            queue_capacity: 64,
            ..Default::default()
        });
        let oversized: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let (q_tx, q_rx) = mpsc::channel();
        front
            .try_send(
                0,
                Job::Question {
                    tenant: 0,
                    text: "cancel the order".into(),
                    reply: q_tx,
                    trace: None,
                },
            )
            .unwrap();
        let (cs_tx, cs_rx) = mpsc::channel();
        front.try_send(0, Job::ColdStart { tenant: 1, reply: cs_tx }).unwrap();
        let click_cases: Vec<(usize, Vec<usize>)> = vec![
            (0, vec![0, 1]),
            (0, vec![]),    // degraded: empty
            (99, vec![0]),  // degraded: bad tenant
            (0, vec![999]), // degraded: bad tag
            (0, oversized.clone()),
            (1, vec![4, 5]),
        ];
        let click_replies: Vec<_> = click_cases
            .iter()
            .map(|(tenant, clicks)| {
                let (tx, rx) = mpsc::channel();
                front
                    .try_send(
                        0,
                        Job::TagClick {
                            tenant: *tenant,
                            clicks: clicks.clone(),
                            reply: tx,
                            trace: None,
                        },
                    )
                    .unwrap();
                rx
            })
            .collect();
        assert!(q_rx.recv().unwrap().same_content(&single.handle_question(0, "cancel the order")));
        assert_eq!(cs_rx.recv().unwrap(), single.cold_start_tags(1));
        for ((tenant, clicks), rx) in click_cases.iter().zip(click_replies) {
            let resp = rx.recv().expect("drained");
            assert!(
                resp.same_content(&single.handle_tag_click(*tenant, clicks)),
                "tenant {tenant} clicks {clicks:?} diverged"
            );
        }
        front.shutdown();
    }

    #[test]
    fn policy_and_service_trait_surface() {
        let (front, _) = front(ShardConfig { shards: 1, ..Default::default() });
        assert_eq!(TagService::policy(&front), replica().policy());
        let svc: &dyn TagService = &front;
        let r = svc.handle_question(0, "how to change password");
        assert_eq!(r.rq, Some(0));
        assert_eq!(svc.latency_snapshot().count, 1);
    }

    #[test]
    fn p2c_keeps_parity_and_spreads_one_hot_tenant() {
        let single = replica();
        let (front, registry) = front(ShardConfig {
            shards: 2,
            routing: RoutingPolicy::PowerOfTwoChoices,
            ..Default::default()
        });
        // One hot tenant: under TenantHash every request would pin shard 0;
        // under p2c the deterministic candidate sampling spreads them.
        for i in 0..32u64 {
            let c = front.handle_tag_click(0, &[(i % 4) as usize]);
            assert!(c.same_content(&single.handle_tag_click(0, &[(i % 4) as usize])));
        }
        let q = front.handle_question(0, "how to change password");
        assert!(q.same_content(&single.handle_question(0, "how to change password")));
        assert_eq!(front.cold_start_tags(0), single.cold_start_tags(0));
        for shard in ["0", "1"] {
            let h = registry.histogram_labeled("sharded.request_us", &[("shard", shard)]);
            assert!(h.count() > 0, "p2c never routed to shard {shard}");
        }
    }

    #[test]
    fn p2c_prefers_the_less_loaded_shard() {
        let (front, _) = front(ShardConfig {
            shards: 2,
            routing: RoutingPolicy::PowerOfTwoChoices,
            ..Default::default()
        });
        // Make shard 0 look deeply backlogged; with only two shards the
        // candidate pair is always {0, 1}, so every route must pick 1.
        front.shards[0].depth.store(1_000, Ordering::Relaxed);
        for tenant in 0..8 {
            for _ in 0..8 {
                assert_eq!(front.route(tenant), 1);
            }
        }
        front.shards[0].depth.store(0, Ordering::Relaxed);
    }

    #[test]
    fn pool_threads_knob_applies_globally_and_keeps_parity() {
        // `pool_threads` sets the process-global tensor pool; answers must
        // not change (pool size is a pure perf knob — kernels are pinned
        // bit-identical across sizes by the tensor/nn parity suites).
        let single = replica();
        let (pooled, _) = front(ShardConfig { shards: 2, pool_threads: 2, ..Default::default() });
        assert_eq!(intellitag_tensor::pool_threads(), 2);
        for tenant in 0..2 {
            let c = pooled.handle_tag_click(tenant, &[4 * tenant, 4 * tenant + 1]);
            assert!(c.same_content(&single.handle_tag_click(tenant, &[4 * tenant, 4 * tenant + 1])));
        }
        pooled.shutdown();
        intellitag_tensor::set_pool_threads(0);
        // `pool_threads: 0` leaves the global setting untouched.
        let before = intellitag_tensor::pool_threads();
        let (front2, _) = front(ShardConfig { shards: 1, ..Default::default() });
        assert_eq!(intellitag_tensor::pool_threads(), before);
        front2.shutdown();
    }

    #[test]
    fn traced_request_gets_queue_drain_and_stage_spans() {
        let single = replica();
        let (front, _) = front(ShardConfig { shards: 1, ..Default::default() });

        let trace = TraceHandle::new(7);
        let resp = front.handle_tag_click_traced(0, &[0, 1], &trace);
        assert!(resp.same_content(&single.handle_tag_click(0, &[0, 1])), "tracing changed answers");
        let finished = trace.finish();
        let names: Vec<&str> = finished.spans.iter().map(|s| s.name).collect();
        for expected in ["shard.queue", "drain", "recall", "score", "rerank"] {
            assert!(names.contains(&expected), "missing span {expected}: {names:?}");
        }
        let queue = finished.spans.iter().find(|s| s.name == "shard.queue").unwrap();
        assert_eq!(queue.shard, Some(0), "queue span must name the serving shard");
        let drain = finished.spans.iter().find(|s| s.name == "drain").unwrap();
        assert_eq!(drain.shard, Some(0));
        assert!(drain.batch_rows.is_some(), "drain span must carry the drain size");
        // Spans nest sanely: every span closed before the trace finished.
        for s in &finished.spans {
            assert!(s.start_us <= s.end_us, "span {} runs backwards", s.name);
            assert!(s.end_us <= finished.total_us, "span {} outlives the trace", s.name);
        }

        let qtrace = TraceHandle::new(8);
        let q = front.handle_question_traced(0, "how to change password", &qtrace);
        assert!(q.same_content(&single.handle_question(0, "how to change password")));
        let qnames: Vec<&str> = qtrace.finish().spans.iter().map(|s| s.name).collect();
        for expected in ["shard.queue", "drain", "recall"] {
            assert!(qnames.contains(&expected), "missing span {expected}: {qnames:?}");
        }
        front.shutdown();
    }

    #[test]
    fn batched_drain_links_one_drain_span_to_every_member_trace() {
        // Preload 4 traced clicks so they drain as one batch: every member
        // trace must see shard.queue + amortized score + a drain span
        // annotated with the full drain size.
        let clicks: Vec<Vec<usize>> = vec![vec![0], vec![1, 0], vec![2], vec![3]];
        let traces: Vec<TraceHandle> =
            (0..clicks.len()).map(|i| TraceHandle::new(i as u64 + 1)).collect();
        let (jobs, replies): (Vec<Job>, Vec<_>) = clicks
            .iter()
            .zip(&traces)
            .map(|(c, t)| {
                let (tx, rx) = mpsc::channel();
                let job = Job::TagClick {
                    tenant: 0,
                    clicks: c.clone(),
                    reply: tx,
                    trace: job_trace(Some(t)),
                };
                (job, rx)
            })
            .unzip();
        let registry = run_worker(jobs, 8);
        for rx in replies {
            rx.recv().expect("drained");
        }
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert_eq!((rows.count, rows.max), (1, 4), "must drain as one batch of 4");
        for t in &traces {
            let finished = t.finish();
            let names: Vec<&str> = finished.spans.iter().map(|s| s.name).collect();
            for expected in ["shard.queue", "drain", "score"] {
                assert!(names.contains(&expected), "missing span {expected}: {names:?}");
            }
            let drain = finished.spans.iter().find(|s| s.name == "drain").unwrap();
            assert_eq!(drain.batch_rows, Some(4), "drain span must carry the drain size");
            assert_eq!(drain.shard, Some(0));
        }
    }

    #[test]
    fn overload_sheds_tick_the_tenant_tiers_slo_counter() {
        // A one-deep queue with a tight client loop: enqueueing is orders of
        // magnitude faster than serving, so sheds appear within a few tries.
        let (front, registry) =
            front(ShardConfig { shards: 1, batch_max: 1, queue_capacity: 1, ..Default::default() });
        // `try_handle_*` waits for its reply, so one client can never fill
        // the queue on its own: stuff it with raw sends (replies parked),
        // then shed a real request while the worker is still backed up.
        // Filling is ~ns and serving is ~µs, so a few attempts suffice.
        let mut parked = Vec::new();
        let mut shed = false;
        for _ in 0..10_000 {
            loop {
                let (tx, rx) = mpsc::channel();
                let job = Job::TagClick { tenant: 1, clicks: vec![0], reply: tx, trace: None };
                match front.try_send(0, job) {
                    Ok(()) => parked.push(rx),
                    Err(_) => break, // queue full
                }
            }
            if matches!(front.try_handle_tag_click(1, &[0]), Err(ShedReason::Overloaded)) {
                shed = true;
                break;
            }
        }
        assert!(shed, "no shed observed after 10k full-queue attempts");
        // Tenant 1 is the silver tier; the shed must land on its counter
        // (raw `try_send` sheds bypass the tier accounting by design).
        let silver = registry.counter_labeled(SLO_SHED_METRIC, &[(SLO_TIER_LABEL, "silver")]);
        assert!(silver.get() >= 1, "silver slo.shed not ticked");
        let gold = registry.counter_labeled(SLO_SHED_METRIC, &[(SLO_TIER_LABEL, "gold")]);
        assert_eq!(gold.get(), 0);
        drop(parked);
        front.shutdown();
    }

    #[test]
    fn submitted_requests_complete_with_correct_correlation_and_latency() {
        use crate::serving::{Poll, Submission};
        let single = replica();
        let (front, registry) = front(ShardConfig { shards: 2, ..Default::default() });
        // Submit a burst without waiting, then collect out-of-band: each
        // pending reply must resolve to the same answer the single-process
        // server gives for *its own* request (correlation survives drains).
        let cases: Vec<(usize, Vec<usize>)> =
            vec![(0, vec![0]), (1, vec![4, 5]), (0, vec![1, 0]), (1, vec![5]), (0, vec![2])];
        let mut pending = Vec::new();
        for (tenant, clicks) in &cases {
            match front.submit_tag_click(*tenant, clicks, None) {
                Submission::Pending(p) => pending.push(p),
                other => panic!("submit with room in the queue must pend, got {other:?}"),
            }
        }
        for ((tenant, clicks), mut p) in cases.iter().zip(pending) {
            let resp = loop {
                match p.try_take() {
                    Poll::Ready(r) => break r,
                    Poll::NotYet => std::thread::yield_now(),
                    Poll::Lost => panic!("reply lost for tenant {tenant}"),
                }
            };
            assert!(
                resp.same_content(&single.handle_tag_click(*tenant, clicks)),
                "submitted reply diverged for tenant {tenant} clicks {clicks:?}"
            );
        }
        // Completion recorded the client-observed front latency.
        assert_eq!(front.front_latency_snapshot().count, cases.len() as u64);
        // Question and cold-start submissions resolve too.
        let q = match front.submit_question(0, "how to change password", None) {
            Submission::Pending(mut p) => loop {
                match p.take_timeout(std::time::Duration::from_secs(5)) {
                    Poll::Ready(r) => break r,
                    Poll::NotYet => continue,
                    Poll::Lost => panic!("question reply lost"),
                }
            },
            other => panic!("unexpected {other:?}"),
        };
        assert!(q.same_content(&single.handle_question(0, "how to change password")));
        let cs = match front.submit_cold_start(1) {
            Submission::Pending(mut p) => loop {
                match p.take_timeout(std::time::Duration::from_secs(5)) {
                    Poll::Ready(r) => break r,
                    Poll::NotYet => continue,
                    Poll::Lost => panic!("cold-start reply lost"),
                }
            },
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(cs, single.cold_start_tags(1));
        front.shutdown();
        let _ = registry;
    }

    #[test]
    fn submit_sheds_on_a_full_queue_instead_of_blocking() {
        use crate::serving::Submission;
        let (front, registry) =
            front(ShardConfig { shards: 1, batch_max: 1, queue_capacity: 1, ..Default::default() });
        // Park raw sends until the queue is full, then a submit must shed
        // (never block) and tick the tenant tier's slo.shed counter.
        let mut parked = Vec::new();
        let mut shed = false;
        for _ in 0..10_000 {
            loop {
                let (tx, rx) = mpsc::channel();
                let job = Job::TagClick { tenant: 1, clicks: vec![0], reply: tx, trace: None };
                match front.try_send(0, job) {
                    Ok(()) => parked.push(rx),
                    Err(_) => break,
                }
            }
            if let Submission::Rejected(ShedReason::Overloaded) =
                front.submit_tag_click(1, &[0], None)
            {
                shed = true;
                break;
            }
        }
        assert!(shed, "no shed observed after 10k full-queue submits");
        let silver = registry.counter_labeled(SLO_SHED_METRIC, &[(SLO_TIER_LABEL, "silver")]);
        assert!(silver.get() >= 1, "submit shed must tick the tier's slo.shed");
        drop(parked);
        front.shutdown();
    }

    #[test]
    fn tenant_hash_routing_is_static() {
        let (front, _) = front(ShardConfig { shards: 2, ..Default::default() });
        for tenant in 0..8 {
            assert_eq!(front.route(tenant), tenant % 2);
            assert_eq!(front.route(tenant), front.shard_for(tenant));
        }
    }

    /// [`Popularity`] wrapper stamping every scoring call with this
    /// replica's `(shard, installed version)` into a shared log — the
    /// instrument that turns "no drain mixes versions" into an observable:
    /// each shard's logged version sequence must be monotone.
    struct VersionedModel {
        inner: Popularity,
        version: u64,
        shard: usize,
        log: Arc<Mutex<Vec<(usize, u64)>>>,
    }

    impl SequenceRecommender for VersionedModel {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn score_all(&self, context: &[usize]) -> Vec<f32> {
            self.log.lock().unwrap().push((self.shard, self.version));
            self.inner.score_all(context)
        }
    }

    /// Encodes popularity counts one byte each — the test's stand-in for a
    /// serialized checkpoint riding a [`SwapPayload`].
    fn payload(version: u64, counts: &[usize]) -> SwapPayload {
        SwapPayload { version, bytes: Arc::new(counts.iter().map(|&c| c as u8).collect()) }
    }

    fn decode_counts(payload: &SwapPayload) -> Vec<usize> {
        payload.bytes.iter().map(|&b| b as usize).collect()
    }

    #[test]
    fn hot_swap_is_epoch_fenced_under_concurrent_load() {
        let v1 = vec![5usize, 9, 3, 7, 2, 4];
        let v2 = vec![9usize, 2, 7, 3, 5, 4];
        let log: Arc<Mutex<Vec<(usize, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let registry = MetricsRegistry::new();
        let swap = ModelSwap::new();
        let (factory_log, loader_log) = (Arc::clone(&log), Arc::clone(&log));
        let v1_factory = v1.clone();
        let front = ShardedServer::spawn_swappable(
            ShardConfig { shards: 2, batch_max: 4, queue_capacity: 64, ..Default::default() },
            registry.clone(),
            move |shard| {
                server_with(VersionedModel {
                    inner: Popularity::from_counts(&v1_factory),
                    version: 1,
                    shard,
                    log: Arc::clone(&factory_log),
                })
                .with_cache(32)
                .with_score_lru(32)
                .with_model_version(1)
            },
            swap.clone(),
            move |shard, payload| VersionedModel {
                inner: Popularity::from_counts(&decode_counts(payload)),
                version: payload.version,
                shard,
                log: Arc::clone(&loader_log),
            },
        );
        assert_eq!(front.model_version(), 1);

        // Two client threads hammer repeated keys (so caches actually
        // serve) while the publisher swaps mid-stream: every reply must be
        // whole and must match one of the two versions exactly — a blend
        // (stale cached row + fresh scores) matches neither. Oracles are
        // built per thread: `ModelServer` is deliberately not `Sync`.
        std::thread::scope(|s| {
            let front = &front;
            for tenant in 0..2usize {
                let (v1, v2) = (v1.clone(), v2.clone());
                s.spawn(move || {
                    let oracle_v1 = server_with(Popularity::from_counts(&v1));
                    let oracle_v2 = server_with(Popularity::from_counts(&v2));
                    // Keys leave headroom in the tenant's tag pool so a
                    // served reply always carries recommendations — an
                    // empty reply can then only mean a dropped request.
                    let keys: [&[usize]; 2] =
                        if tenant == 0 { [&[0], &[1, 0]] } else { [&[4], &[5]] };
                    for i in 0..120 {
                        let clicks = keys[i % 2];
                        let resp = front.handle_tag_click(tenant, clicks);
                        assert!(!resp.recommended_tags.is_empty(), "request lost during swap");
                        let matches_v1 =
                            resp.same_content(&oracle_v1.handle_tag_click(tenant, clicks));
                        let matches_v2 =
                            resp.same_content(&oracle_v2.handle_tag_click(tenant, clicks));
                        assert!(
                            matches_v1 || matches_v2,
                            "tenant {tenant} clicks {clicks:?}: reply matches neither version"
                        );
                    }
                });
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(swap.publish(payload(2, &v2)));
            assert!(!swap.publish(payload(2, &v2)), "duplicate version must be rejected");
        });

        // One request per shard forces a post-publish drain: the fence runs
        // before the drain is served, so these replies are already v2 and
        // repeated keys prove the caches were dropped with the old model.
        let oracle_v2 = server_with(Popularity::from_counts(&v2));
        for tenant in 0..2usize {
            let key: &[usize] = if tenant == 0 { &[0] } else { &[4] };
            let resp = front.handle_tag_click(tenant, key);
            assert!(
                resp.same_content(&oracle_v2.handle_tag_click(tenant, key)),
                "post-publish drain served the old version"
            );
        }
        assert_eq!(front.model_version(), 2);
        assert_eq!(TagService::model_version(&front), 2);
        assert_eq!(registry.counter("serving.swaps").get(), 2, "each shard swaps exactly once");
        assert_eq!(registry.gauge("serving.model_version").get(), 2.0);

        front.shutdown();
        // The fence guarantee, observed: per shard, installed versions only
        // ever move forward (an interleaved drain would show 2,1,2,...).
        let log = log.lock().unwrap();
        for shard in 0..2usize {
            let seq: Vec<u64> = log.iter().filter(|&&(s, _)| s == shard).map(|&(_, v)| v).collect();
            assert!(!seq.is_empty(), "shard {shard} never scored");
            assert!(
                seq.windows(2).all(|w| w[0] <= w[1]),
                "shard {shard} version sequence regressed: {seq:?}"
            );
        }
    }

    #[test]
    fn pre_published_snapshot_applies_before_the_first_drain_is_served() {
        let v1 = vec![5usize, 9, 3, 7, 2, 4];
        let v2 = vec![9usize, 2, 7, 3, 5, 4];
        let swap = ModelSwap::new();
        assert!(swap.publish(payload(2, &v2)));
        assert!(!swap.publish(payload(1, &v1)), "stale publish must be rejected");
        assert_eq!(swap.latest_version(), 2);

        let registry = MetricsRegistry::new();
        let v1_factory = v1.clone();
        let front = ShardedServer::spawn_swappable(
            ShardConfig { shards: 1, ..Default::default() },
            registry,
            move |_shard| server_with(Popularity::from_counts(&v1_factory)).with_model_version(1),
            swap,
            |_shard, p| Popularity::from_counts(&decode_counts(p)),
        );
        // The worker starts on v1 but fences the pending snapshot in before
        // serving its first drain — no request is ever answered by v1.
        let resp = front.handle_tag_click(0, &[0]);
        let oracle_v2 = server_with(Popularity::from_counts(&v2));
        assert!(resp.same_content(&oracle_v2.handle_tag_click(0, &[0])));
        assert_eq!(front.model_version(), 2);
        front.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let registry = MetricsRegistry::new();
        let _ =
            ShardedServer::spawn(ShardConfig { shards: 0, ..Default::default() }, registry, |_| {
                replica()
            });
    }
}
