//! The sharded, batched serving front: N worker threads, each owning a full
//! [`ModelServer`] replica, multiplexing tenant traffic over bounded
//! `std::sync::mpsc` request queues.
//!
//! This is the ROADMAP's "next scaling step" for the paper's online system
//! (§V): the deployed stack serves heavy tenant traffic with strict latency
//! SLOs (Table VI), which a single synchronous server cannot absorb. The
//! front routes requests per the configured [`RoutingPolicy`] — static
//! `tenant % shards` partitioning (the default, keeping a tenant's cache
//! and counters shard-local) or load-aware power-of-two-choices over live
//! per-shard queue depths — micro-batches queue drains (up to
//! `batch_max` requests per wakeup, amortizing scheduler round trips), and
//! degrades gracefully under overload: queues are bounded, the `try_`
//! variants shed with a counter instead of blocking, and shutdown drains
//! every in-flight request before the workers exit.
//!
//! The headline guarantee — enforced by `tests/sharded_parity.rs` — is that
//! for any request stream the front returns responses identical to a
//! single-process [`ModelServer`] built from the same data: shard count and
//! batch size are pure performance knobs. This holds because every model in
//! the workspace is deterministic and each shard owns a complete replica,
//! so no request's answer depends on scheduling.
//!
//! Every shard publishes labeled series into the shared
//! [`MetricsRegistry`]: `sharded.request_us{shard="i"}` (client-observed
//! queue + processing latency), `sharded.batch{shard="i"}` (drain sizes),
//! `sharded.queue_depth{shard="i"}` gauges, and `sharded.processed` /
//! `sharded.shed` counters, while the inner servers' `serving.*` metrics
//! aggregate across shards in the same registry.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;

use intellitag_baselines::SequenceRecommender;
use intellitag_obs::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, SpanTimer};

use crate::serving::{ModelServer, QuestionResponse, TagClickResponse, TagService};

/// How the front picks a shard for each request. Every shard owns a full
/// deterministic replica, so the policy changes latency and load balance,
/// never answers — the parity tests hold under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// Static partitioning: `tenant % shards`. A tenant's cache and
    /// counters stay shard-local; one hot tenant can hotspot one shard.
    #[default]
    TenantHash,
    /// Power-of-two-choices: sample two distinct candidate shards per
    /// request (deterministically, from a per-front sequence) and route to
    /// the one with the smaller queue depth. Spreads multi-replica tenants
    /// across the fleet; the classic result is exponential improvement in
    /// max load over one random choice.
    PowerOfTwoChoices,
}

/// Tuning knobs of the sharded front. Parity with the single-process server
/// holds for every setting; these trade latency against throughput only.
#[derive(Debug, Clone, Copy)]
pub struct ShardConfig {
    /// Worker threads, each owning one `ModelServer` replica. Tenants are
    /// partitioned as `tenant % shards`.
    pub shards: usize,
    /// Maximum requests drained per worker wakeup (micro-batch size). `1`
    /// disables batching.
    pub batch_max: usize,
    /// Bounded per-shard queue capacity. Blocking calls apply backpressure
    /// when the queue is full; `try_` calls shed instead.
    pub queue_capacity: usize,
    /// Shard selection policy (default: static `tenant % shards`).
    pub routing: RoutingPolicy,
    /// Tensor compute-pool threads *per process* (`0` = leave the global
    /// setting alone — env override or `available_parallelism`). The pool is
    /// process-global, so all shards share it: a front running S shards with
    /// a P-thread pool can have up to `S × P` runnable threads. Size so that
    /// `shards × pool_threads ≤ cores`, or keep the default serial pool
    /// (`pool_threads = 1`) when the shard count already covers the cores.
    /// Pool size never changes answers (kernels are bit-identical across
    /// pool sizes), so this is a pure latency/throughput knob.
    pub pool_threads: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            batch_max: 8,
            queue_capacity: 256,
            routing: RoutingPolicy::TenantHash,
            pool_threads: 0,
        }
    }
}

/// The mix stage of splitmix64 — cheap, stateless, and deterministic, which
/// keeps power-of-two-choices candidate sampling reproducible run to run.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a `try_` request was rejected without being served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The shard's bounded queue was full (overload shedding; counted in
    /// `sharded.shed`).
    Overloaded,
    /// The shard's worker has exited (the front is shutting down).
    ShuttingDown,
}

/// One request in flight to a shard worker.
enum Job {
    Question { tenant: usize, text: String, reply: mpsc::Sender<QuestionResponse> },
    TagClick { tenant: usize, clicks: Vec<usize>, reply: mpsc::Sender<TagClickResponse> },
    ColdStart { tenant: usize, reply: mpsc::Sender<Vec<usize>> },
}

/// Client-side handle to one shard: the bounded queue plus the metric
/// handles both sides of the queue share.
struct Shard {
    tx: SyncSender<Job>,
    /// Requests currently enqueued or being drained (mirrored into the
    /// `sharded.queue_depth{shard=..}` gauge by whichever side moved last).
    depth: Arc<AtomicI64>,
    depth_gauge: Arc<Gauge>,
    /// Client-observed latency (queue wait + batching delay + processing).
    front_latency: Arc<Histogram>,
    shed: Arc<Counter>,
}

/// Per-shard state the worker thread updates while draining.
struct WorkerMetrics {
    depth: Arc<AtomicI64>,
    depth_gauge: Arc<Gauge>,
    batch_sizes: Arc<Histogram>,
    /// Effective rows per batched score call — the size of each drain's
    /// tag-click partition (`sharded.batch_rows{shard=..}`). Mean > 1 means
    /// the one-forward-per-drain path is actually amortizing forwards.
    batch_rows: Arc<Histogram>,
    processed: Arc<Counter>,
}

/// The sharded, batched front over per-shard [`ModelServer`] replicas.
///
/// Construction goes through [`ShardedServer::spawn`], which runs the
/// factory once *inside* each worker thread — the models in this workspace
/// hold `Rc`-based autograd parameters and are not `Send`, so replicas must
/// be built where they will serve, exactly like the deployed one-replica-
/// per-worker layout. Dropping the front (or calling
/// [`ShardedServer::shutdown`]) closes the queues, drains every accepted
/// request, and joins the workers.
pub struct ShardedServer {
    shards: Vec<Shard>,
    workers: Vec<JoinHandle<()>>,
    registry: MetricsRegistry,
    policy: String,
    config: ShardConfig,
    shed_total: Arc<Counter>,
    worker_lost: Arc<Counter>,
    /// Per-front sequence feeding power-of-two-choices candidate sampling.
    route_seq: AtomicU64,
}

impl ShardedServer {
    /// Spawns `cfg.shards` worker threads, building one server replica per
    /// shard via `factory(shard_id)` inside the worker. Every replica is
    /// rebound onto the shared `registry`, so `serving.*` metrics aggregate
    /// across shards while `sharded.*{shard="i"}` series stay per shard.
    ///
    /// # Panics
    /// Panics when any knob in `cfg` is zero, or when a factory panics
    /// during startup (the spawn surfaces worker construction failures
    /// instead of serving into the void).
    pub fn spawn<M, F>(cfg: ShardConfig, registry: MetricsRegistry, factory: F) -> Self
    where
        M: SequenceRecommender,
        F: Fn(usize) -> ModelServer<M> + Send + Sync + 'static,
    {
        assert!(cfg.shards >= 1, "need at least one shard");
        assert!(cfg.batch_max >= 1, "batch_max must be at least 1");
        assert!(cfg.queue_capacity >= 1, "queue_capacity must be at least 1");
        if cfg.pool_threads != 0 {
            intellitag_tensor::set_pool_threads(cfg.pool_threads);
        }
        let factory = Arc::new(factory);
        let (ready_tx, ready_rx) = mpsc::channel::<String>();
        let mut shards = Vec::with_capacity(cfg.shards);
        let mut workers = Vec::with_capacity(cfg.shards);
        for shard_id in 0..cfg.shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(cfg.queue_capacity);
            let sid = shard_id.to_string();
            let labels = [("shard", sid.as_str())];
            let depth = Arc::new(AtomicI64::new(0));
            let shard = Shard {
                tx,
                depth: Arc::clone(&depth),
                depth_gauge: registry.gauge_labeled("sharded.queue_depth", &labels),
                front_latency: registry.histogram_labeled("sharded.request_us", &labels),
                shed: registry.counter_labeled("sharded.shed", &labels),
            };
            let worker_metrics = WorkerMetrics {
                depth,
                depth_gauge: Arc::clone(&shard.depth_gauge),
                batch_sizes: registry.histogram_labeled("sharded.batch", &labels),
                batch_rows: registry.histogram_labeled("sharded.batch_rows", &labels),
                processed: registry.counter_labeled("sharded.processed", &labels),
            };
            let (factory, registry, ready_tx) =
                (Arc::clone(&factory), registry.clone(), ready_tx.clone());
            let batch_max = cfg.batch_max;
            let handle = std::thread::Builder::new()
                .name(format!("intellitag-shard-{shard_id}"))
                .spawn(move || {
                    let server = factory(shard_id).with_metrics(registry);
                    let _ = ready_tx.send(server.policy());
                    drop(ready_tx);
                    worker_loop(server, rx, worker_metrics, batch_max);
                })
                .expect("spawn shard worker");
            shards.push(shard);
            workers.push(handle);
        }
        drop(ready_tx);
        // Wait for every replica to finish building; a factory panic shows
        // up here as a truncated ready stream.
        let names: Vec<String> = ready_rx.iter().take(cfg.shards).collect();
        assert_eq!(names.len(), cfg.shards, "a shard worker died during startup");
        ShardedServer {
            shards,
            workers,
            policy: names.into_iter().next().unwrap_or_default(),
            shed_total: registry.counter("sharded.shed_total"),
            worker_lost: registry.counter("sharded.error.worker_lost"),
            registry,
            config: cfg,
            route_seq: AtomicU64::new(0),
        }
    }

    /// The tenant's *static* home shard (`tenant % shards`) — where its
    /// requests go under [`RoutingPolicy::TenantHash`]. Under
    /// [`RoutingPolicy::PowerOfTwoChoices`] routing is per-request and
    /// load-aware; see [`ShardedServer::route`].
    pub fn shard_for(&self, tenant: usize) -> usize {
        tenant % self.shards.len()
    }

    /// Picks the shard that will serve this request, per the configured
    /// [`RoutingPolicy`]. Power-of-two-choices samples two distinct
    /// candidates from a deterministic sequence and takes the one with the
    /// smaller live queue depth (ties go to the first candidate).
    pub fn route(&self, tenant: usize) -> usize {
        let n = self.shards.len();
        match self.config.routing {
            RoutingPolicy::TenantHash => tenant % n,
            RoutingPolicy::PowerOfTwoChoices => {
                if n == 1 {
                    return 0;
                }
                let seq = self.route_seq.fetch_add(1, Ordering::Relaxed);
                let h = splitmix64(seq ^ (tenant as u64).rotate_left(32));
                let a = (h % n as u64) as usize;
                let mut b = (splitmix64(h) % (n as u64 - 1)) as usize;
                if b >= a {
                    b += 1; // distinct second choice
                }
                let depth_a = self.shards[a].depth.load(Ordering::Relaxed);
                let depth_b = self.shards[b].depth.load(Ordering::Relaxed);
                if depth_b < depth_a {
                    b
                } else {
                    a
                }
            }
        }
    }

    /// The front's configuration.
    pub fn config(&self) -> &ShardConfig {
        &self.config
    }

    /// Total requests shed across all shards.
    pub fn shed_count(&self) -> u64 {
        self.shed_total.get()
    }

    /// Merged client-observed front latency across every shard's
    /// `sharded.request_us{shard=..}` series.
    pub fn front_latency_snapshot(&self) -> HistogramSnapshot {
        self.registry.merged_histogram("sharded.request_us")
    }

    /// Shuts the front down: closes every queue, drains all accepted
    /// requests, and joins the workers. Dropping the front does the same.
    pub fn shutdown(mut self) {
        self.join_workers();
    }

    fn join_workers(&mut self) {
        self.shards.clear(); // drop senders: workers drain, then exit
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    /// Sends a job to the routed shard, blocking when the queue is full
    /// (backpressure). Returns `false` when the worker is gone.
    fn send(&self, shard: usize, job: Job) -> bool {
        let shard = &self.shards[shard];
        let depth = shard.depth.fetch_add(1, Ordering::Relaxed) + 1;
        shard.depth_gauge.set(depth as f64);
        if shard.tx.send(job).is_err() {
            shard.depth.fetch_sub(1, Ordering::Relaxed);
            self.worker_lost.inc();
            return false;
        }
        true
    }

    /// Sends a job without blocking; sheds on a full queue.
    fn try_send(&self, shard: usize, job: Job) -> Result<(), ShedReason> {
        let shard = &self.shards[shard];
        let depth = shard.depth.fetch_add(1, Ordering::Relaxed) + 1;
        match shard.tx.try_send(job) {
            Ok(()) => {
                shard.depth_gauge.set(depth as f64);
                Ok(())
            }
            Err(e) => {
                shard.depth.fetch_sub(1, Ordering::Relaxed);
                match e {
                    TrySendError::Full(_) => {
                        shard.shed.inc();
                        self.shed_total.inc();
                        Err(ShedReason::Overloaded)
                    }
                    TrySendError::Disconnected(_) => {
                        self.worker_lost.inc();
                        Err(ShedReason::ShuttingDown)
                    }
                }
            }
        }
    }

    /// Completes a round trip: waits for the reply and records the
    /// client-observed latency on the shard that served it.
    fn finish<T>(&self, shard: usize, timer: SpanTimer, reply: Receiver<T>) -> Option<T> {
        match reply.recv() {
            Ok(resp) => {
                self.shards[shard].front_latency.record(timer.elapsed_us());
                Some(resp)
            }
            Err(_) => {
                self.worker_lost.inc();
                None
            }
        }
    }

    /// Handles a typed question through the front, blocking under
    /// backpressure. A lost worker degrades to an empty response (plus the
    /// `sharded.error.worker_lost` counter) — the client never panics.
    pub fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent =
            self.send(shard, Job::Question { tenant, text: question.to_string(), reply: reply_tx });
        let degraded = |timer: SpanTimer| QuestionResponse {
            rq: None,
            answer: None,
            recommended_tags: Vec::new(),
            latency_us: timer.elapsed_us(),
        };
        if !sent {
            return degraded(timer);
        }
        self.finish(shard, timer, reply_rx).unwrap_or_else(|| degraded(timer))
    }

    /// Handles a tag click through the front, blocking under backpressure.
    pub fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        let sent =
            self.send(shard, Job::TagClick { tenant, clicks: clicks.to_vec(), reply: reply_tx });
        let degraded = |timer: SpanTimer| TagClickResponse {
            recommended_tags: Vec::new(),
            predicted_questions: Vec::new(),
            latency_us: timer.elapsed_us(),
        };
        if !sent {
            return degraded(timer);
        }
        self.finish(shard, timer, reply_rx).unwrap_or_else(|| degraded(timer))
    }

    /// Cold-start tags for a tenant, served by the routed shard.
    pub fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        if !self.send(shard, Job::ColdStart { tenant, reply: reply_tx }) {
            return Vec::new();
        }
        self.finish(shard, timer, reply_rx).unwrap_or_default()
    }

    /// Non-blocking question: sheds with [`ShedReason::Overloaded`] instead
    /// of waiting when the shard's queue is full.
    pub fn try_handle_question(
        &self,
        tenant: usize,
        question: &str,
    ) -> Result<QuestionResponse, ShedReason> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.try_send(
            shard,
            Job::Question { tenant, text: question.to_string(), reply: reply_tx },
        )?;
        self.finish(shard, timer, reply_rx).ok_or(ShedReason::ShuttingDown)
    }

    /// Non-blocking tag click: sheds instead of waiting on a full queue.
    pub fn try_handle_tag_click(
        &self,
        tenant: usize,
        clicks: &[usize],
    ) -> Result<TagClickResponse, ShedReason> {
        let timer = SpanTimer::start();
        let shard = self.route(tenant);
        let (reply_tx, reply_rx) = mpsc::channel();
        self.try_send(shard, Job::TagClick { tenant, clicks: clicks.to_vec(), reply: reply_tx })?;
        self.finish(shard, timer, reply_rx).ok_or(ShedReason::ShuttingDown)
    }
}

impl TagService for ShardedServer {
    fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        ShardedServer::handle_question(self, tenant, question)
    }

    fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        ShardedServer::handle_tag_click(self, tenant, clicks)
    }

    fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        ShardedServer::cold_start_tags(self, tenant)
    }

    fn metrics(&self) -> &MetricsRegistry {
        &self.registry
    }

    fn latency_snapshot(&self) -> HistogramSnapshot {
        // The shards' inner servers all publish into the shared registry,
        // so the plain `serving.request_us` histogram already aggregates
        // every shard's server-side latency.
        self.registry.histogram("serving.request_us").snapshot()
    }

    fn policy(&self) -> String {
        self.policy.clone()
    }
}

impl Drop for ShardedServer {
    fn drop(&mut self) {
        self.join_workers();
    }
}

/// The worker loop: block for one request, then drain up to `batch_max - 1`
/// more without blocking, record the batch size, and serve the batch
/// through the shard's replica. Each drain is partitioned: questions and
/// cold starts are answered inline, while the drain's tag clicks ride one
/// batched score call (`ModelServer::handle_tag_click_batch`) — one model
/// forward per drain instead of one per click, with the effective batch
/// size recorded in `sharded.batch_rows{shard=..}`. Batched and serial
/// scoring are bit-exact, so this changes latency only, never answers.
/// Exits when every client handle is gone and the queue is empty —
/// `std::sync::mpsc` delivers buffered messages after sender drop, which is
/// what makes shutdown drain instead of abort.
fn worker_loop<M: SequenceRecommender>(
    server: ModelServer<M>,
    rx: Receiver<Job>,
    metrics: WorkerMetrics,
    batch_max: usize,
) {
    let mut batch = Vec::with_capacity(batch_max);
    while let Ok(first) = rx.recv() {
        batch.push(first);
        while batch.len() < batch_max {
            match rx.try_recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
        }
        let remaining =
            metrics.depth.fetch_sub(batch.len() as i64, Ordering::Relaxed) - batch.len() as i64;
        metrics.depth_gauge.set(remaining.max(0) as f64);
        metrics.batch_sizes.record(batch.len() as u64);
        // `processed` is incremented before each reply is released so that
        // once a client holds a response, the counter already reflects it —
        // registry reconciliation never lags behind the clients' own
        // accounting. A send error means the client gave up on the reply
        // (e.g. a shed-and-retry harness); the request was still served.
        let mut click_reqs: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut click_replies: Vec<mpsc::Sender<TagClickResponse>> = Vec::new();
        for job in batch.drain(..) {
            match job {
                Job::Question { tenant, text, reply } => {
                    let resp = server.handle_question(tenant, &text);
                    metrics.processed.inc();
                    let _ = reply.send(resp);
                }
                Job::TagClick { tenant, clicks, reply } => {
                    click_reqs.push((tenant, clicks));
                    click_replies.push(reply);
                }
                Job::ColdStart { tenant, reply } => {
                    let resp = server.cold_start_tags(tenant);
                    metrics.processed.inc();
                    let _ = reply.send(resp);
                }
            }
        }
        match click_reqs.len() {
            0 => {}
            1 => {
                // A lone click skips the batch plumbing — with `batch_max`
                // of 1 this is exactly the pre-batching worker.
                metrics.batch_rows.record(1);
                let (tenant, clicks) = click_reqs.pop().expect("one click request");
                let resp = server.handle_tag_click(tenant, &clicks);
                metrics.processed.inc();
                let _ = click_replies[0].send(resp);
            }
            rows => {
                metrics.batch_rows.record(rows as u64);
                let responses = server.handle_tag_click_batch(&click_reqs);
                click_reqs.clear();
                for (resp, reply) in responses.into_iter().zip(&click_replies) {
                    metrics.processed.inc();
                    let _ = reply.send(resp);
                }
            }
        }
        click_replies.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_baselines::Popularity;
    use intellitag_search::KbWarehouse;

    fn replica() -> ModelServer<Popularity> {
        let mut kb = KbWarehouse::new();
        kb.add_pair("how to change password", "settings > security", 0);
        kb.add_pair("how to apply for etc card", "apply in the etc menu", 0);
        kb.add_pair("where to cancel the order", "orders > cancel", 1);
        let tag_texts = vec![
            "change".into(),
            "password".into(),
            "apply".into(),
            "etc card".into(),
            "cancel".into(),
            "order".into(),
        ];
        let rq_tags = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let tenant_tags = vec![vec![0, 1, 2, 3], vec![4, 5]];
        let clicks = vec![5, 9, 3, 7, 2, 4];
        let model = Popularity::from_counts(&clicks);
        ModelServer::new(model, kb, tag_texts, rq_tags, tenant_tags, clicks)
    }

    fn front(cfg: ShardConfig) -> (ShardedServer, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        let front = ShardedServer::spawn(cfg, registry.clone(), |_shard| replica());
        (front, registry)
    }

    #[test]
    fn front_matches_single_process_server() {
        let single = replica();
        let (front, _) = front(ShardConfig { shards: 2, ..Default::default() });
        for tenant in 0..2 {
            let q = front.handle_question(tenant, "how to change password");
            assert!(q.same_content(&single.handle_question(tenant, "how to change password")));
            let c = front.handle_tag_click(tenant, &[4 * tenant]);
            assert!(c.same_content(&single.handle_tag_click(tenant, &[4 * tenant])));
            assert_eq!(front.cold_start_tags(tenant), single.cold_start_tags(tenant));
        }
    }

    #[test]
    fn per_shard_series_land_in_shared_registry() {
        let (front, registry) = front(ShardConfig { shards: 2, ..Default::default() });
        let _ = front.handle_tag_click(0, &[0]); // shard 0
        let _ = front.handle_tag_click(1, &[4]); // shard 1
        for shard in ["0", "1"] {
            let h = registry.histogram_labeled("sharded.request_us", &[("shard", shard)]);
            assert_eq!(h.count(), 1, "shard {shard} front latency not recorded");
        }
        assert_eq!(front.front_latency_snapshot().count, 2);
        // Inner servers aggregate into the plain serving histograms.
        assert_eq!(registry.histogram("serving.request_us").count(), 2);
        let text = registry.render_prometheus();
        assert!(text.contains("sharded_request_us_count{shard=\"0\"} 1"), "{text}");
        assert!(text.contains("sharded_request_us_count{shard=\"1\"} 1"), "{text}");
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        // One slow shard with a deep queue: enqueue from a helper thread,
        // then drop the front while requests are still queued — every reply
        // channel must still resolve.
        let (front, registry) = front(ShardConfig {
            shards: 1,
            batch_max: 2,
            queue_capacity: 64,
            ..Default::default()
        });
        let n = 32;
        let replies: Vec<_> = (0..n)
            .map(|i| {
                let (tx, rx) = mpsc::channel();
                front
                    .try_send(0, Job::TagClick { tenant: 0, clicks: vec![i % 4], reply: tx })
                    .expect("queue has room");
                rx
            })
            .collect();
        front.shutdown();
        for rx in replies {
            let resp = rx.recv().expect("request drained, not dropped");
            assert!(!resp.recommended_tags.is_empty() || !resp.predicted_questions.is_empty());
        }
        assert_eq!(
            registry.counter_labeled("sharded.processed", &[("shard", "0")]).get(),
            n as u64
        );
    }

    #[test]
    fn batching_is_observable_and_bounded() {
        let (front, registry) = front(ShardConfig {
            shards: 1,
            batch_max: 4,
            queue_capacity: 64,
            ..Default::default()
        });
        for _ in 0..3 {
            let _ = front.handle_tag_click(0, &[0]);
        }
        front.shutdown();
        let batches = registry.histogram_labeled("sharded.batch", &[("shard", "0")]).snapshot();
        assert!(batches.count >= 1);
        assert!(batches.max <= 4, "batch exceeded batch_max: {}", batches.max);
    }

    /// Runs one `worker_loop` to completion over a preloaded queue on the
    /// current thread — deterministic drain composition, no racing worker.
    fn run_worker(jobs: Vec<Job>, batch_max: usize) -> MetricsRegistry {
        let registry = MetricsRegistry::new();
        let server = replica().with_metrics(registry.clone());
        let (tx, rx) = mpsc::sync_channel(jobs.len().max(1));
        for job in jobs {
            tx.try_send(job).expect("preload fits the queue");
        }
        drop(tx);
        let labels = [("shard", "0")];
        let metrics = WorkerMetrics {
            depth: Arc::new(AtomicI64::new(0)),
            depth_gauge: registry.gauge_labeled("sharded.queue_depth", &labels),
            batch_sizes: registry.histogram_labeled("sharded.batch", &labels),
            batch_rows: registry.histogram_labeled("sharded.batch_rows", &labels),
            processed: registry.counter_labeled("sharded.processed", &labels),
        };
        worker_loop(server, rx, metrics, batch_max);
        registry
    }

    #[test]
    fn full_drain_scores_clicks_as_one_batch() {
        // A queue preloaded with 5 clicks drains as one batch of 5: one
        // batch_rows record, answers identical to a single-process server.
        let single = replica();
        let clicks: Vec<Vec<usize>> = vec![vec![0], vec![1, 0], vec![2], vec![0], vec![3, 2]];
        let (jobs, replies): (Vec<Job>, Vec<_>) = clicks
            .iter()
            .map(|c| {
                let (tx, rx) = mpsc::channel();
                (Job::TagClick { tenant: 0, clicks: c.clone(), reply: tx }, rx)
            })
            .unzip();
        let registry = run_worker(jobs, 8);
        for (c, rx) in clicks.iter().zip(replies) {
            let resp = rx.recv().expect("drained");
            assert!(resp.same_content(&single.handle_tag_click(0, c)), "clicks {c:?} diverged");
        }
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert_eq!(rows.count, 1, "5 preloaded clicks must drain as one batch");
        assert_eq!(rows.max, 5);
        assert_eq!(registry.counter_labeled("sharded.processed", &[("shard", "0")]).get(), 5);
        // One batched score call served 4 unique click histories; stage
        // accounting stays per-request.
        assert_eq!(registry.histogram("serving.stage.score_us").count(), 5);
    }

    #[test]
    fn all_question_drain_records_no_batch_rows() {
        // A drain that is 100% questions has an empty click partition: the
        // batched path must not run (no batch_rows samples, no empty-batch
        // score call) and every question still answers.
        let single = replica();
        let questions = ["how to change password", "how to apply for etc card"];
        let (jobs, replies): (Vec<Job>, Vec<_>) = questions
            .iter()
            .map(|q| {
                let (tx, rx) = mpsc::channel();
                (Job::Question { tenant: 0, text: q.to_string(), reply: tx }, rx)
            })
            .unzip();
        let registry = run_worker(jobs, 8);
        for (q, rx) in questions.iter().zip(replies) {
            assert!(rx.recv().expect("drained").same_content(&single.handle_question(0, q)));
        }
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert_eq!(rows.count, 0, "question-only drains must not tick batch_rows");
        assert_eq!(registry.histogram("serving.stage.score_us").count(), 0);
    }

    #[test]
    fn batch_max_one_disables_batching() {
        let single = replica();
        let (front, registry) = front(ShardConfig {
            shards: 1,
            batch_max: 1,
            queue_capacity: 64,
            ..Default::default()
        });
        for i in 0..6usize {
            let c = front.handle_tag_click(0, &[i % 4]);
            assert!(c.same_content(&single.handle_tag_click(0, &[i % 4])));
        }
        front.shutdown();
        let batches = registry.histogram_labeled("sharded.batch", &[("shard", "0")]).snapshot();
        assert_eq!(batches.max, 1, "batch_max=1 must never drain more than one");
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]).snapshot();
        assert!(rows.count >= 1);
        assert_eq!(rows.max, 1);
    }

    #[test]
    fn mixed_drain_with_degraded_and_oversized_requests() {
        // Force one drain holding questions, cold starts, valid clicks,
        // degraded clicks, and an oversized click history — the partitioned
        // worker must answer each exactly like the single-process server.
        let single = replica();
        let (front, _) = front(ShardConfig {
            shards: 1,
            batch_max: 16,
            queue_capacity: 64,
            ..Default::default()
        });
        let oversized: Vec<usize> = (0..40).map(|i| i % 4).collect();
        let (q_tx, q_rx) = mpsc::channel();
        front
            .try_send(0, Job::Question { tenant: 0, text: "cancel the order".into(), reply: q_tx })
            .unwrap();
        let (cs_tx, cs_rx) = mpsc::channel();
        front.try_send(0, Job::ColdStart { tenant: 1, reply: cs_tx }).unwrap();
        let click_cases: Vec<(usize, Vec<usize>)> = vec![
            (0, vec![0, 1]),
            (0, vec![]),    // degraded: empty
            (99, vec![0]),  // degraded: bad tenant
            (0, vec![999]), // degraded: bad tag
            (0, oversized.clone()),
            (1, vec![4, 5]),
        ];
        let click_replies: Vec<_> = click_cases
            .iter()
            .map(|(tenant, clicks)| {
                let (tx, rx) = mpsc::channel();
                front
                    .try_send(
                        0,
                        Job::TagClick { tenant: *tenant, clicks: clicks.clone(), reply: tx },
                    )
                    .unwrap();
                rx
            })
            .collect();
        assert!(q_rx.recv().unwrap().same_content(&single.handle_question(0, "cancel the order")));
        assert_eq!(cs_rx.recv().unwrap(), single.cold_start_tags(1));
        for ((tenant, clicks), rx) in click_cases.iter().zip(click_replies) {
            let resp = rx.recv().expect("drained");
            assert!(
                resp.same_content(&single.handle_tag_click(*tenant, clicks)),
                "tenant {tenant} clicks {clicks:?} diverged"
            );
        }
        front.shutdown();
    }

    #[test]
    fn policy_and_service_trait_surface() {
        let (front, _) = front(ShardConfig { shards: 1, ..Default::default() });
        assert_eq!(TagService::policy(&front), replica().policy());
        let svc: &dyn TagService = &front;
        let r = svc.handle_question(0, "how to change password");
        assert_eq!(r.rq, Some(0));
        assert_eq!(svc.latency_snapshot().count, 1);
    }

    #[test]
    fn p2c_keeps_parity_and_spreads_one_hot_tenant() {
        let single = replica();
        let (front, registry) = front(ShardConfig {
            shards: 2,
            routing: RoutingPolicy::PowerOfTwoChoices,
            ..Default::default()
        });
        // One hot tenant: under TenantHash every request would pin shard 0;
        // under p2c the deterministic candidate sampling spreads them.
        for i in 0..32u64 {
            let c = front.handle_tag_click(0, &[(i % 4) as usize]);
            assert!(c.same_content(&single.handle_tag_click(0, &[(i % 4) as usize])));
        }
        let q = front.handle_question(0, "how to change password");
        assert!(q.same_content(&single.handle_question(0, "how to change password")));
        assert_eq!(front.cold_start_tags(0), single.cold_start_tags(0));
        for shard in ["0", "1"] {
            let h = registry.histogram_labeled("sharded.request_us", &[("shard", shard)]);
            assert!(h.count() > 0, "p2c never routed to shard {shard}");
        }
    }

    #[test]
    fn p2c_prefers_the_less_loaded_shard() {
        let (front, _) = front(ShardConfig {
            shards: 2,
            routing: RoutingPolicy::PowerOfTwoChoices,
            ..Default::default()
        });
        // Make shard 0 look deeply backlogged; with only two shards the
        // candidate pair is always {0, 1}, so every route must pick 1.
        front.shards[0].depth.store(1_000, Ordering::Relaxed);
        for tenant in 0..8 {
            for _ in 0..8 {
                assert_eq!(front.route(tenant), 1);
            }
        }
        front.shards[0].depth.store(0, Ordering::Relaxed);
    }

    #[test]
    fn pool_threads_knob_applies_globally_and_keeps_parity() {
        // `pool_threads` sets the process-global tensor pool; answers must
        // not change (pool size is a pure perf knob — kernels are pinned
        // bit-identical across sizes by the tensor/nn parity suites).
        let single = replica();
        let (pooled, _) = front(ShardConfig { shards: 2, pool_threads: 2, ..Default::default() });
        assert_eq!(intellitag_tensor::pool_threads(), 2);
        for tenant in 0..2 {
            let c = pooled.handle_tag_click(tenant, &[4 * tenant, 4 * tenant + 1]);
            assert!(c.same_content(&single.handle_tag_click(tenant, &[4 * tenant, 4 * tenant + 1])));
        }
        pooled.shutdown();
        intellitag_tensor::set_pool_threads(0);
        // `pool_threads: 0` leaves the global setting untouched.
        let before = intellitag_tensor::pool_threads();
        let (front2, _) = front(ShardConfig { shards: 1, ..Default::default() });
        assert_eq!(intellitag_tensor::pool_threads(), before);
        front2.shutdown();
    }

    #[test]
    fn tenant_hash_routing_is_static() {
        let (front, _) = front(ShardConfig { shards: 2, ..Default::default() });
        for tenant in 0..8 {
            assert_eq!(front.route(tenant), tenant % 2);
            assert_eq!(front.route(tenant), front.shard_for(tenant));
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_is_rejected() {
        let registry = MetricsRegistry::new();
        let _ =
            ShardedServer::spawn(ShardConfig { shards: 0, ..Default::default() }, registry, |_| {
                replica()
            });
    }
}
