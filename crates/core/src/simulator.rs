//! Online A/B simulation (paper §VI-F): traffic buckets replaying the same
//! latent-intent user population against different recommenders, measuring
//! daily macro-averaged CTR (Fig. 7), HIR and response latency (Table VI).
//!
//! The simulator publishes rolling `online.*` gauges (macro/micro CTR, HIR,
//! sessions) into the server's metrics registry after every simulated day,
//! so a dashboard scraping the registry sees the same series as Fig. 7.

use intellitag_datagen::{UserModel, World};
use intellitag_eval::{CtrAccumulator, HirAccumulator};
use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::serving::TagService;

/// Simulation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of simulated days (the paper monitors 10).
    pub days: usize,
    /// Sessions per day in this traffic bucket.
    pub sessions_per_day: usize,
    /// Maximum tag-recommendation rounds before the user gives up.
    pub max_steps: usize,
    /// How many predicted questions the user scans (top-k acceptance).
    pub accept_top_k: usize,
    /// RNG seed; use the same seed across buckets so they face the same
    /// intent stream (proper A/B bucketing).
    pub seed: u64,
    /// Whether sessions open with a typed question (the paper's Fig. 1
    /// flow: question → answer + recommended tags → clicks). When false,
    /// sessions start from cold-start tags only.
    pub ask_question_first: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            days: 10,
            sessions_per_day: 300,
            max_steps: 4,
            accept_top_k: 3,
            seed: 0,
            ask_question_first: true,
        }
    }
}

/// One day's CTR numbers.
#[derive(Debug, Clone, Copy)]
pub struct DayMetrics {
    /// Day index (0-based).
    pub day: usize,
    /// Macro-averaged (per-tenant) CTR — the paper's Fig. 7 metric.
    pub macro_ctr: f64,
    /// Micro-averaged CTR.
    pub micro_ctr: f64,
}

/// Full outcome of one policy's bucket.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Policy (model) name.
    pub policy: String,
    /// Per-day CTR series (Fig. 7).
    pub daily: Vec<DayMetrics>,
    /// Human intervention rate over the whole run (Table VI).
    pub hir: f64,
    /// Mean per-request model-server latency in ms (Table VI).
    pub mean_latency_ms: f64,
    /// 99th-percentile latency in ms.
    pub p99_latency_ms: f64,
    /// Sessions simulated.
    pub sessions: u64,
}

impl SimOutcome {
    /// Mean macro CTR across days.
    pub fn mean_macro_ctr(&self) -> f64 {
        if self.daily.is_empty() {
            return 0.0;
        }
        self.daily.iter().map(|d| d.macro_ctr).sum::<f64>() / self.daily.len() as f64
    }
}

/// Runs one traffic bucket of the A/B test.
///
/// Generic over [`TagService`], so the same bucket can be driven through
/// the single-process [`crate::ModelServer`] or the sharded
/// [`crate::ShardedServer`] front — the parity guarantee makes the two
/// produce identical CTR/HIR series for the same seed.
pub fn simulate_online<S: TagService>(
    server: &S,
    world: &World,
    user: &UserModel,
    cfg: &SimConfig,
) -> SimOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let tenant_dist =
        WeightedIndex::new(world.tenants.iter().map(|t| t.weight)).expect("tenant weights");

    let mut daily = Vec::with_capacity(cfg.days);
    let mut hir = HirAccumulator::new();
    for day in 0..cfg.days {
        let mut ctr = CtrAccumulator::new();
        for _ in 0..cfg.sessions_per_day {
            let tenant = loop {
                let t = tenant_dist.sample(&mut rng);
                if !world.rqs_by_tenant[t].is_empty() {
                    break t;
                }
            };
            let intent = *world.rqs_by_tenant[tenant].choose(&mut rng).expect("rqs");
            let solved = run_session(server, world, user, tenant, intent, cfg, &mut ctr, &mut rng);
            hir.record(!solved);
        }
        // Rolling online gauges: the day's CTR and the run-so-far HIR land
        // in the shared registry right after each simulated day.
        ctr.publish(server.metrics(), "online");
        hir.publish(server.metrics(), "online");
        server.metrics().gauge("online.day").set((day + 1) as f64);
        daily.push(DayMetrics { day, macro_ctr: ctr.macro_ctr(), micro_ctr: ctr.micro_ctr() });
    }

    // Whole-run latency from the server's bounded histogram (exact mean,
    // bucket-resolution p99) — no unbounded raw-sample log required.
    let lat = server.latency_snapshot();
    SimOutcome {
        policy: server.policy(),
        daily,
        hir: hir.hir(),
        mean_latency_ms: lat.mean() / 1000.0,
        p99_latency_ms: lat.quantile(0.99) as f64 / 1000.0,
        sessions: hir.sessions(),
    }
}

/// One session (Fig. 1): typed question → answer + tags → clicks →
/// predicted questions, until the intent surfaces (solved) or the user
/// bails (human intervention).
#[allow(clippy::too_many_arguments)]
fn run_session<S: TagService>(
    server: &S,
    world: &World,
    user: &UserModel,
    tenant: usize,
    intent: usize,
    cfg: &SimConfig,
    ctr: &mut CtrAccumulator,
    rng: &mut StdRng,
) -> bool {
    let mut clicks: Vec<usize> = Vec::new();
    // Fig. 1 flow: the session opens with the user's typed question. A good
    // enough match solves the session outright; otherwise the matched RQ's
    // asc tags seed the tag-recommendation loop (§V-B).
    let mut shown = if cfg.ask_question_first {
        let question = world.paraphrase_question(intent, rng);
        let resp = server.handle_question(tenant, &question);
        if let Some(rq) = resp.rq {
            if user.accepts_equivalent(world, intent, &[rq], 1) {
                return true;
            }
        }
        if resp.recommended_tags.is_empty() {
            server.cold_start_tags(tenant)
        } else {
            resp.recommended_tags
        }
    } else {
        server.cold_start_tags(tenant)
    };
    for _ in 0..cfg.max_steps {
        if shown.is_empty() {
            break;
        }
        let choice = user.click(world, intent, &shown, &clicks, rng);
        // CTR bookkeeping: every shown tag is an impression; the chosen one
        // (if any) is the click.
        for (pos, _) in shown.iter().enumerate() {
            ctr.record(tenant, Some(pos) == choice);
        }
        let Some(pos) = choice else {
            return false; // user gave up scanning -> human intervention
        };
        clicks.push(shown[pos]);
        let resp = server.handle_tag_click(tenant, &clicks);
        if user.accepts_equivalent(world, intent, &resp.predicted_questions, cfg.accept_top_k) {
            return true;
        }
        shown = resp.recommended_tags;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving::ModelServer;
    use intellitag_baselines::Popularity;
    use intellitag_datagen::WorldConfig;

    fn make_server(world: &World) -> ModelServer<Popularity> {
        let kb = world.build_kb();
        let tag_texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
        let rq_tags: Vec<Vec<usize>> = world.rqs.iter().map(|r| r.tags.clone()).collect();
        let tenant_tags: Vec<Vec<usize>> =
            (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect();
        let counts = world.click_frequency();
        let sessions: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        let model = Popularity::from_sessions(&sessions, world.tags.len());
        ModelServer::new(model, kb, tag_texts, rq_tags, tenant_tags, counts)
    }

    #[test]
    fn simulation_produces_sane_metrics() {
        let world = World::generate(WorldConfig::tiny(9));
        let server = make_server(&world);
        let cfg = SimConfig { days: 3, sessions_per_day: 40, ..Default::default() };
        let out = simulate_online(&server, &world, &UserModel::default(), &cfg);
        assert_eq!(out.daily.len(), 3);
        assert_eq!(out.sessions, 120);
        for d in &out.daily {
            assert!((0.0..=1.0).contains(&d.macro_ctr));
            assert!((0.0..=1.0).contains(&d.micro_ctr));
        }
        assert!((0.0..=1.0).contains(&out.hir));
        assert!(out.mean_latency_ms >= 0.0);
        assert!(out.p99_latency_ms >= out.mean_latency_ms / 10.0);
    }

    #[test]
    fn same_seed_same_intent_stream() {
        let world = World::generate(WorldConfig::tiny(9));
        let server = make_server(&world);
        let cfg = SimConfig { days: 2, sessions_per_day: 30, seed: 5, ..Default::default() };
        let a = simulate_online(&server, &world, &UserModel::default(), &cfg);
        let b = simulate_online(&server, &world, &UserModel::default(), &cfg);
        assert_eq!(a.hir, b.hir);
        for (x, y) in a.daily.iter().zip(&b.daily) {
            assert_eq!(x.macro_ctr, y.macro_ctr);
        }
    }

    #[test]
    fn sharded_front_reproduces_single_process_series() {
        use crate::sharded::{ShardConfig, ShardedServer};
        use intellitag_obs::MetricsRegistry;

        let world = World::generate(WorldConfig::tiny(9));
        let cfg = SimConfig { days: 2, sessions_per_day: 30, seed: 7, ..Default::default() };
        let single = make_server(&world);
        let a = simulate_online(&single, &world, &UserModel::default(), &cfg);

        // The factory captures only cloneable server data, rebuilding one
        // full replica inside each worker thread.
        let kb = world.build_kb();
        let tag_texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
        let rq_tags: Vec<Vec<usize>> = world.rqs.iter().map(|r| r.tags.clone()).collect();
        let tenant_tags: Vec<Vec<usize>> =
            (0..world.tenants.len()).map(|e| world.tenant_tag_pool(e)).collect();
        let counts = world.click_frequency();
        let sessions: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        let n_tags = world.tags.len();
        let front = ShardedServer::spawn(
            ShardConfig { shards: 3, batch_max: 4, ..Default::default() },
            MetricsRegistry::new(),
            move |_shard| {
                ModelServer::new(
                    Popularity::from_sessions(&sessions, n_tags),
                    kb.clone(),
                    tag_texts.clone(),
                    rq_tags.clone(),
                    tenant_tags.clone(),
                    counts.clone(),
                )
            },
        );
        let b = simulate_online(&front, &world, &UserModel::default(), &cfg);
        // Same seed, same responses: the whole observable series coincides.
        assert_eq!(a.policy, b.policy);
        assert_eq!(a.hir, b.hir);
        assert_eq!(a.sessions, b.sessions);
        for (x, y) in a.daily.iter().zip(&b.daily) {
            assert_eq!(x.macro_ctr, y.macro_ctr);
            assert_eq!(x.micro_ctr, y.micro_ctr);
        }
        front.shutdown();
    }

    #[test]
    fn simulation_publishes_rolling_gauges() {
        let world = World::generate(WorldConfig::tiny(9));
        let server = make_server(&world);
        let cfg = SimConfig { days: 2, sessions_per_day: 20, ..Default::default() };
        let out = simulate_online(&server, &world, &UserModel::default(), &cfg);
        let m = server.metrics();
        assert_eq!(m.gauge("online.day").get(), 2.0);
        assert_eq!(m.gauge("online.hir").get(), out.hir);
        assert_eq!(m.gauge("online.sessions").get(), out.sessions as f64);
        let last = out.daily.last().unwrap();
        assert_eq!(m.gauge("online.macro_ctr").get(), last.macro_ctr);
        assert_eq!(m.gauge("online.micro_ctr").get(), last.micro_ctr);
    }

    #[test]
    fn irrelevant_recommendations_drive_hir_up() {
        let world = World::generate(WorldConfig::tiny(9));
        let server = make_server(&world);
        // A user who clicks nothing can never be solved (question-first off
        // so the Q&A path cannot solve the session either).
        let blind = UserModel { p_intent: 0.0, p_topic: 0.0, p_other: 0.0, position_bias: false };
        let cfg = SimConfig {
            days: 1,
            sessions_per_day: 25,
            ask_question_first: false,
            ..Default::default()
        };
        let out = simulate_online(&server, &world, &blind, &cfg);
        assert_eq!(out.hir, 1.0);
        assert_eq!(out.mean_macro_ctr(), 0.0);
    }
}
