//! The inner graph-based layers of the TagRec model: neighbor attention
//! (paper Eq. 4-5) followed by metapath attention (Eq. 6-7), producing the
//! structural tag embedding `z_t` consumed by the sequential layers.

use intellitag_graph::{metapath_neighbors, HetGraph, ALL_METAPATHS};
use intellitag_nn::{Embedding, Linear};
use intellitag_tensor::{Matrix, Param, ParamSet, Tape, Tensor};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Negative slope used by the paper's LeakyReLU on attention scores.
const LEAKY_SLOPE: f32 = 0.2;

/// The shared graph layers: one set of parameters reused for every tag
/// (paper §IV-D: "the trainable parameters in the inner graph-based layer
/// are shared").
pub struct GraphLayers {
    /// Tag feature table `x_t`, initialized from text features (§VI-A3) and
    /// fine-tuned when training end-to-end.
    features: Embedding,
    /// Neighbor-attention weights `W_n`, per metapath, per head (`2d x 1`).
    w_n: Vec<Vec<Param>>,
    /// Metapath-attention parameters (Eq. 6): `W_p (Md x Md)`, `b_p`, `v_p`.
    w_p: Param,
    b_p: Param,
    v_p: Param,
    /// Final linear fusion (Eq. 7): `Md -> d`.
    out: Linear,
    /// Precomputed capped neighbor lists: `[tag][metapath]`.
    neighbors: Vec<[Vec<usize>; 4]>,
    dim: usize,
    heads: usize,
    use_neighbor_attention: bool,
    use_metapath_attention: bool,
}

impl GraphLayers {
    /// Builds the layers over a frozen heterogeneous graph.
    ///
    /// * `init_features` — `num_tags x dim` initial tag features (text-derived).
    /// * `neighbor_cap` — sampled neighborhood size per metapath.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        graph: &HetGraph,
        init_features: Matrix,
        heads: usize,
        neighbor_cap: usize,
        use_neighbor_attention: bool,
        use_metapath_attention: bool,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let num_tags = graph.num_tags();
        assert_eq!(init_features.rows(), num_tags, "one feature row per tag");
        let dim = init_features.cols();
        let md = heads * dim;

        let features =
            Embedding::from_param(params.register(Param::new("tagrec.features", init_features)));

        let mut w_n = Vec::with_capacity(4);
        for mp in ALL_METAPATHS {
            let mut per_head = Vec::with_capacity(heads);
            for h in 0..heads {
                per_head.push(params.register(Param::xavier(
                    format!("tagrec.wn.{}.{h}", mp.name()),
                    2 * dim,
                    1,
                    rng,
                )));
            }
            w_n.push(per_head);
        }

        let w_p = params.register(Param::xavier("tagrec.wp", md, md, rng));
        let b_p = params.register(Param::zeros("tagrec.bp", 1, md));
        let v_p = params.register(Param::xavier("tagrec.vp", md, 1, rng));
        let out = Linear::new("tagrec.fuse", md, dim, true, params, rng);

        // Precompute capped neighborhoods once; sampling happens here (with
        // the model seed) rather than per step, which keeps evaluation
        // deterministic and mirrors the offline-precomputation deployment.
        // Following GAT practice, every neighborhood includes the tag itself
        // (self-loop): without it, same-topic tags share near-identical
        // neighborhoods and their embeddings collapse together.
        let mut neighbors = Vec::with_capacity(num_tags);
        for t in 0..num_tags {
            let mut per_mp: [Vec<usize>; 4] = Default::default();
            for (i, mp) in ALL_METAPATHS.into_iter().enumerate() {
                let mut pool = metapath_neighbors(graph, t, mp, neighbor_cap * 4);
                if pool.len() > neighbor_cap {
                    pool.shuffle(rng);
                    pool.truncate(neighbor_cap);
                }
                pool.insert(0, t);
                per_mp[i] = pool;
            }
            neighbors.push(per_mp);
        }

        GraphLayers {
            features,
            w_n,
            w_p,
            b_p,
            v_p,
            out,
            neighbors,
            dim,
            heads,
            use_neighbor_attention,
            use_metapath_attention,
        }
    }

    /// Embedding width `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of tags covered.
    pub fn num_tags(&self) -> usize {
        self.neighbors.len()
    }

    /// Aggregates one metapath's neighborhood of `t` with multi-head
    /// neighbor attention (Eq. 4-5), returning a `1 x (M*d)` tensor.
    fn aggregate_metapath(&self, tape: &Tape, t: usize, mp_index: usize) -> Tensor {
        let nbrs = &self.neighbors[t][mp_index];
        // An isolated tag aggregates itself (self-loop fallback), keeping the
        // output well-defined for cold tags.
        let nbr_ids: &[usize] = if nbrs.is_empty() { std::slice::from_ref(&t) } else { nbrs };
        let k = nbr_ids.len();
        let x_t = self.features.forward(tape, &[t]); // 1 x d
        let x_nb = self.features.forward(tape, nbr_ids); // k x d

        if !self.use_neighbor_attention {
            // Ablation: uniform aggregation, replicated across heads.
            let mean = x_nb.mean_rows().sigmoid(); // 1 x d
            let copies: Vec<Tensor> = (0..self.heads).map(|_| mean.clone()).collect();
            return Tensor::concat_cols(&copies);
        }

        let pairs = Tensor::concat_cols(&[x_t.repeat_rows(k), x_nb.clone()]); // k x 2d
        let mut head_outputs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let w = tape.param(&self.w_n[mp_index][h]); // 2d x 1
            let scores = pairs.matmul(&w).leaky_relu(LEAKY_SLOPE).transpose(); // 1 x k
            let alpha = scores.softmax_rows();
            head_outputs.push(alpha.matmul(&x_nb).sigmoid()); // 1 x d
        }
        Tensor::concat_cols(&head_outputs) // 1 x M*d
    }

    /// Computes the structural embedding `z_t` (Eq. 7) of one tag.
    pub fn embed_tag(&self, tape: &Tape, t: usize) -> Tensor {
        let h: Vec<Tensor> = (0..4).map(|mp| self.aggregate_metapath(tape, t, mp)).collect();

        let weights = if self.use_metapath_attention {
            // β_ρ = v_p^T tanh(W_p h_ρ + b_p), softmaxed over ρ.
            let betas: Vec<Tensor> = h
                .iter()
                .map(|h_mp| {
                    h_mp.matmul(&tape.param(&self.w_p))
                        .add_row_broadcast(&tape.param(&self.b_p))
                        .tanh()
                        .matmul(&tape.param(&self.v_p)) // 1 x 1
                })
                .collect();
            Tensor::concat_cols(&betas).softmax_rows() // 1 x 4
        } else {
            tape.constant(Matrix::full(1, 4, 0.25))
        };

        let stacked = Tensor::concat_rows(&h); // 4 x M*d
        let fused = weights.matmul(&stacked); // 1 x M*d
                                              // Residual from the raw tag features: the paper starts from strong
                                              // pretrained 100-d text vectors, which keep tags separable through
                                              // the sigmoid aggregation; with from-scratch features the residual
                                              // restores that direct path (gradients reach x_t without passing
                                              // through the attention stack).
        let x_t = self.features.forward(tape, &[t]);
        self.out.forward(tape, &fused).add(&x_t) // 1 x d
    }

    /// Embeds a list of tags into a `len x d` tensor (shared parameters).
    pub fn embed_tags(&self, tape: &Tape, tags: &[usize]) -> Tensor {
        assert!(!tags.is_empty(), "embed_tags needs at least one tag");
        let rows: Vec<Tensor> = tags.iter().map(|&t| self.embed_tag(tape, t)).collect();
        Tensor::concat_rows(&rows)
    }

    /// Precomputes `z_t` for every tag in inference mode — exactly what the
    /// deployed system uploads to the online model servers (§V-B).
    pub fn precompute_all(&self) -> Matrix {
        let tape = Tape::new();
        let mut out = Matrix::zeros(self.num_tags(), self.dim);
        for t in 0..self.num_tags() {
            let z = self.embed_tag(&tape, t).value();
            out.row_slice_mut(t).copy_from_slice(z.row_slice(0));
        }
        out
    }

    /// Neighbor-attention weights of `t` along a metapath, head-averaged —
    /// the data behind the paper's Fig. 5a heat map.
    pub fn neighbor_attention(&self, t: usize, mp_index: usize) -> Vec<(usize, f32)> {
        let nbrs = &self.neighbors[t][mp_index];
        if nbrs.is_empty() || !self.use_neighbor_attention {
            return nbrs.iter().map(|&n| (n, 1.0 / nbrs.len().max(1) as f32)).collect();
        }
        let tape = Tape::new();
        let k = nbrs.len();
        let x_t = self.features.forward(&tape, &[t]);
        let x_nb = self.features.forward(&tape, nbrs);
        let pairs = Tensor::concat_cols(&[x_t.repeat_rows(k), x_nb]);
        let mut avg = vec![0.0f32; k];
        for h in 0..self.heads {
            let w = tape.param(&self.w_n[mp_index][h]);
            let alpha = pairs.matmul(&w).leaky_relu(LEAKY_SLOPE).transpose().softmax_rows().value();
            for (a, &v) in avg.iter_mut().zip(alpha.row_slice(0)) {
                *a += v / self.heads as f32;
            }
        }
        nbrs.iter().copied().zip(avg).collect()
    }

    /// Metapath-attention distribution of `t` over `{TT, TQT, TQQT, TQEQT}`
    /// — the data behind Fig. 5b.
    pub fn metapath_attention(&self, t: usize) -> [f32; 4] {
        if !self.use_metapath_attention {
            return [0.25; 4];
        }
        let tape = Tape::new();
        let betas: Vec<Tensor> = (0..4)
            .map(|mp| {
                let h = self.aggregate_metapath(&tape, t, mp);
                h.matmul(&tape.param(&self.w_p))
                    .add_row_broadcast(&tape.param(&self.b_p))
                    .tanh()
                    .matmul(&tape.param(&self.v_p))
            })
            .collect();
        let w = Tensor::concat_cols(&betas).softmax_rows().value();
        let mut out = [0.0; 4];
        out.copy_from_slice(&w.row_slice(0)[..4]);
        out
    }

    /// The precomputed (capped) neighbor list used for `t` along a metapath.
    pub fn neighbor_list(&self, t: usize, mp_index: usize) -> &[usize] {
        &self.neighbors[t][mp_index]
    }

    /// Direct access to the feature table parameter (used by the
    /// step-by-step pretraining objective).
    pub fn feature_param(&self) -> &Param {
        self.features.param()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_graph::HetGraphBuilder;

    fn small_graph() -> HetGraph {
        let mut b = HetGraphBuilder::new(5, 4, 2);
        b.add_asc(0, 0).add_asc(1, 0).add_asc(2, 1).add_asc(3, 2).add_asc(4, 3);
        b.add_clk(0, 1).add_clk(1, 2).add_clk(2, 3);
        b.add_cst(0, 1).add_cst(2, 3);
        b.set_tenant(0, 0).set_tenant(1, 0).set_tenant(2, 1).set_tenant(3, 1);
        b.build()
    }

    fn layers(use_na: bool, use_ma: bool) -> (GraphLayers, ParamSet) {
        let g = small_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = ParamSet::new(1e-3);
        let feats = Matrix::uniform(5, 8, 0.5, &mut rng);
        let gl = GraphLayers::new(&g, feats, 2, 4, use_na, use_ma, &mut params, &mut rng);
        (gl, params)
    }

    #[test]
    fn embed_shapes() {
        let (gl, _) = layers(true, true);
        let tape = Tape::new();
        assert_eq!(gl.embed_tag(&tape, 0).shape(), (1, 8));
        assert_eq!(gl.embed_tags(&tape, &[0, 3, 3]).shape(), (3, 8));
        assert_eq!(gl.precompute_all().shape(), (5, 8));
    }

    #[test]
    fn precompute_matches_per_tag_embedding() {
        let (gl, _) = layers(true, true);
        let all = gl.precompute_all();
        let tape = Tape::new();
        for t in 0..5 {
            let z = gl.embed_tag(&tape, t).value();
            for (a, b) in all.row_slice(t).iter().zip(z.row_slice(0)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn neighbor_attention_is_a_distribution() {
        let (gl, _) = layers(true, true);
        for mp in 0..4 {
            let attn = gl.neighbor_attention(1, mp);
            if attn.is_empty() {
                continue;
            }
            let sum: f32 = attn.iter().map(|(_, a)| a).sum();
            assert!((sum - 1.0).abs() < 1e-4, "metapath {mp}: sum {sum}");
            assert!(attn.iter().all(|&(_, a)| a >= 0.0));
        }
    }

    #[test]
    fn metapath_attention_is_a_distribution() {
        let (gl, _) = layers(true, true);
        let w = gl.metapath_attention(2);
        let sum: f32 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        let (gl_ab, _) = layers(true, false);
        assert_eq!(gl_ab.metapath_attention(2), [0.25; 4]);
    }

    #[test]
    fn gradients_flow_into_graph_parameters() {
        let (gl, params) = layers(true, true);
        let tape = Tape::new();
        let z = gl.embed_tags(&tape, &[0, 1, 2, 3, 4]);
        let loss = z.mul(&z).mean_all();
        loss.backward();
        // The fused output and feature table must receive gradient; attention
        // params can have zero grad only in degenerate cases.
        let got: usize = params.params().iter().filter(|p| p.grad().norm() > 0.0).count();
        assert!(got >= params.params().len() - 2, "{got}/{}", params.params().len());
    }

    #[test]
    fn isolated_tag_uses_self_loop() {
        let mut b = HetGraphBuilder::new(2, 1, 1);
        b.add_asc(0, 0);
        b.set_tenant(0, 0);
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = ParamSet::new(1e-3);
        let gl = GraphLayers::new(
            &g,
            Matrix::uniform(2, 4, 0.5, &mut rng),
            2,
            4,
            true,
            true,
            &mut params,
            &mut rng,
        );
        let tape = Tape::new();
        // Tag 1 has no neighbors on any metapath but must still embed.
        let z = gl.embed_tag(&tape, 1).value();
        assert!(!z.has_non_finite());
    }

    #[test]
    fn ablation_without_na_ignores_attention_params() {
        let (gl, _) = layers(false, true);
        let attn = gl.neighbor_attention(1, 0);
        // uniform weights in ablation mode
        if attn.len() > 1 {
            let first = attn[0].1;
            assert!(attn.iter().all(|&(_, a)| (a - first).abs() < 1e-6));
        }
    }
}
