//! The offline evaluation protocol of paper §VI-A2: for every test example,
//! rank the true next tag against 49 negatives sampled from the same tenant,
//! and report MRR / NDCG@K / HR@K.

use intellitag_baselines::SequenceRecommender;
use intellitag_datagen::{SeqExample, World};
use intellitag_eval::{sample_negatives, RankingAccumulator, RankingReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Protocol parameters.
#[derive(Debug, Clone, Copy)]
pub struct ProtocolConfig {
    /// Negatives ranked against the positive (paper: 49, list size 50).
    pub negatives: usize,
    /// RNG seed for negative sampling (fixed across models for fairness).
    pub seed: u64,
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig { negatives: 49, seed: 0xE7A1 }
    }
}

/// Evaluates a recommender on next-click examples with same-tenant
/// negatives. The candidate lists are regenerated identically for every
/// model (seeded per example index), so reported numbers are comparable.
pub fn evaluate_offline(
    model: &dyn SequenceRecommender,
    examples: &[SeqExample],
    world: &World,
    cfg: &ProtocolConfig,
) -> RankingReport {
    assert!(!examples.is_empty(), "no evaluation examples");
    // Per-tenant candidate pools (ground-truth tag inventories).
    let mut pools: Vec<Option<Vec<usize>>> = vec![None; world.tenants.len()];
    let global: Vec<usize> = (0..world.tags.len()).collect();

    let mut acc = RankingAccumulator::new();
    for (i, ex) in examples.iter().enumerate() {
        let pool = pools[ex.tenant].get_or_insert_with(|| world.tenant_tag_pool(ex.tenant)).clone();
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let negs = sample_negatives(ex.target, &pool, &global, cfg.negatives, &mut rng);
        let mut candidates = Vec::with_capacity(1 + negs.len());
        candidates.push(ex.target);
        candidates.extend(negs);
        let scores = model.score_candidates(&ex.context, &candidates);
        acc.push_scores(scores[0], &scores[1..]);
    }
    acc.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_baselines::Popularity;
    use intellitag_datagen::{sequence_examples, WorldConfig};

    struct Oracle;
    impl SequenceRecommender for Oracle {
        fn name(&self) -> &str {
            "Oracle"
        }
        fn score_all(&self, _context: &[usize]) -> Vec<f32> {
            unreachable!("oracle uses score_candidates")
        }
        fn score_candidates(&self, _context: &[usize], candidates: &[usize]) -> Vec<f32> {
            // The protocol always places the positive first; a model that
            // knows this achieves perfect metrics — an upper-bound check.
            let mut v = vec![0.0; candidates.len()];
            v[0] = 1.0;
            v
        }
    }

    struct Antichance;
    impl SequenceRecommender for Antichance {
        fn name(&self) -> &str {
            "Antichance"
        }
        fn score_all(&self, _c: &[usize]) -> Vec<f32> {
            unreachable!()
        }
        fn score_candidates(&self, _c: &[usize], candidates: &[usize]) -> Vec<f32> {
            let mut v = vec![1.0; candidates.len()];
            v[0] = 0.0; // positive always ranked last
            v
        }
    }

    #[test]
    fn oracle_gets_perfect_scores() {
        let world = World::generate(WorldConfig::tiny(1));
        let ex = sequence_examples(&world.sessions);
        let r = evaluate_offline(&Oracle, &ex[..50.min(ex.len())], &world, &Default::default());
        assert_eq!(r.mrr, 1.0);
        assert_eq!(r.hr10, 1.0);
        assert_eq!(r.ndcg1, 1.0);
    }

    #[test]
    fn adversary_gets_worst_scores() {
        let world = World::generate(WorldConfig::tiny(1));
        let ex = sequence_examples(&world.sessions);
        let r = evaluate_offline(&Antichance, &ex[..50.min(ex.len())], &world, &Default::default());
        assert!(r.mrr < 0.05);
        assert_eq!(r.hr10, 0.0);
    }

    #[test]
    fn popularity_beats_chance() {
        let world = World::generate(WorldConfig::tiny(2));
        let sessions: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        let pop = Popularity::from_sessions(&sessions, world.tags.len());
        let ex = sequence_examples(&world.sessions);
        let r = evaluate_offline(&pop, &ex, &world, &Default::default());
        // Chance MRR over 50 candidates is ~0.09; popularity should clear it.
        assert!(r.mrr > 0.09, "popularity MRR {} should beat chance", r.mrr);
    }

    #[test]
    fn protocol_is_deterministic_across_calls() {
        let world = World::generate(WorldConfig::tiny(3));
        let sessions: Vec<Vec<usize>> = world.sessions.iter().map(|s| s.clicks.clone()).collect();
        let pop = Popularity::from_sessions(&sessions, world.tags.len());
        let ex = sequence_examples(&world.sessions);
        let a = evaluate_offline(&pop, &ex, &world, &Default::default());
        let b = evaluate_offline(&pop, &ex, &world, &Default::default());
        assert_eq!(a.mrr, b.mrr);
        assert_eq!(a.hr10, b.hr10);
    }
}
