//! Response caching for the model server.
//!
//! The paper's future-work section (§VII) plans to "cache high-frequency
//! data to decrease system latency". This module implements that extension:
//! a bounded FIFO cache over tag-click responses keyed by
//! `(tenant, clicked tags)`. Click prefixes are heavy-tailed (most sessions
//! start from the same few popular tags), so even a small cache absorbs a
//! large share of requests.

use std::collections::{HashMap, VecDeque};

use parking_lot::Mutex;

/// A bounded FIFO map with hit/miss accounting. FIFO (rather than LRU)
/// keeps eviction O(1) without bookkeeping on the read path; for the
/// head-heavy key distribution of click prefixes the hit-rate difference
/// is negligible.
pub struct ResponseCache<K, V> {
    inner: Mutex<CacheInner<K, V>>,
    capacity: usize,
}

struct CacheInner<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    hits: u64,
    misses: u64,
}

impl<K, V> ResponseCache<K, V>
where
    K: std::hash::Hash + Eq + Clone,
    V: Clone,
{
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        ResponseCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::with_capacity(capacity),
                order: VecDeque::with_capacity(capacity),
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Looks up a key, counting the hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).cloned() {
            Some(v) => {
                inner.hits += 1;
                Some(v)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a value, evicting the oldest entry when full. Re-inserting an
    /// existing key refreshes the value without growing the cache.
    pub fn put(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        if inner.map.insert(key.clone(), value).is_none() {
            inner.order.push_back(key);
            if inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                }
            }
        }
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Drops every entry (e.g. after a T+1 model refresh) and resets stats.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.order.clear();
        inner.hits = 0;
        inner.misses = 0;
    }
}

/// A small bounded LRU map with hit/miss accounting, used by the model
/// server's cross-drain score-row cache. Unlike [`ResponseCache`], recency
/// matters here: hot tenants repeat the same short click prefixes across
/// consecutive micro-batch drains, and evicting the oldest *insertion*
/// would throw away exactly those rows.
///
/// Recency is an intrusive doubly-linked list threaded through a slot
/// arena (`nodes` + free list), with the hash map storing slot indices:
/// `get` unlinks and re-links the touched slot at the head and eviction
/// pops the tail, so every operation is O(1) — no recency-tick scan, which
/// matters now that the governor can grow serving load while the LRU sits
/// on the batched scoring path.
pub struct LruCache<K, V> {
    inner: Mutex<LruInner<K, V>>,
    capacity: usize,
}

/// Sentinel slot index for "no neighbour".
const NIL: usize = usize::MAX;

struct LruNode<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

struct LruInner<K, V> {
    /// Key -> slot index in `nodes`.
    map: HashMap<K, usize>,
    /// Slot arena; freed slots are recycled via `free`.
    nodes: Vec<LruNode<K, V>>,
    free: Vec<usize>,
    /// Most-recently-used slot (NIL when empty).
    head: usize,
    /// Least-recently-used slot (NIL when empty) — the eviction end.
    tail: usize,
    hits: u64,
    misses: u64,
}

impl<K, V> LruInner<K, V> {
    /// Detaches `slot` from the recency list (it must be linked).
    fn unlink(&mut self, slot: usize) {
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        match prev {
            NIL => self.head = next,
            p => self.nodes[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.nodes[n].prev = prev,
        }
    }

    /// Links `slot` at the head (most recently used).
    fn link_front(&mut self, slot: usize) {
        self.nodes[slot].prev = NIL;
        self.nodes[slot].next = self.head;
        match self.head {
            NIL => self.tail = slot,
            h => self.nodes[h].prev = slot,
        }
        self.head = slot;
    }

    /// Moves an already-linked `slot` to the head.
    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.unlink(slot);
            self.link_front(slot);
        }
    }
}

impl<K, V> LruCache<K, V>
where
    K: std::hash::Hash + Eq + Clone,
    V: Clone,
{
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        LruCache {
            inner: Mutex::new(LruInner {
                map: HashMap::with_capacity(capacity),
                nodes: Vec::with_capacity(capacity),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                hits: 0,
                misses: 0,
            }),
            capacity,
        }
    }

    /// Looks up a key, refreshing its recency and counting the hit or miss.
    pub fn get(&self, key: &K) -> Option<V> {
        let mut inner = self.inner.lock();
        match inner.map.get(key).copied() {
            Some(slot) => {
                inner.touch(slot);
                inner.hits += 1;
                Some(inner.nodes[slot].value.clone())
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a value, evicting the least-recently-used entry when full.
    /// Re-inserting an existing key refreshes both value and recency.
    pub fn put(&self, key: K, value: V) {
        let mut inner = self.inner.lock();
        if let Some(slot) = inner.map.get(&key).copied() {
            inner.nodes[slot].value = value;
            inner.touch(slot);
            return;
        }
        if inner.map.len() >= self.capacity {
            let lru = inner.tail;
            debug_assert_ne!(lru, NIL, "full cache must have a tail");
            inner.unlink(lru);
            let old_key = inner.nodes[lru].key.clone();
            inner.map.remove(&old_key);
            inner.free.push(lru);
        }
        let slot = match inner.free.pop() {
            Some(slot) => {
                inner.nodes[slot] = LruNode { key: key.clone(), value, prev: NIL, next: NIL };
                slot
            }
            None => {
                inner.nodes.push(LruNode { key: key.clone(), value, prev: NIL, next: NIL });
                inner.nodes.len() - 1
            }
        };
        inner.map.insert(key, slot);
        inner.link_front(slot);
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    /// Hit rate in `[0, 1]`; 0 before any lookup.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = self.stats();
        if h + m == 0 {
            0.0
        } else {
            h as f64 / (h + m) as f64
        }
    }

    /// Drops every entry (e.g. after a T+1 model refresh) and resets stats.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.nodes.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
        inner.hits = 0;
        inner.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let c: ResponseCache<u32, &str> = ResponseCache::new(2);
        assert!(c.get(&1).is_none());
        c.put(1, "a");
        assert_eq!(c.get(&1), Some("a"));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn fifo_eviction() {
        let c: ResponseCache<u32, u32> = ResponseCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(3, 30); // evicts 1
        assert!(c.get(&1).is_none());
        assert_eq!(c.get(&2), Some(20));
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let c: ResponseCache<u32, u32> = ResponseCache::new(2);
        c.put(1, 10);
        c.put(1, 11);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn hit_rate_tracks_lookups() {
        let c: ResponseCache<u32, u32> = ResponseCache::new(4);
        c.put(1, 1);
        let _ = c.get(&1); // hit
        let _ = c.get(&2); // miss
        let _ = c.get(&1); // hit
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_everything() {
        let c: ResponseCache<u32, u32> = ResponseCache::new(4);
        c.put(1, 1);
        let _ = c.get(&1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _: ResponseCache<u32, u32> = ResponseCache::new(0);
    }

    #[test]
    fn lru_evicts_least_recently_used_not_oldest() {
        let c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        let _ = c.get(&1); // 1 is now more recent than 2
        c.put(3, 30); // evicts 2, not 1
        assert_eq!(c.get(&1), Some(10));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&3), Some(30));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn lru_reinsert_refreshes_value_and_recency() {
        let c: LruCache<u32, u32> = LruCache::new(2);
        c.put(1, 10);
        c.put(2, 20);
        c.put(1, 11); // refresh, no growth, 1 now most recent
        assert_eq!(c.len(), 2);
        c.put(3, 30); // evicts 2
        assert_eq!(c.get(&1), Some(11));
        assert!(c.get(&2).is_none());
    }

    #[test]
    fn lru_stats_and_clear() {
        let c: LruCache<u32, u32> = LruCache::new(4);
        c.put(1, 1);
        let _ = c.get(&1); // hit
        let _ = c.get(&2); // miss
        assert_eq!(c.stats(), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn lru_zero_capacity_rejected() {
        let _: LruCache<u32, u32> = LruCache::new(0);
    }
}
