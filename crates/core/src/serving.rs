//! The online model server (paper §V-A): request handling for Q&A dialogue
//! and tag recommendation, with the deployment strategy of §V-B — tag
//! embeddings precomputed offline, only sequence layers run per request,
//! popularity fallback for cold start, `asc`-relation tags after a question.

use std::time::Instant;

use intellitag_baselines::SequenceRecommender;
use intellitag_search::KbWarehouse;
use parking_lot::Mutex;

use crate::cache::ResponseCache;
use crate::qa_matcher::QaMatcher;

/// Response to a user question (the Q&A dialogue path).
#[derive(Debug, Clone)]
pub struct QuestionResponse {
    /// Best-matching RQ id, if any cleared recall.
    pub rq: Option<usize>,
    /// The answer shown to the user.
    pub answer: Option<String>,
    /// Tags recommended next (from the matched RQ's `asc` relation, §V-B).
    pub recommended_tags: Vec<usize>,
    /// Server-side processing latency in microseconds.
    pub latency_us: u64,
}

/// Response to a tag click (the TagRec path).
#[derive(Debug, Clone)]
pub struct TagClickResponse {
    /// Next recommended tags, ranked.
    pub recommended_tags: Vec<usize>,
    /// Predicted questions (re-ranked RQ recall for the click query).
    pub predicted_questions: Vec<usize>,
    /// Server-side processing latency in microseconds.
    pub latency_us: u64,
}

/// The model server: one recommender + the searchable KB + per-tenant
/// metadata. Thread-safe latency log via `parking_lot`.
pub struct ModelServer<M: SequenceRecommender> {
    model: M,
    kb: KbWarehouse,
    /// Surface text per tag (builds the ES query from clicked tags).
    tag_texts: Vec<String>,
    /// Ground-truth tags per RQ (`asc` relation, drives re-ranking and the
    /// after-question tag recommendation).
    rq_tags: Vec<Vec<usize>>,
    /// Tag inventory per tenant (results never cross tenants).
    tenant_tags: Vec<Vec<usize>>,
    /// Global click counts (cold-start popularity, §V-B).
    click_counts: Vec<usize>,
    /// Tags shown per response.
    pub tags_per_response: usize,
    /// Predicted questions shown per response.
    pub questions_per_response: usize,
    latencies_us: Mutex<Vec<u64>>,
    /// Optional response cache over `(tenant, clicks)` — the paper's §VII
    /// future-work extension ("cache high-frequency data to decrease system
    /// latency").
    cache: Option<ResponseCache<(usize, Vec<usize>), TagClickResponse>>,
    /// Optional Q&A matching model re-ranking question recall (the deployed
    /// system's RoBERTa matcher, §V-A).
    qa_matcher: Option<QaMatcher>,
}

impl<M: SequenceRecommender> ModelServer<M> {
    /// Assembles a server.
    pub fn new(
        model: M,
        kb: KbWarehouse,
        tag_texts: Vec<String>,
        rq_tags: Vec<Vec<usize>>,
        tenant_tags: Vec<Vec<usize>>,
        click_counts: Vec<usize>,
    ) -> Self {
        assert_eq!(kb.len(), rq_tags.len(), "one tag list per RQ");
        assert_eq!(tag_texts.len(), click_counts.len(), "one count per tag");
        ModelServer {
            model,
            kb,
            tag_texts,
            rq_tags,
            tenant_tags,
            click_counts,
            tags_per_response: 5,
            questions_per_response: 3,
            latencies_us: Mutex::new(Vec::new()),
            cache: None,
            qa_matcher: None,
        }
    }

    /// Attaches a trained Q&A matcher; question recall is then re-ranked by
    /// match score instead of raw BM25 order.
    pub fn with_qa_matcher(mut self, matcher: QaMatcher) -> Self {
        self.qa_matcher = Some(matcher);
        self
    }

    /// Enables the tag-click response cache (§VII future work). Call after
    /// construction; a model refresh should recreate the server (or the
    /// cache) since cached responses embed model output.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ResponseCache::new(capacity));
        self
    }

    /// Cache hit rate so far, if the cache is enabled.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.as_ref().map(ResponseCache::hit_rate)
    }

    /// The wrapped recommender.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Recorded request latencies (µs).
    pub fn latencies_us(&self) -> Vec<u64> {
        self.latencies_us.lock().clone()
    }

    /// Cold-start tags for a tenant: most frequently clicked (§V-B).
    pub fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        let mut pool = self.tenant_tags[tenant].clone();
        pool.sort_by(|&a, &b| {
            self.click_counts[b]
                .cmp(&self.click_counts[a])
                .then(a.cmp(&b))
        });
        pool.truncate(self.tags_per_response);
        pool
    }

    /// Handles a typed question: recall + best match + `asc` tags. With a
    /// Q&A matcher attached, the BM25 recall set is re-ranked by match score
    /// (recall-then-rerank, exactly the deployed §V-A pipeline).
    pub fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        let start = Instant::now();
        let best = match &self.qa_matcher {
            Some(matcher) => {
                let recall = self.kb.recall_for_tenant(question, tenant, 10);
                let reranked = matcher.rerank(
                    question,
                    recall.iter().map(|h| (h.doc, self.kb.pair(h.doc).question.as_str())),
                );
                reranked.first().map(|&rq| (rq, self.kb.pair(rq)))
            }
            None => self.kb.best_match(question, tenant),
        };
        let (rq, answer, recommended_tags) = match best {
            Some((rq, pair)) => {
                // Recommend the matched question's own tags (asc relation),
                // backfilled with cold-start popularity.
                let mut tags = self.rq_tags[rq].clone();
                for t in self.cold_start_tags(tenant) {
                    if tags.len() >= self.tags_per_response {
                        break;
                    }
                    if !tags.contains(&t) {
                        tags.push(t);
                    }
                }
                tags.truncate(self.tags_per_response);
                (Some(rq), Some(pair.answer.clone()), tags)
            }
            None => (None, None, self.cold_start_tags(tenant)),
        };
        let latency_us = start.elapsed().as_micros() as u64;
        self.latencies_us.lock().push(latency_us);
        QuestionResponse { rq, answer, recommended_tags, latency_us }
    }

    /// Handles a tag click: the model ranks next tags (restricted to the
    /// tenant's inventory) and the click history becomes an ES query whose
    /// recall is re-ranked by tag overlap (§V-A).
    pub fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        assert!(!clicks.is_empty(), "a click must have happened");
        let start = Instant::now();

        if let Some(cache) = &self.cache {
            let key = (tenant, clicks.to_vec());
            if let Some(mut resp) = cache.get(&key) {
                resp.latency_us = start.elapsed().as_micros() as u64;
                self.latencies_us.lock().push(resp.latency_us);
                return resp;
            }
        }

        // --- next-tag recommendation ------------------------------------
        let pool = &self.tenant_tags[tenant];
        let scores = self.model.score_candidates(clicks, pool);
        let mut ranked: Vec<(usize, f32)> = pool
            .iter()
            .copied()
            .zip(scores)
            .filter(|(t, _)| !clicks.contains(t))
            .collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let recommended_tags: Vec<usize> = ranked
            .into_iter()
            .take(self.tags_per_response)
            .map(|(t, _)| t)
            .collect();

        // --- predicted questions -----------------------------------------
        // Query = concatenated clicked-tag texts (paper: "the user's
        // successive clicked tags are composed as a query").
        let query: String = clicks
            .iter()
            .map(|&t| self.tag_texts[t].as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let recall = self.kb.recall_for_tenant(&query, tenant, 20);
        let max_bm25 = recall.first().map_or(1.0, |h| h.score.max(1e-6));
        let mut rescored: Vec<(usize, f32)> = recall
            .into_iter()
            .map(|h| {
                let overlap = self.rq_tags[h.doc]
                    .iter()
                    .filter(|t| clicks.contains(t))
                    .count() as f32;
                (h.doc, h.score / max_bm25 + 2.0 * overlap)
            })
            .collect();
        rescored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let predicted_questions: Vec<usize> = rescored
            .into_iter()
            .take(self.questions_per_response)
            .map(|(q, _)| q)
            .collect();

        let latency_us = start.elapsed().as_micros() as u64;
        self.latencies_us.lock().push(latency_us);
        let resp = TagClickResponse { recommended_tags, predicted_questions, latency_us };
        if let Some(cache) = &self.cache {
            cache.put((tenant, clicks.to_vec()), resp.clone());
        }
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_baselines::Popularity;

    fn server() -> ModelServer<Popularity> {
        let mut kb = KbWarehouse::new();
        kb.add_pair("how to change password", "settings > security", 0);
        kb.add_pair("how to apply for etc card", "apply in the etc menu", 0);
        kb.add_pair("where to cancel the order", "orders > cancel", 1);
        // tags: 0 change, 1 password, 2 apply, 3 etc card, 4 cancel, 5 order
        let tag_texts = vec![
            "change".into(),
            "password".into(),
            "apply".into(),
            "etc card".into(),
            "cancel".into(),
            "order".into(),
        ];
        let rq_tags = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let tenant_tags = vec![vec![0, 1, 2, 3], vec![4, 5]];
        let clicks = vec![5, 9, 3, 7, 2, 4];
        let model = Popularity::from_counts(&clicks);
        ModelServer::new(model, kb, tag_texts, rq_tags, tenant_tags, clicks)
    }

    #[test]
    fn question_path_returns_answer_and_asc_tags() {
        let s = server();
        let r = s.handle_question(0, "i need to change my password");
        assert_eq!(r.rq, Some(0));
        assert!(r.answer.unwrap().contains("security"));
        // asc tags of RQ 0 come first
        assert_eq!(&r.recommended_tags[..2], &[0, 1]);
    }

    #[test]
    fn unknown_question_falls_back_to_cold_start() {
        let s = server();
        let r = s.handle_question(0, "zzz qqq completely unknown");
        assert_eq!(r.rq, None);
        assert!(r.answer.is_none());
        assert_eq!(r.recommended_tags, s.cold_start_tags(0));
    }

    #[test]
    fn cold_start_ranks_by_click_frequency() {
        let s = server();
        // Tenant 0 pool {0,1,2,3} with counts {5,9,3,7} -> 1,3,0,2
        assert_eq!(s.cold_start_tags(0), vec![1, 3, 0, 2]);
    }

    #[test]
    fn tag_click_restricts_to_tenant_and_excludes_clicked() {
        let s = server();
        let r = s.handle_tag_click(0, &[1]);
        assert!(!r.recommended_tags.contains(&1), "clicked tag excluded");
        assert!(r.recommended_tags.iter().all(|t| [0, 2, 3].contains(t)));
    }

    #[test]
    fn tag_click_predicts_matching_question() {
        let s = server();
        let r = s.handle_tag_click(0, &[0, 1]); // "change password"
        assert_eq!(r.predicted_questions.first(), Some(&0));
    }

    #[test]
    fn cache_serves_repeated_clicks() {
        let s = server().with_cache(16);
        let a = s.handle_tag_click(0, &[0, 1]);
        let b = s.handle_tag_click(0, &[0, 1]);
        assert_eq!(a.recommended_tags, b.recommended_tags);
        assert_eq!(a.predicted_questions, b.predicted_questions);
        assert_eq!(s.cache_hit_rate(), Some(0.5));
        // Different key misses.
        let _ = s.handle_tag_click(0, &[1]);
        assert!(s.cache_hit_rate().unwrap() < 0.5);
    }

    #[test]
    fn qa_matcher_reranks_question_recall() {
        use crate::qa_matcher::{QaMatcher, QaMatcherConfig};
        // Train a matcher whose pairs bind "passphrase" queries to RQ 0.
        let corpus = vec![
            "how to change password".to_string(),
            "how to apply for etc card".to_string(),
            "where to cancel the order".to_string(),
        ];
        let pairs = vec![
            ("change my password now".to_string(), corpus[0].clone()),
            ("password change how".to_string(), corpus[0].clone()),
            ("apply etc card".to_string(), corpus[1].clone()),
            ("etc card application".to_string(), corpus[1].clone()),
            ("cancel order please".to_string(), corpus[2].clone()),
            ("order cancel where".to_string(), corpus[2].clone()),
        ];
        let matcher = QaMatcher::train(&pairs, &corpus, QaMatcherConfig {
            train: crate::TrainConfig { epochs: 20, lr: 1e-2, ..Default::default() },
            ..Default::default()
        });
        let s = server().with_qa_matcher(matcher);
        let r = s.handle_question(0, "password change how please");
        assert_eq!(r.rq, Some(0), "matcher should pick the password RQ");
        assert!(r.answer.unwrap().contains("security"));
    }

    #[test]
    fn cache_disabled_by_default() {
        let s = server();
        let _ = s.handle_tag_click(0, &[0]);
        assert_eq!(s.cache_hit_rate(), None);
    }

    #[test]
    fn latency_is_recorded() {
        let s = server();
        let _ = s.handle_question(0, "change password");
        let _ = s.handle_tag_click(0, &[0]);
        assert_eq!(s.latencies_us().len(), 2);
    }
}
