//! The online model server (paper §V-A): request handling for Q&A dialogue
//! and tag recommendation, with the deployment strategy of §V-B — tag
//! embeddings precomputed offline, only sequence layers run per request,
//! popularity fallback for cold start, `asc`-relation tags after a question.
//!
//! Every request is instrumented through [`intellitag_obs`]: per-stage span
//! timing (ES recall, Q&A-matcher rerank, model scoring, cache lookup),
//! cache hit/miss and cold-start counters, per-tenant request counters, and
//! bounded log2 latency histograms replacing the old unbounded latency log —
//! the paper's §VI latency budget ("respond in under 150 ms", Table VI) is
//! only actionable when you can see where the time goes.

use std::sync::Arc;

use intellitag_baselines::SequenceRecommender;
use intellitag_obs::{
    tenant_tier, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, SampleRing,
    SpanTimer, TraceHandle, MODEL_SWAPS_METRIC, MODEL_VERSION_METRIC, SLO_LATENCY_METRIC,
    SLO_TIER_LABEL,
};
use intellitag_search::{Hit, KbWarehouse};

use crate::cache::{LruCache, ResponseCache};
use crate::qa_matcher::QaMatcher;

/// How many recent raw latency samples the server retains for
/// [`ModelServer::latencies_us`]. Aggregate statistics come from the
/// bounded histograms; the ring only serves debugging and the benches.
pub const RECENT_LATENCY_WINDOW: usize = 1024;

/// The outcome of polling a [`PendingReply`].
#[derive(Debug)]
pub enum Poll<T> {
    /// The reply arrived.
    Ready(T),
    /// Still in flight — poll again later.
    NotYet,
    /// The serving worker dropped the reply channel (the front died or was
    /// torn down mid-request); the reply will never arrive.
    Lost,
}

/// A reply that has been accepted by a front but not produced yet: the
/// receiving half of the front's per-request reply channel, plus an optional
/// client-observed-latency hook recorded when the reply lands. This is what
/// lets a caller keep many correlated requests in flight against a
/// concurrent front (e.g. the gateway's pipelined binary connections) and
/// collect completions out of order.
#[derive(Debug)]
pub struct PendingReply<T> {
    rx: std::sync::mpsc::Receiver<T>,
    /// `(histogram, timer)` recorded once on completion — the sharded front
    /// uses this to keep `sharded.request_us{shard=..}` accurate for
    /// submitted (non-blocking-wait) requests too.
    latency: Option<(Arc<Histogram>, SpanTimer)>,
}

impl<T> PendingReply<T> {
    /// Wraps a raw reply receiver.
    pub fn new(rx: std::sync::mpsc::Receiver<T>) -> Self {
        PendingReply { rx, latency: None }
    }

    /// Records the client-observed latency into `hist` when the reply lands.
    pub fn with_latency(mut self, hist: Arc<Histogram>, timer: SpanTimer) -> Self {
        self.latency = Some((hist, timer));
        self
    }

    fn complete(&mut self, value: T) -> T {
        if let Some((hist, timer)) = self.latency.take() {
            hist.record(timer.elapsed_us());
        }
        value
    }

    /// Non-blocking poll.
    pub fn try_take(&mut self) -> Poll<T> {
        match self.rx.try_recv() {
            Ok(v) => Poll::Ready(self.complete(v)),
            Err(std::sync::mpsc::TryRecvError::Empty) => Poll::NotYet,
            Err(std::sync::mpsc::TryRecvError::Disconnected) => Poll::Lost,
        }
    }

    /// Blocking poll with a deadline: waits up to `timeout` for the reply.
    pub fn take_timeout(&mut self, timeout: std::time::Duration) -> Poll<T> {
        match self.rx.recv_timeout(timeout) {
            Ok(v) => Poll::Ready(self.complete(v)),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => Poll::NotYet,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => Poll::Lost,
        }
    }
}

/// What a front did with a submitted (fire-now, collect-later) request.
#[derive(Debug)]
pub enum Submission<T> {
    /// The front answered inline (single-process fronts have no queue to
    /// park the request in, so the answer is already here).
    Ready(T),
    /// The request was accepted; the reply will arrive on the pending
    /// channel — possibly out of order with other submissions.
    Pending(PendingReply<T>),
    /// The front refused the request without serving it (queue full →
    /// [`crate::ShedReason::Overloaded`], worker gone →
    /// [`crate::ShedReason::ShuttingDown`]).
    Rejected(crate::ShedReason),
}

/// The request surface shared by every serving front — the single-process
/// [`ModelServer`] and the sharded/batched [`crate::ShardedServer`] alike.
/// The simulator, benches and examples drive traffic through this trait, so
/// swapping fronts is a one-line change and the parity tests can pin that
/// both fronts answer identically.
pub trait TagService {
    /// Handles a typed question (the Q&A dialogue path).
    fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse;

    /// Handles a tag click (the TagRec path).
    fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse;

    /// Cold-start tags for a tenant (most frequently clicked, §V-B).
    fn cold_start_tags(&self, tenant: usize) -> Vec<usize>;

    /// The metrics registry this front publishes into.
    fn metrics(&self) -> &MetricsRegistry;

    /// Snapshot of the end-to-end request latency histogram (µs).
    fn latency_snapshot(&self) -> HistogramSnapshot;

    /// The served policy's (model's) name, as printed in the paper's tables.
    fn policy(&self) -> String;

    /// The version id of the model snapshot currently serving (0 when the
    /// front was built directly rather than from a published snapshot).
    /// Fronts that support hot-swapping report the version their replicas
    /// last applied at a drain boundary.
    fn model_version(&self) -> u64 {
        0
    }

    /// [`TagService::handle_question`] with request tracing: fronts that
    /// support per-stage spans record them into `trace`. The default ignores
    /// the trace and delegates, so existing fronts keep working untraced.
    fn handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> QuestionResponse {
        let _ = trace;
        self.handle_question(tenant, question)
    }

    /// [`TagService::handle_tag_click`] with request tracing (see
    /// [`TagService::handle_question_traced`]).
    fn handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> TagClickResponse {
        let _ = trace;
        self.handle_tag_click(tenant, clicks)
    }

    /// Submits a question without waiting for the answer. The default
    /// answers inline (synchronous fronts have nowhere to park a request);
    /// concurrent fronts override this to enqueue and return
    /// [`Submission::Pending`], so one caller thread can keep many requests
    /// in flight and collect replies out of order.
    fn submit_question(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> Submission<QuestionResponse> {
        Submission::Ready(match trace {
            Some(t) => self.handle_question_traced(tenant, question, t),
            None => self.handle_question(tenant, question),
        })
    }

    /// Submits a tag click without waiting (see
    /// [`TagService::submit_question`]).
    fn submit_tag_click(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> Submission<TagClickResponse> {
        Submission::Ready(match trace {
            Some(t) => self.handle_tag_click_traced(tenant, clicks, t),
            None => self.handle_tag_click(tenant, clicks),
        })
    }

    /// Submits a cold-start lookup without waiting (see
    /// [`TagService::submit_question`]).
    fn submit_cold_start(&self, tenant: usize) -> Submission<Vec<usize>> {
        Submission::Ready(self.cold_start_tags(tenant))
    }
}

/// Shared ownership serves transparently: a `Send + Sync` front (e.g.
/// [`crate::ShardedServer`]) wrapped in an [`Arc`] is itself a
/// [`TagService`], so multi-threaded callers like the HTTP gateway can
/// hand every worker a clone of one fleet instead of building a fleet
/// per worker.
impl<S: TagService> TagService for Arc<S> {
    fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        (**self).handle_question(tenant, question)
    }

    fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        (**self).handle_tag_click(tenant, clicks)
    }

    fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        (**self).cold_start_tags(tenant)
    }

    fn metrics(&self) -> &MetricsRegistry {
        (**self).metrics()
    }

    fn latency_snapshot(&self) -> HistogramSnapshot {
        (**self).latency_snapshot()
    }

    fn policy(&self) -> String {
        (**self).policy()
    }

    fn model_version(&self) -> u64 {
        (**self).model_version()
    }

    fn handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> QuestionResponse {
        (**self).handle_question_traced(tenant, question, trace)
    }

    fn submit_question(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> Submission<QuestionResponse> {
        (**self).submit_question(tenant, question, trace)
    }

    fn submit_tag_click(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> Submission<TagClickResponse> {
        (**self).submit_tag_click(tenant, clicks, trace)
    }

    fn submit_cold_start(&self, tenant: usize) -> Submission<Vec<usize>> {
        (**self).submit_cold_start(tenant)
    }

    fn handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> TagClickResponse {
        (**self).handle_tag_click_traced(tenant, clicks, trace)
    }
}

/// Response to a user question (the Q&A dialogue path).
#[derive(Debug, Clone)]
pub struct QuestionResponse {
    /// Best-matching RQ id, if any cleared recall.
    pub rq: Option<usize>,
    /// The answer shown to the user.
    pub answer: Option<String>,
    /// Tags recommended next (from the matched RQ's `asc` relation, §V-B).
    pub recommended_tags: Vec<usize>,
    /// Server-side processing latency in microseconds.
    pub latency_us: u64,
}

impl QuestionResponse {
    /// Content equality ignoring the measured latency — the quantity the
    /// parity tests pin across serving fronts (shard count and batch size
    /// must never change what a request returns, only how fast).
    pub fn same_content(&self, other: &Self) -> bool {
        self.rq == other.rq
            && self.answer == other.answer
            && self.recommended_tags == other.recommended_tags
    }
}

/// Response to a tag click (the TagRec path).
#[derive(Debug, Clone)]
pub struct TagClickResponse {
    /// Next recommended tags, ranked.
    pub recommended_tags: Vec<usize>,
    /// Predicted questions (re-ranked RQ recall for the click query).
    pub predicted_questions: Vec<usize>,
    /// Server-side processing latency in microseconds.
    pub latency_us: u64,
}

impl TagClickResponse {
    /// Content equality ignoring the measured latency (see
    /// [`QuestionResponse::same_content`]).
    pub fn same_content(&self, other: &Self) -> bool {
        self.recommended_tags == other.recommended_tags
            && self.predicted_questions == other.predicted_questions
    }
}

/// Metric handles bound once at construction so the hot path never touches
/// the registry's name map (except for the dynamic per-tenant counters).
struct ServerMetrics {
    registry: MetricsRegistry,
    /// Total requests served by this front, every path included — degraded
    /// and empty responses too (`serving.requests`). Gateways reconcile
    /// their own per-route counts against this.
    requests: Arc<Counter>,
    /// End-to-end latency across both request kinds (`serving.request_us`).
    request_latency: Arc<Histogram>,
    /// Q&A path latency (`serving.question_us`).
    question_latency: Arc<Histogram>,
    /// Tag-click path latency (`serving.tag_click_us`).
    click_latency: Arc<Histogram>,
    /// Top-level cold-start lookup latency (`serving.cold_start_us`).
    cold_start_latency: Arc<Histogram>,
    /// BM25/ES recall stage (`serving.stage.recall_us`).
    stage_recall: Arc<Histogram>,
    /// Q&A-matcher / overlap rerank stage (`serving.stage.rerank_us`).
    stage_rerank: Arc<Histogram>,
    /// Sequence-model scoring stage (`serving.stage.score_us`).
    stage_score: Arc<Histogram>,
    /// Response-cache lookup stage (`serving.stage.cache_us`).
    stage_cache: Arc<Histogram>,
    cache_hit: Arc<Counter>,
    cache_miss: Arc<Counter>,
    /// Cross-drain score-row LRU accounting
    /// (`serving.score_lru.{hits,misses}`).
    score_lru_hit: Arc<Counter>,
    score_lru_miss: Arc<Counter>,
    /// Live hit ratio in `[0, 1]` (`serving.score_lru.hit_ratio`) — the
    /// cache-health gauge the governor and humans read without having to
    /// divide counters themselves.
    score_lru_hit_ratio: Arc<Gauge>,
    cold_start: Arc<Counter>,
    err_bad_tenant: Arc<Counter>,
    err_bad_tag: Arc<Counter>,
    err_empty_clicks: Arc<Counter>,
    /// Per-tenant-tier latency series (`slo.latency_us{tenant_tier=..}`),
    /// indexed by `tenant % 3` to match [`tenant_tier`]. Bound once so the
    /// hot path never formats a labeled name.
    slo_latency: [Arc<Histogram>; 3],
    /// Snapshot version currently installed (`serving.model_version`).
    model_version: Arc<Gauge>,
    /// Hot-swaps applied by this replica (`serving.swaps`).
    swaps: Arc<Counter>,
}

impl ServerMetrics {
    fn bind(registry: MetricsRegistry) -> Self {
        // Publish the tensor compute-pool size so scrapes show what the
        // kernels under this server are configured to use (a pure
        // performance knob: pooled kernels are bit-identical to serial).
        registry.gauge("tensor.pool_threads").set(intellitag_tensor::pool_threads() as f64);
        ServerMetrics {
            requests: registry.counter("serving.requests"),
            request_latency: registry.histogram("serving.request_us"),
            question_latency: registry.histogram("serving.question_us"),
            click_latency: registry.histogram("serving.tag_click_us"),
            cold_start_latency: registry.histogram("serving.cold_start_us"),
            stage_recall: registry.histogram("serving.stage.recall_us"),
            stage_rerank: registry.histogram("serving.stage.rerank_us"),
            stage_score: registry.histogram("serving.stage.score_us"),
            stage_cache: registry.histogram("serving.stage.cache_us"),
            cache_hit: registry.counter("serving.cache.hit"),
            cache_miss: registry.counter("serving.cache.miss"),
            score_lru_hit: registry.counter("serving.score_lru.hits"),
            score_lru_miss: registry.counter("serving.score_lru.misses"),
            score_lru_hit_ratio: registry.gauge("serving.score_lru.hit_ratio"),
            cold_start: registry.counter("serving.cold_start_fallback"),
            err_bad_tenant: registry.counter("serving.error.bad_tenant"),
            err_bad_tag: registry.counter("serving.error.bad_tag"),
            err_empty_clicks: registry.counter("serving.error.empty_clicks"),
            slo_latency: [0u64, 1, 2].map(|t| {
                registry.histogram_labeled(SLO_LATENCY_METRIC, &[(SLO_TIER_LABEL, tenant_tier(t))])
            }),
            model_version: registry.gauge(MODEL_VERSION_METRIC),
            swaps: registry.counter(MODEL_SWAPS_METRIC),
            registry,
        }
    }

    fn tenant_requests(&self, tenant: usize) -> Arc<Counter> {
        self.registry.counter(&format!("serving.requests.tenant_{tenant}"))
    }

    /// Ticks one score-LRU lookup and refreshes the hit-ratio gauge from
    /// the lifetime counters (shared-registry safe: with several replicas
    /// the gauge converges on the aggregate ratio).
    fn record_score_lru(&self, hit: bool) {
        if hit {
            self.score_lru_hit.inc();
        } else {
            self.score_lru_miss.inc();
        }
        let (h, m) = (self.score_lru_hit.get(), self.score_lru_miss.get());
        self.score_lru_hit_ratio.set(h as f64 / (h + m) as f64);
    }

    /// The SLO latency series for a tenant's tier.
    fn slo_latency(&self, tenant: usize) -> &Histogram {
        &self.slo_latency[tenant % 3]
    }
}

/// Score rows memoized across drains, keyed by `(tenant, clicks)`.
type ScoreLru = LruCache<(usize, Vec<usize>), Vec<f32>>;

/// The model server: one recommender + the searchable KB + per-tenant
/// metadata, fully instrumented through a shared [`MetricsRegistry`].
pub struct ModelServer<M: SequenceRecommender> {
    model: M,
    /// Version of the snapshot `model` was loaded from (0 = built directly,
    /// never published). Bumped by [`ModelServer::install_model`].
    model_version: u64,
    kb: KbWarehouse,
    /// Surface text per tag (builds the ES query from clicked tags).
    tag_texts: Vec<String>,
    /// Ground-truth tags per RQ (`asc` relation, drives re-ranking and the
    /// after-question tag recommendation).
    rq_tags: Vec<Vec<usize>>,
    /// Tag inventory per tenant (results never cross tenants).
    tenant_tags: Vec<Vec<usize>>,
    /// Global click counts (cold-start popularity, §V-B).
    click_counts: Vec<usize>,
    /// Tags shown per response.
    pub tags_per_response: usize,
    /// Predicted questions shown per response.
    pub questions_per_response: usize,
    /// Recent raw latencies — bounded, unlike the old `Vec<u64>` log.
    recent_latencies: SampleRing,
    obs: ServerMetrics,
    /// Optional response cache over `(tenant, clicks)` — the paper's §VII
    /// future-work extension ("cache high-frequency data to decrease system
    /// latency").
    cache: Option<ResponseCache<(usize, Vec<usize>), TagClickResponse>>,
    /// Optional cross-drain score-row LRU keyed by `(tenant, clicks)`.
    /// Distinct from the response cache: it memoizes the *model scoring
    /// stage only* (the score row over the tenant's candidate pool), so a
    /// hot tenant repeating the same click prefix across consecutive
    /// micro-batch drains skips the transformer forward while recall and
    /// rerank still run fresh per request.
    score_lru: Option<ScoreLru>,
    /// Optional Q&A matching model re-ranking question recall (the deployed
    /// system's RoBERTa matcher, §V-A).
    qa_matcher: Option<QaMatcher>,
}

impl<M: SequenceRecommender> ModelServer<M> {
    /// Assembles a server with its own private metrics registry; use
    /// [`ModelServer::with_metrics`] to share one across components.
    pub fn new(
        model: M,
        kb: KbWarehouse,
        tag_texts: Vec<String>,
        rq_tags: Vec<Vec<usize>>,
        tenant_tags: Vec<Vec<usize>>,
        click_counts: Vec<usize>,
    ) -> Self {
        assert_eq!(kb.len(), rq_tags.len(), "one tag list per RQ");
        assert_eq!(tag_texts.len(), click_counts.len(), "one count per tag");
        ModelServer {
            model,
            model_version: 0,
            kb,
            tag_texts,
            rq_tags,
            tenant_tags,
            click_counts,
            tags_per_response: 5,
            questions_per_response: 3,
            recent_latencies: SampleRing::new(RECENT_LATENCY_WINDOW),
            obs: ServerMetrics::bind(MetricsRegistry::new()),
            cache: None,
            score_lru: None,
            qa_matcher: None,
        }
    }

    /// Rebinds the server onto a shared metrics registry (e.g. one also fed
    /// by the training loops and the online simulator). Call before serving
    /// traffic — metrics recorded so far stay in the old registry.
    pub fn with_metrics(mut self, registry: MetricsRegistry) -> Self {
        self.obs = ServerMetrics::bind(registry);
        self.obs.model_version.set(self.model_version as f64);
        self
    }

    /// Tags this replica with the version of the snapshot its model was
    /// loaded from, so `serving.model_version` and the gateway's
    /// `X-Model-Version` header are truthful from the first request.
    pub fn with_model_version(mut self, version: u64) -> Self {
        self.model_version = version;
        self.obs.model_version.set(version as f64);
        self
    }

    /// The version of the snapshot currently serving (0 = unversioned).
    pub fn model_version(&self) -> u64 {
        self.model_version
    }

    /// Installs a freshly loaded model at a drain boundary (the epoch-fenced
    /// hot-swap path — [`crate::ShardedServer::spawn_swappable`] calls this
    /// strictly between micro-batch drains).
    ///
    /// Besides replacing the scoring model, this invalidates both the
    /// response cache and the cross-drain score-row LRU: their entries embed
    /// the *old* model's output, and serving them after the swap would
    /// silently mix versions — exactly the staleness the epoch fence exists
    /// to rule out. Post-swap responses are therefore byte-identical to a
    /// server freshly built from the installed snapshot.
    pub fn install_model(&mut self, model: M, version: u64) {
        self.model = model;
        self.model_version = version;
        if let Some(cache) = &self.cache {
            cache.clear();
        }
        if let Some(lru) = &self.score_lru {
            lru.clear();
        }
        self.obs.model_version.set(version as f64);
        self.obs.swaps.inc();
    }

    /// Attaches a trained Q&A matcher; question recall is then re-ranked by
    /// match score instead of raw BM25 order. The KB's RQ texts are encoded
    /// into the matcher's memo here, once — no request pays a first-touch
    /// encode, and the question path never re-encodes the KB.
    pub fn with_qa_matcher(mut self, matcher: QaMatcher) -> Self {
        matcher.prewarm((0..self.kb.len()).map(|rq| self.kb.pair(rq).question.as_str()));
        self.qa_matcher = Some(matcher);
        self
    }

    /// Enables the tag-click response cache (§VII future work). Call after
    /// construction; a model refresh should recreate the server (or the
    /// cache) since cached responses embed model output.
    pub fn with_cache(mut self, capacity: usize) -> Self {
        self.cache = Some(ResponseCache::new(capacity));
        self
    }

    /// Enables the cross-drain score-row LRU. Scores are a deterministic
    /// function of `(tenant, clicks)` for a fixed checkpoint, so serving a
    /// cached row is bit-identical to recomputing it — repeat click
    /// prefixes from hot tenants skip the model forward entirely. Like the
    /// response cache, a model refresh must recreate the server (or call
    /// the LRU's `clear`) since rows embed model output.
    pub fn with_score_lru(mut self, capacity: usize) -> Self {
        self.score_lru = Some(LruCache::new(capacity));
        self
    }

    /// Cache hit rate so far, if the cache is enabled.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        self.cache.as_ref().map(ResponseCache::hit_rate)
    }

    /// `(hits, misses)` of the score-row LRU, if enabled.
    pub fn score_lru_stats(&self) -> Option<(u64, u64)> {
        self.score_lru.as_ref().map(LruCache::stats)
    }

    /// The wrapped recommender.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The server's metrics registry (counters, gauges, stage histograms).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs.registry
    }

    /// Snapshot of the end-to-end request latency histogram (µs) — the
    /// bounded replacement for aggregating over a raw latency log.
    pub fn latency_snapshot(&self) -> HistogramSnapshot {
        self.obs.request_latency.snapshot()
    }

    /// The most recent request latencies (µs), capped at
    /// [`RECENT_LATENCY_WINDOW`] samples. Long-running simulations no
    /// longer grow memory with request count; use
    /// [`ModelServer::latency_snapshot`] for whole-run statistics.
    pub fn latencies_us(&self) -> Vec<u64> {
        self.recent_latencies.snapshot()
    }

    /// Records the end of a request on both the per-path and the combined
    /// histograms plus the recent-sample ring, and ticks the
    /// `serving.requests` total; returns the latency in µs. Every public
    /// handler exit — including degraded and empty responses — funnels
    /// through here, so the counter reconciles exactly against whatever
    /// front (gateway, sharded queue) is driving this server.
    fn finish_request(&self, tenant: usize, timer: SpanTimer, path: &Histogram) -> u64 {
        self.finish_request_us(tenant, timer.elapsed_us(), path)
    }

    /// [`Self::finish_request`] for callers that already measured the
    /// latency — the batched click path finishes many requests off one
    /// shared timer.
    fn finish_request_us(&self, tenant: usize, us: u64, path: &Histogram) -> u64 {
        path.record(us);
        self.obs.request_latency.record(us);
        self.obs.slo_latency(tenant).record(us);
        self.obs.requests.inc();
        self.recent_latencies.push(us);
        us
    }

    /// Cold-start tags for a tenant: most frequently clicked (§V-B),
    /// counted as a `serving.cold_start_fallback`. An out-of-range tenant
    /// degrades to an empty result (plus an error counter) instead of
    /// panicking. As a top-level request path it ticks `serving.requests`
    /// and records into `serving.cold_start_us` / `serving.request_us` —
    /// the in-question fallback uses [`Self::cold_start_inner`] and is
    /// accounted once, as a question.
    pub fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        let timer = SpanTimer::start();
        self.obs.tenant_requests(tenant).inc();
        let tags = self.cold_start_inner(tenant);
        self.finish_request(tenant, timer, &self.obs.cold_start_latency);
        tags
    }

    /// The cold-start lookup without request-level accounting.
    fn cold_start_inner(&self, tenant: usize) -> Vec<usize> {
        let Some(pool) = self.tenant_tags.get(tenant) else {
            self.obs.err_bad_tenant.inc();
            return Vec::new();
        };
        self.obs.cold_start.inc();
        self.popularity_tags(pool)
    }

    /// The popularity ranking behind the cold-start fallback, without the
    /// fallback counter — also used to top up short tag lists on answered
    /// questions, which is not a cold start.
    fn popularity_tags(&self, pool: &[usize]) -> Vec<usize> {
        let mut pool = pool.to_vec();
        pool.sort_by(|&a, &b| {
            let count = |t: usize| self.click_counts.get(t).copied().unwrap_or(0);
            count(b).cmp(&count(a)).then(a.cmp(&b))
        });
        pool.truncate(self.tags_per_response);
        pool
    }

    /// Handles a typed question: recall + best match + `asc` tags. With a
    /// Q&A matcher attached, the BM25 recall set is re-ranked by match score
    /// (recall-then-rerank, exactly the deployed §V-A pipeline).
    pub fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        self.handle_question_inner(tenant, question, None)
    }

    /// [`Self::handle_question`] recording per-stage spans into `trace`.
    pub fn handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> QuestionResponse {
        self.handle_question_inner(tenant, question, Some(trace))
    }

    fn handle_question_inner(
        &self,
        tenant: usize,
        question: &str,
        trace: Option<&TraceHandle>,
    ) -> QuestionResponse {
        let timer = SpanTimer::start();
        self.obs.tenant_requests(tenant).inc();
        if tenant >= self.tenant_tags.len() {
            self.obs.err_bad_tenant.inc();
            let latency_us = self.finish_request(tenant, timer, &self.obs.question_latency);
            return QuestionResponse {
                rq: None,
                answer: None,
                recommended_tags: Vec::new(),
                latency_us,
            };
        }
        let best = match &self.qa_matcher {
            Some(matcher) => {
                let recall_span = self.obs.stage_recall.span();
                let recall = trace_stage(trace, "recall", || {
                    self.kb.recall_for_tenant(question, tenant, 10)
                });
                recall_span.finish();
                let rerank_span = self.obs.stage_rerank.span();
                // Only the top match is served, so skip the full sort.
                let top = trace_stage(trace, "rerank", || {
                    matcher.rerank_top1(
                        question,
                        recall.iter().map(|h| (h.doc, self.kb.pair(h.doc).question.as_str())),
                    )
                });
                rerank_span.finish();
                top.map(|rq| (rq, self.kb.pair(rq)))
            }
            None => {
                let recall_span = self.obs.stage_recall.span();
                let best = trace_stage(trace, "recall", || self.kb.best_match(question, tenant));
                recall_span.finish();
                best
            }
        };
        let (rq, answer, recommended_tags) = match best {
            Some((rq, pair)) => {
                // Recommend the matched question's own tags (asc relation),
                // backfilled with cold-start popularity.
                let mut tags = self.rq_tags[rq].clone();
                for t in self.popularity_tags(&self.tenant_tags[tenant]) {
                    if tags.len() >= self.tags_per_response {
                        break;
                    }
                    if !tags.contains(&t) {
                        tags.push(t);
                    }
                }
                tags.truncate(self.tags_per_response);
                (Some(rq), Some(pair.answer.clone()), tags)
            }
            None => (None, None, self.cold_start_inner(tenant)),
        };
        let latency_us = self.finish_request(tenant, timer, &self.obs.question_latency);
        QuestionResponse { rq, answer, recommended_tags, latency_us }
    }

    /// An empty tag-click response for degraded requests (bad tenant, no
    /// usable clicks) — the serving path never panics on malformed input.
    fn degraded_click_response(&self, tenant: usize, timer: SpanTimer) -> TagClickResponse {
        let latency_us = self.finish_request(tenant, timer, &self.obs.click_latency);
        TagClickResponse {
            recommended_tags: Vec::new(),
            predicted_questions: Vec::new(),
            latency_us,
        }
    }

    /// Handles a tag click: the model ranks next tags (restricted to the
    /// tenant's inventory) and the click history becomes an ES query whose
    /// recall is re-ranked by tag overlap (§V-A).
    ///
    /// Malformed requests degrade gracefully: empty click lists, unknown
    /// tenants and unknown tag ids produce an empty response (and error
    /// counters) rather than a panic in the hot serving path.
    pub fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        self.handle_tag_click_inner(tenant, clicks, None)
    }

    /// [`Self::handle_tag_click`] recording per-stage spans into `trace`.
    pub fn handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> TagClickResponse {
        self.handle_tag_click_inner(tenant, clicks, Some(trace))
    }

    fn handle_tag_click_inner(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: Option<&TraceHandle>,
    ) -> TagClickResponse {
        let timer = SpanTimer::start();
        self.obs.tenant_requests(tenant).inc();
        if clicks.is_empty() {
            self.obs.err_empty_clicks.inc();
            return self.degraded_click_response(tenant, timer);
        }
        if tenant >= self.tenant_tags.len() {
            self.obs.err_bad_tenant.inc();
            return self.degraded_click_response(tenant, timer);
        }
        // Unknown tag ids can't be looked up in the tag-text table; drop
        // them (counted) and serve from the remaining clicks.
        let valid: Vec<usize> =
            clicks.iter().copied().filter(|&t| t < self.tag_texts.len()).collect();
        if valid.len() < clicks.len() {
            self.obs.err_bad_tag.add((clicks.len() - valid.len()) as u64);
            if valid.is_empty() {
                return self.degraded_click_response(tenant, timer);
            }
        }
        let clicks = &valid[..];

        if let Some(cache) = &self.cache {
            let cache_span = self.obs.stage_cache.span();
            let key = (tenant, clicks.to_vec());
            let cached = trace_stage(trace, "cache", || cache.get(&key));
            cache_span.finish();
            if let Some(mut resp) = cached {
                self.obs.cache_hit.inc();
                resp.latency_us = self.finish_request(tenant, timer, &self.obs.click_latency);
                return resp;
            }
            self.obs.cache_miss.inc();
        }

        // One sorted lookup set per request: membership checks drop from
        // O(clicks) scans per candidate to O(log clicks).
        let click_set = sorted_click_set(clicks);

        // --- next-tag recommendation (model scoring stage) ----------------
        let pool = &self.tenant_tags[tenant];
        let score_span = self.obs.stage_score.span();
        let scores = trace_stage(trace, "score", || self.scored_row(tenant, clicks, pool));
        score_span.finish();
        let recommended_tags = self.recommend_from_scores(&click_set, pool, scores);

        // --- predicted questions (recall stage + overlap rerank stage) ----
        // Query = concatenated clicked-tag texts (paper: "the user's
        // successive clicked tags are composed as a query").
        let query = self.click_query(clicks);
        let recall_span = self.obs.stage_recall.span();
        let recall = trace_stage(trace, "recall", || self.kb.recall_for_tenant(&query, tenant, 20));
        recall_span.finish();
        let rerank_span = self.obs.stage_rerank.span();
        let predicted_questions =
            trace_stage(trace, "rerank", || self.rerank_recall(&click_set, &recall));
        rerank_span.finish();

        let latency_us = self.finish_request(tenant, timer, &self.obs.click_latency);
        let resp = TagClickResponse { recommended_tags, predicted_questions, latency_us };
        if let Some(cache) = &self.cache {
            cache.put((tenant, clicks.to_vec()), resp.clone());
        }
        resp
    }

    /// One score row for `(tenant, clicks)` over the tenant's pool, via the
    /// score-row LRU when enabled. Scores are deterministic for a fixed
    /// checkpoint, so a cached row is bit-identical to a fresh forward.
    fn scored_row(&self, tenant: usize, clicks: &[usize], pool: &[usize]) -> Vec<f32> {
        let Some(lru) = &self.score_lru else {
            return self.model.score_candidates(clicks, pool);
        };
        let key = (tenant, clicks.to_vec());
        if let Some(row) = lru.get(&key) {
            self.obs.record_score_lru(true);
            return row;
        }
        self.obs.record_score_lru(false);
        let row = self.model.score_candidates(clicks, pool);
        lru.put(key, row.clone());
        row
    }

    /// The ES query for a click history: concatenated clicked-tag texts
    /// (paper: "the user's successive clicked tags are composed as a query").
    fn click_query(&self, clicks: &[usize]) -> String {
        clicks.iter().map(|&t| self.tag_texts[t].as_str()).collect::<Vec<_>>().join(" ")
    }

    /// Ranks a candidate pool by model score, dropping already-clicked tags.
    /// Shared by the serial and batched click paths so both rank identically.
    fn recommend_from_scores(
        &self,
        click_set: &[usize],
        pool: &[usize],
        scores: Vec<f32>,
    ) -> Vec<usize> {
        let clicked = |t: usize| click_set.binary_search(&t).is_ok();
        let mut ranked: Vec<(usize, f32)> =
            pool.iter().copied().zip(scores).filter(|&(t, _)| !clicked(t)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        ranked.into_iter().take(self.tags_per_response).map(|(t, _)| t).collect()
    }

    /// Overlap-reranks BM25 recall for a click history (§V-A). Shared by
    /// the serial and batched click paths so both rerank identically.
    fn rerank_recall(&self, click_set: &[usize], recall: &[Hit]) -> Vec<usize> {
        let clicked = |t: usize| click_set.binary_search(&t).is_ok();
        let max_bm25 = recall.first().map_or(1.0, |h| h.score.max(1e-6));
        let mut rescored: Vec<(usize, f32)> = recall
            .iter()
            .map(|h| {
                let overlap = self.rq_tags[h.doc].iter().filter(|&&t| clicked(t)).count() as f32;
                (h.doc, h.score / max_bm25 + 2.0 * overlap)
            })
            .collect();
        rescored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        rescored.into_iter().take(self.questions_per_response).map(|(q, _)| q).collect()
    }

    /// Handles a micro-batch of tag clicks with one batched score call.
    ///
    /// Per request this is bit-exact with [`Self::handle_tag_click`]
    /// (`same_content`-identical responses): validation, cache lookups and
    /// ranking run per request exactly as in the serial path, while the
    /// model forward is issued once via
    /// [`SequenceRecommender::score_candidates_batch`] over the deduplicated
    /// `(tenant, clicks)` set and BM25 recall is shared across requests that
    /// produce the same query. Per-request counters and the per-path
    /// histograms tick once per request, so registry reconciliation
    /// (`serving.requests` == requests served) is unchanged; stage
    /// histograms record the amortized per-request share of the shared
    /// stages.
    pub fn handle_tag_click_batch(&self, reqs: &[(usize, Vec<usize>)]) -> Vec<TagClickResponse> {
        self.handle_tag_click_batch_inner(reqs, &[])
    }

    /// [`Self::handle_tag_click_batch`] with per-request tracing: `traces`
    /// runs parallel to `reqs` (missing/short entries mean "untraced").
    /// Traced requests get per-stage spans; the shared batched forward is
    /// recorded per request as its amortized share, mirroring the
    /// `serving.stage.score_us` accounting.
    pub fn handle_tag_click_batch_traced(
        &self,
        reqs: &[(usize, Vec<usize>)],
        traces: &[Option<TraceHandle>],
    ) -> Vec<TagClickResponse> {
        self.handle_tag_click_batch_inner(reqs, traces)
    }

    fn handle_tag_click_batch_inner(
        &self,
        reqs: &[(usize, Vec<usize>)],
        traces: &[Option<TraceHandle>],
    ) -> Vec<TagClickResponse> {
        use std::collections::HashMap;

        struct Pending {
            idx: usize,
            tenant: usize,
            clicks: Vec<usize>,
            timer: SpanTimer,
            score_row: usize,
            trace: Option<TraceHandle>,
        }

        let trace_for = |idx: usize| traces.get(idx).and_then(Option::as_ref);
        let mut out: Vec<Option<TagClickResponse>> = reqs.iter().map(|_| None).collect();
        let mut pending: Vec<Pending> = Vec::new();
        // Identical (tenant, clicks) requests share one scored row: the
        // forward is deterministic, so one row serves them all.
        let mut score_rows: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut uniq: Vec<(usize, Vec<usize>)> = Vec::new();

        // --- per-request validation + cache, exactly as the serial path ---
        for (idx, (tenant, raw_clicks)) in reqs.iter().enumerate() {
            let tenant = *tenant;
            let timer = SpanTimer::start();
            self.obs.tenant_requests(tenant).inc();
            if raw_clicks.is_empty() {
                self.obs.err_empty_clicks.inc();
                out[idx] = Some(self.degraded_click_response(tenant, timer));
                continue;
            }
            if tenant >= self.tenant_tags.len() {
                self.obs.err_bad_tenant.inc();
                out[idx] = Some(self.degraded_click_response(tenant, timer));
                continue;
            }
            let valid: Vec<usize> =
                raw_clicks.iter().copied().filter(|&t| t < self.tag_texts.len()).collect();
            if valid.len() < raw_clicks.len() {
                self.obs.err_bad_tag.add((raw_clicks.len() - valid.len()) as u64);
                if valid.is_empty() {
                    out[idx] = Some(self.degraded_click_response(tenant, timer));
                    continue;
                }
            }
            if let Some(cache) = &self.cache {
                let cache_span = self.obs.stage_cache.span();
                let cached =
                    trace_stage(trace_for(idx), "cache", || cache.get(&(tenant, valid.clone())));
                cache_span.finish();
                if let Some(mut resp) = cached {
                    self.obs.cache_hit.inc();
                    resp.latency_us = self.finish_request(tenant, timer, &self.obs.click_latency);
                    out[idx] = Some(resp);
                    continue;
                }
                self.obs.cache_miss.inc();
            }
            let score_row = *score_rows.entry((tenant, valid.clone())).or_insert_with(|| {
                uniq.push((tenant, valid.clone()));
                uniq.len() - 1
            });
            pending.push(Pending {
                idx,
                tenant,
                clicks: valid,
                timer,
                score_row,
                trace: trace_for(idx).cloned(),
            });
        }

        // --- one batched forward over every unique (clicks, pool) ---------
        // The score-row LRU is consulted first: rows remembered from earlier
        // drains (or the serial path — both forwards are bit-identical) drop
        // out of the stacked forward entirely, so a hot tenant repeating its
        // click prefix shrinks the batch instead of re-deriving known rows.
        let mut uniq_scores: Vec<Option<Vec<f32>>> = vec![None; uniq.len()];
        if !pending.is_empty() {
            let score_timer = SpanTimer::start();
            // Per-trace origin offsets at the start of the shared forward;
            // each member's "score" span covers its amortized share.
            let trace_starts: Vec<Option<u64>> =
                pending.iter().map(|p| p.trace.as_ref().map(TraceHandle::now_us)).collect();
            if let Some(lru) = &self.score_lru {
                for (row, key) in uniq.iter().enumerate() {
                    if let Some(scores) = lru.get(key) {
                        self.obs.record_score_lru(true);
                        uniq_scores[row] = Some(scores);
                    } else {
                        self.obs.record_score_lru(false);
                    }
                }
            }
            let missing: Vec<usize> =
                (0..uniq.len()).filter(|&r| uniq_scores[r].is_none()).collect();
            if !missing.is_empty() {
                let batch: Vec<(&[usize], &[usize])> = missing
                    .iter()
                    .map(|&r| {
                        let (tenant, clicks) = &uniq[r];
                        (clicks.as_slice(), self.tenant_tags[*tenant].as_slice())
                    })
                    .collect();
                let fresh = self.model.score_candidates_batch(&batch);
                for (&r, row) in missing.iter().zip(fresh) {
                    if let Some(lru) = &self.score_lru {
                        lru.put(uniq[r].clone(), row.clone());
                    }
                    uniq_scores[r] = Some(row);
                }
            }
            let share = score_timer.elapsed_us() / pending.len() as u64;
            for (p, start) in pending.iter().zip(trace_starts) {
                self.obs.stage_score.record(share);
                if let (Some(trace), Some(t0)) = (&p.trace, start) {
                    trace.record("score", t0, t0 + share);
                }
            }
        }

        // --- assemble responses, sharing recall across equal queries ------
        let mut recall_memo: HashMap<(usize, String), Vec<Hit>> = HashMap::new();
        for p in pending {
            let click_set = sorted_click_set(&p.clicks);
            let pool = &self.tenant_tags[p.tenant];
            let scores = uniq_scores[p.score_row]
                .clone()
                .expect("every pending request's score row was resolved");
            let recommended_tags = self.recommend_from_scores(&click_set, pool, scores);

            let query = self.click_query(&p.clicks);
            let recall_span = self.obs.stage_recall.span();
            let recall = trace_stage(p.trace.as_ref(), "recall", || {
                recall_memo.entry((p.tenant, query)).or_insert_with_key(|(tenant, query)| {
                    self.kb.recall_for_tenant(query, *tenant, 20)
                })
            });
            recall_span.finish();
            let rerank_span = self.obs.stage_rerank.span();
            let predicted_questions =
                trace_stage(p.trace.as_ref(), "rerank", || self.rerank_recall(&click_set, recall));
            rerank_span.finish();

            let latency_us = self.finish_request(p.tenant, p.timer, &self.obs.click_latency);
            let resp = TagClickResponse { recommended_tags, predicted_questions, latency_us };
            if let Some(cache) = &self.cache {
                cache.put((p.tenant, p.clicks), resp.clone());
            }
            out[p.idx] = Some(resp);
        }
        out.into_iter().map(|r| r.expect("every request produced a response")).collect()
    }
}

/// Sorted click list for O(log n) membership checks during ranking.
fn sorted_click_set(clicks: &[usize]) -> Vec<usize> {
    let mut set = clicks.to_vec();
    set.sort_unstable();
    set
}

/// Runs `f`, recording it as a named span on `trace` when one is attached.
/// The untraced path pays a single `Option` branch — no clock reads.
fn trace_stage<R>(trace: Option<&TraceHandle>, name: &'static str, f: impl FnOnce() -> R) -> R {
    match trace {
        None => f(),
        Some(t) => {
            let t0 = t.now_us();
            let out = f();
            t.record(name, t0, t.now_us());
            out
        }
    }
}

impl<M: SequenceRecommender> TagService for ModelServer<M> {
    fn handle_question(&self, tenant: usize, question: &str) -> QuestionResponse {
        ModelServer::handle_question(self, tenant, question)
    }

    fn handle_tag_click(&self, tenant: usize, clicks: &[usize]) -> TagClickResponse {
        ModelServer::handle_tag_click(self, tenant, clicks)
    }

    fn cold_start_tags(&self, tenant: usize) -> Vec<usize> {
        ModelServer::cold_start_tags(self, tenant)
    }

    fn metrics(&self) -> &MetricsRegistry {
        ModelServer::metrics(self)
    }

    fn latency_snapshot(&self) -> HistogramSnapshot {
        ModelServer::latency_snapshot(self)
    }

    fn policy(&self) -> String {
        self.model.name().to_string()
    }

    fn model_version(&self) -> u64 {
        ModelServer::model_version(self)
    }

    fn handle_question_traced(
        &self,
        tenant: usize,
        question: &str,
        trace: &TraceHandle,
    ) -> QuestionResponse {
        ModelServer::handle_question_traced(self, tenant, question, trace)
    }

    fn handle_tag_click_traced(
        &self,
        tenant: usize,
        clicks: &[usize],
        trace: &TraceHandle,
    ) -> TagClickResponse {
        ModelServer::handle_tag_click_traced(self, tenant, clicks, trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_baselines::Popularity;

    fn server() -> ModelServer<Popularity> {
        let mut kb = KbWarehouse::new();
        kb.add_pair("how to change password", "settings > security", 0);
        kb.add_pair("how to apply for etc card", "apply in the etc menu", 0);
        kb.add_pair("where to cancel the order", "orders > cancel", 1);
        // tags: 0 change, 1 password, 2 apply, 3 etc card, 4 cancel, 5 order
        let tag_texts = vec![
            "change".into(),
            "password".into(),
            "apply".into(),
            "etc card".into(),
            "cancel".into(),
            "order".into(),
        ];
        let rq_tags = vec![vec![0, 1], vec![2, 3], vec![4, 5]];
        let tenant_tags = vec![vec![0, 1, 2, 3], vec![4, 5]];
        let clicks = vec![5, 9, 3, 7, 2, 4];
        let model = Popularity::from_counts(&clicks);
        ModelServer::new(model, kb, tag_texts, rq_tags, tenant_tags, clicks)
    }

    fn counter_value(s: &ModelServer<Popularity>, name: &str) -> u64 {
        s.metrics().counter(name).get()
    }

    #[test]
    fn question_path_returns_answer_and_asc_tags() {
        let s = server();
        let r = s.handle_question(0, "i need to change my password");
        assert_eq!(r.rq, Some(0));
        assert!(r.answer.unwrap().contains("security"));
        // asc tags of RQ 0 come first
        assert_eq!(&r.recommended_tags[..2], &[0, 1]);
    }

    #[test]
    fn unknown_question_falls_back_to_cold_start() {
        let s = server();
        let r = s.handle_question(0, "zzz qqq completely unknown");
        assert_eq!(r.rq, None);
        assert!(r.answer.is_none());
        assert_eq!(r.recommended_tags, s.cold_start_tags(0));
        assert!(counter_value(&s, "serving.cold_start_fallback") >= 1);
    }

    #[test]
    fn cold_start_ranks_by_click_frequency() {
        let s = server();
        // Tenant 0 pool {0,1,2,3} with counts {5,9,3,7} -> 1,3,0,2
        assert_eq!(s.cold_start_tags(0), vec![1, 3, 0, 2]);
    }

    #[test]
    fn tag_click_restricts_to_tenant_and_excludes_clicked() {
        let s = server();
        let r = s.handle_tag_click(0, &[1]);
        assert!(!r.recommended_tags.contains(&1), "clicked tag excluded");
        assert!(r.recommended_tags.iter().all(|t| [0, 2, 3].contains(t)));
    }

    #[test]
    fn tag_click_predicts_matching_question() {
        let s = server();
        let r = s.handle_tag_click(0, &[0, 1]); // "change password"
        assert_eq!(r.predicted_questions.first(), Some(&0));
    }

    #[test]
    fn cache_serves_repeated_clicks() {
        let s = server().with_cache(16);
        let a = s.handle_tag_click(0, &[0, 1]);
        let b = s.handle_tag_click(0, &[0, 1]);
        assert_eq!(a.recommended_tags, b.recommended_tags);
        assert_eq!(a.predicted_questions, b.predicted_questions);
        assert_eq!(s.cache_hit_rate(), Some(0.5));
        assert_eq!(counter_value(&s, "serving.cache.hit"), 1);
        assert_eq!(counter_value(&s, "serving.cache.miss"), 1);
        // Different key misses.
        let _ = s.handle_tag_click(0, &[1]);
        assert!(s.cache_hit_rate().unwrap() < 0.5);
        assert_eq!(counter_value(&s, "serving.cache.miss"), 2);
    }

    #[test]
    fn qa_matcher_reranks_question_recall() {
        use crate::qa_matcher::{QaMatcher, QaMatcherConfig};
        // Train a matcher whose pairs bind "passphrase" queries to RQ 0.
        let corpus = vec![
            "how to change password".to_string(),
            "how to apply for etc card".to_string(),
            "where to cancel the order".to_string(),
        ];
        let pairs = vec![
            ("change my password now".to_string(), corpus[0].clone()),
            ("password change how".to_string(), corpus[0].clone()),
            ("apply etc card".to_string(), corpus[1].clone()),
            ("etc card application".to_string(), corpus[1].clone()),
            ("cancel order please".to_string(), corpus[2].clone()),
            ("order cancel where".to_string(), corpus[2].clone()),
        ];
        let matcher = QaMatcher::train(
            &pairs,
            &corpus,
            QaMatcherConfig {
                train: crate::TrainConfig { epochs: 20, lr: 1e-2, ..Default::default() },
                ..Default::default()
            },
        );
        let s = server().with_qa_matcher(matcher);
        let r = s.handle_question(0, "password change how please");
        assert_eq!(r.rq, Some(0), "matcher should pick the password RQ");
        assert!(r.answer.unwrap().contains("security"));
        // The rerank stage ran and was timed.
        assert_eq!(s.metrics().histogram("serving.stage.rerank_us").count(), 1);
    }

    #[test]
    fn batched_clicks_match_serial_responses() {
        // Same server, same requests: the batched path must produce
        // `same_content`-identical responses to one-at-a-time serving,
        // including degraded requests mixed into the batch.
        let reqs: Vec<(usize, Vec<usize>)> = vec![
            (0, vec![0, 1]),
            (1, vec![4]),
            (0, vec![]),       // degraded: empty clicks
            (99, vec![0]),     // degraded: bad tenant
            (0, vec![1, 999]), // bad tag dropped, still served
            (0, vec![0, 1]),   // duplicate of the first request
            (0, vec![999]),    // degraded: all clicks invalid
            (1, vec![5, 4]),
        ];
        let serial_server = server();
        let serial: Vec<TagClickResponse> =
            reqs.iter().map(|(t, c)| serial_server.handle_tag_click(*t, c)).collect();
        let batch_server = server();
        let batched = batch_server.handle_tag_click_batch(&reqs);
        assert_eq!(batched.len(), serial.len());
        for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
            assert!(b.same_content(s), "request {i}: batched {b:?} != serial {s:?}");
        }
        // Request accounting is per-request, not per-batch.
        assert_eq!(counter_value(&batch_server, "serving.requests"), reqs.len() as u64);
        assert_eq!(
            batch_server.metrics().histogram("serving.tag_click_us").count(),
            reqs.len() as u64
        );
        assert_eq!(counter_value(&batch_server, "serving.error.empty_clicks"), 1);
        assert_eq!(counter_value(&batch_server, "serving.error.bad_tenant"), 1);
        assert_eq!(counter_value(&batch_server, "serving.error.bad_tag"), 2);
        // Served (non-degraded) requests each tick the shared stages.
        assert_eq!(batch_server.metrics().histogram("serving.stage.score_us").count(), 5);
        assert_eq!(batch_server.metrics().histogram("serving.stage.recall_us").count(), 5);
        assert_eq!(batch_server.metrics().histogram("serving.stage.rerank_us").count(), 5);
    }

    #[test]
    fn batched_clicks_with_cache_hit_and_fill() {
        let s = server().with_cache(16);
        let warm = s.handle_tag_click(0, &[0, 1]);
        let batched = s.handle_tag_click_batch(&[(0, vec![0, 1]), (0, vec![2])]);
        // First request hits the warm cache entry; second misses and fills.
        assert!(batched[0].same_content(&warm));
        assert_eq!(counter_value(&s, "serving.cache.hit"), 1);
        assert_eq!(counter_value(&s, "serving.cache.miss"), 2);
        let again = s.handle_tag_click(0, &[2]);
        assert!(again.same_content(&batched[1]), "batch-computed responses are cached");
        assert_eq!(counter_value(&s, "serving.cache.hit"), 2);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let s = server();
        assert!(s.handle_tag_click_batch(&[]).is_empty());
        assert_eq!(counter_value(&s, "serving.requests"), 0);
        assert_eq!(s.metrics().histogram("serving.stage.score_us").count(), 0);
    }

    #[test]
    fn question_path_does_not_reencode_kb_per_request() {
        use crate::qa_matcher::{QaMatcher, QaMatcherConfig};
        let corpus = vec![
            "how to change password".to_string(),
            "how to apply for etc card".to_string(),
            "where to cancel the order".to_string(),
        ];
        let pairs = vec![
            ("change my password now".to_string(), corpus[0].clone()),
            ("apply etc card".to_string(), corpus[1].clone()),
            ("cancel order please".to_string(), corpus[2].clone()),
        ];
        let matcher = QaMatcher::train(&pairs, &corpus, QaMatcherConfig::default());
        let s = server().with_qa_matcher(matcher);
        // with_qa_matcher prewarmed all 3 KB RQs.
        let prewarmed = s.qa_matcher.as_ref().unwrap().encode_calls();
        assert_eq!(prewarmed, 3);
        let questions = 5u64;
        for i in 0..questions {
            let _ = s.handle_question(0, &format!("change password please {i}"));
        }
        // Exactly one encode per question (the query side); the KB candidates
        // all come from the memo.
        assert_eq!(s.qa_matcher.as_ref().unwrap().encode_calls(), prewarmed + questions);
        assert!(s.qa_matcher.as_ref().unwrap().cache_hits() > 0);
    }

    /// Popularity wrapper that counts how many rows the model actually
    /// scored — the quantity the score-row LRU exists to reduce.
    struct CountingModel {
        inner: Popularity,
        scored_rows: std::cell::Cell<usize>,
    }

    impl CountingModel {
        fn new(inner: Popularity) -> Self {
            CountingModel { inner, scored_rows: std::cell::Cell::new(0) }
        }
    }

    impl intellitag_baselines::SequenceRecommender for CountingModel {
        fn name(&self) -> &str {
            self.inner.name()
        }

        fn score_all(&self, context: &[usize]) -> Vec<f32> {
            self.inner.score_all(context)
        }

        fn score_candidates(&self, context: &[usize], candidates: &[usize]) -> Vec<f32> {
            self.scored_rows.set(self.scored_rows.get() + 1);
            self.inner.score_candidates(context, candidates)
        }

        fn score_candidates_batch(&self, reqs: &[(&[usize], &[usize])]) -> Vec<Vec<f32>> {
            self.scored_rows.set(self.scored_rows.get() + reqs.len());
            self.inner.score_candidates_batch(reqs)
        }
    }

    fn counting_server() -> ModelServer<CountingModel> {
        let plain = server();
        let mut kb = KbWarehouse::new();
        kb.add_pair("how to change password", "settings > security", 0);
        kb.add_pair("how to apply for etc card", "apply in the etc menu", 0);
        kb.add_pair("where to cancel the order", "orders > cancel", 1);
        let clicks = vec![5, 9, 3, 7, 2, 4];
        ModelServer::new(
            CountingModel::new(Popularity::from_counts(&clicks)),
            kb,
            plain.tag_texts.clone(),
            plain.rq_tags.clone(),
            plain.tenant_tags.clone(),
            clicks,
        )
    }

    #[test]
    fn score_lru_skips_repeat_forwards_across_drains() {
        // Hot-tenant skew: one tenant repeats the same short click prefixes
        // drain after drain. With the score-row LRU, the second drain's
        // stacked forward must shrink to only the unseen rows.
        let hot: Vec<(usize, Vec<usize>)> =
            vec![(0, vec![0, 1]), (0, vec![1]), (0, vec![0, 1]), (1, vec![4]), (0, vec![1])];
        let s = counting_server().with_score_lru(16);

        let first = s.handle_tag_click_batch(&hot);
        let after_first = s.model().scored_rows.get();
        assert_eq!(after_first, 3, "first drain scores each unique (tenant, clicks) once");
        assert_eq!(s.score_lru_stats(), Some((0, 3)));

        let second = s.handle_tag_click_batch(&hot);
        let after_second = s.model().scored_rows.get();
        assert_eq!(after_second, after_first, "repeat drain must not re-run any forward");
        assert_eq!(s.score_lru_stats(), Some((3, 3)));
        assert_eq!(s.metrics().counter("serving.score_lru.hits").get(), 3);
        assert_eq!(s.metrics().counter("serving.score_lru.misses").get(), 3);
        assert_eq!(s.metrics().gauge("serving.score_lru.hit_ratio").get(), 0.5);

        // Cached rows must not change the answers.
        for (i, (a, b)) in first.iter().zip(&second).enumerate() {
            assert!(a.same_content(b), "request {i} diverged when served from the score LRU");
        }

        // A drain mixing old and new prefixes scores only the new ones.
        let mixed: Vec<(usize, Vec<usize>)> = vec![(0, vec![0, 1]), (0, vec![2]), (1, vec![5])];
        let _ = s.handle_tag_click_batch(&mixed);
        assert_eq!(s.model().scored_rows.get(), after_second + 2, "only unseen rows forwarded");
    }

    #[test]
    fn score_lru_serves_serial_path_and_matches_uncached() {
        let cached = counting_server().with_score_lru(8);
        let plain = counting_server();
        let a1 = cached.handle_tag_click(0, &[0, 1]);
        let a2 = cached.handle_tag_click(0, &[0, 1]);
        let b1 = plain.handle_tag_click(0, &[0, 1]);
        let b2 = plain.handle_tag_click(0, &[0, 1]);
        assert!(a1.same_content(&a2));
        assert!(a1.same_content(&b1), "LRU-served response must match the uncached server");
        assert!(a2.same_content(&b2));
        assert_eq!(cached.model().scored_rows.get(), 1, "second click reused the cached row");
        assert_eq!(plain.model().scored_rows.get(), 2, "without the LRU every repeat re-scores");
        assert_eq!(cached.score_lru_stats(), Some((1, 1)));
        // Serial and batched paths share one LRU: a batch drain containing
        // the same prefix also skips its forward.
        let _ = cached.handle_tag_click_batch(&[(0, vec![0, 1])]);
        assert_eq!(cached.model().scored_rows.get(), 1);
    }

    #[test]
    fn score_lru_disabled_by_default() {
        let s = counting_server();
        let _ = s.handle_tag_click(0, &[0, 1]);
        let _ = s.handle_tag_click(0, &[0, 1]);
        assert_eq!(s.score_lru_stats(), None);
        assert_eq!(s.model().scored_rows.get(), 2);
        assert_eq!(s.metrics().counter("serving.score_lru.hits").get(), 0);
    }

    #[test]
    fn traced_click_records_stage_spans_and_matches_untraced() {
        use intellitag_obs::TraceHandle;
        let s = server().with_cache(8);
        let trace = TraceHandle::new(0xfeed);
        let traced = s.handle_tag_click_traced(0, &[0, 1], &trace);
        let plain = s.handle_tag_click(0, &[0, 1]);
        assert!(traced.same_content(&plain), "tracing must not change the answer");
        let done = trace.finish();
        assert_eq!(done.trace_id, 0xfeed);
        let names: Vec<&str> = done.spans.iter().map(|sp| sp.name).collect();
        assert_eq!(names, vec!["cache", "score", "recall", "rerank"]);
        for sp in &done.spans {
            assert!(sp.end_us >= sp.start_us);
        }
        // Span durations sum to no more than the request wall time.
        let span_sum: u64 = done.spans.iter().map(|sp| sp.duration_us()).sum();
        assert!(span_sum <= traced.latency_us.max(done.total_us) + 1);
    }

    #[test]
    fn traced_question_records_recall_span() {
        use intellitag_obs::TraceHandle;
        let s = server();
        let trace = TraceHandle::new(1);
        let traced = s.handle_question_traced(0, "change password", &trace);
        let plain = s.handle_question(0, "change password");
        assert!(traced.same_content(&plain));
        let names: Vec<&str> = trace.finish().spans.iter().map(|sp| sp.name).collect();
        assert_eq!(names, vec!["recall"]);
    }

    #[test]
    fn traced_batch_records_amortized_score_spans() {
        use intellitag_obs::TraceHandle;
        let reqs: Vec<(usize, Vec<usize>)> = vec![(0, vec![0, 1]), (1, vec![4]), (0, vec![2])];
        let traces: Vec<Option<TraceHandle>> =
            (0..reqs.len()).map(|i| Some(TraceHandle::new(i as u64 + 1))).collect();
        let batch_server = server();
        let batched = batch_server.handle_tag_click_batch_traced(&reqs, &traces);
        let serial_server = server();
        for (i, (b, (t, c))) in batched.iter().zip(&reqs).enumerate() {
            assert!(
                b.same_content(&serial_server.handle_tag_click(*t, c)),
                "request {i} diverged under tracing"
            );
            let done = traces[i].as_ref().unwrap().finish();
            let names: Vec<&str> = done.spans.iter().map(|sp| sp.name).collect();
            assert_eq!(names, vec!["score", "recall", "rerank"], "request {i}: {names:?}");
        }
        // Untraced requests in a traced drain are fine (short traces slice).
        let out = batch_server.handle_tag_click_batch_traced(&reqs, &[]);
        assert_eq!(out.len(), reqs.len());
    }

    #[test]
    fn slo_series_record_per_tier_latency() {
        use intellitag_obs::SloReport;
        let s = server();
        let _ = s.handle_tag_click(0, &[0]); // tenant 0 -> gold
        let _ = s.handle_tag_click(1, &[4]); // tenant 1 -> silver
        let _ = s.handle_question(0, "change password"); // gold again
        let gold =
            s.metrics().histogram_labeled("slo.latency_us", &[("tenant_tier", "gold")]).snapshot();
        assert_eq!(gold.count, 2);
        let silver = s
            .metrics()
            .histogram_labeled("slo.latency_us", &[("tenant_tier", "silver")])
            .snapshot();
        assert_eq!(silver.count, 1);
        let report = SloReport::from_registry(s.metrics(), 150_000);
        let tiers: Vec<&str> = report.tiers.iter().map(|t| t.tier.as_str()).collect();
        assert!(tiers.contains(&"gold") && tiers.contains(&"silver"), "{tiers:?}");
    }

    #[test]
    fn pool_threads_gauge_is_published() {
        let s = server();
        let rendered = s.metrics().render_prometheus();
        assert!(
            rendered.contains("tensor_pool_threads"),
            "tensor.pool_threads gauge missing from scrape:\n{rendered}"
        );
    }

    #[test]
    fn install_model_invalidates_caches_and_bumps_version() {
        // The latent stale-cache bug the hot-swap exposes: both the response
        // cache and the score-row LRU hold *old-model* output, so a swap
        // that kept them would answer repeated keys from the previous
        // version. install_model must clear both.
        let s = server().with_cache(16).with_score_lru(16);
        let mut s = s;
        let pre = s.handle_tag_click(0, &[1]);
        let _ = s.handle_tag_click(0, &[1]); // warm both caches
        assert_eq!(counter_value(&s, "serving.cache.hit"), 1);
        assert_eq!(s.model_version(), 0);
        assert_eq!(s.metrics().gauge("serving.model_version").get(), 0.0);

        // New model with an inverted popularity order — same key must now
        // rank differently.
        let flipped = Popularity::from_counts(&[9, 2, 7, 3, 5, 4]);
        s.install_model(flipped, 7);
        assert_eq!(s.model_version(), 7);
        assert_eq!(s.metrics().gauge("serving.model_version").get(), 7.0);
        assert_eq!(counter_value(&s, "serving.swaps"), 1);
        assert_eq!(s.cache_hit_rate(), Some(0.0), "response cache cleared");
        assert_eq!(s.score_lru_stats(), Some((0, 0)), "score LRU cleared");

        // A fresh server built directly from the new model is the oracle:
        // the swapped server must answer repeated keys identically to it.
        let mut fresh = server();
        fresh.install_model(Popularity::from_counts(&[9, 2, 7, 3, 5, 4]), 7);
        let post = s.handle_tag_click(0, &[1]);
        let oracle = fresh.handle_tag_click(0, &[1]);
        assert!(post.same_content(&oracle), "post-swap response must come from the new model");
        assert!(
            !post.same_content(&pre),
            "probe key must distinguish the versions for this test to bite"
        );
    }

    #[test]
    fn with_model_version_tags_replica_and_gauge() {
        let registry = MetricsRegistry::new();
        let s = server().with_metrics(registry.clone()).with_model_version(3);
        assert_eq!(s.model_version(), 3);
        assert_eq!(TagService::model_version(&s), 3);
        assert_eq!(registry.gauge("serving.model_version").get(), 3.0);
    }

    #[test]
    fn cache_disabled_by_default() {
        let s = server();
        let _ = s.handle_tag_click(0, &[0]);
        assert_eq!(s.cache_hit_rate(), None);
        assert_eq!(s.metrics().histogram("serving.stage.cache_us").count(), 0);
    }

    #[test]
    fn latency_is_recorded() {
        let s = server();
        let _ = s.handle_question(0, "change password");
        let _ = s.handle_tag_click(0, &[0]);
        assert_eq!(s.latencies_us().len(), 2);
        assert_eq!(s.latency_snapshot().count, 2);
        assert_eq!(s.metrics().histogram("serving.question_us").count(), 1);
        assert_eq!(s.metrics().histogram("serving.tag_click_us").count(), 1);
    }

    #[test]
    fn recent_latency_log_is_bounded() {
        let s = server();
        for i in 0..(RECENT_LATENCY_WINDOW + 50) {
            let _ = s.handle_tag_click(i % 2, &[if i % 2 == 0 { 0 } else { 4 }]);
        }
        assert_eq!(s.latencies_us().len(), RECENT_LATENCY_WINDOW);
        assert_eq!(s.latency_snapshot().count, (RECENT_LATENCY_WINDOW + 50) as u64);
    }

    #[test]
    fn unknown_tenant_degrades_gracefully() {
        let s = server();
        assert_eq!(s.cold_start_tags(99), Vec::<usize>::new());
        let q = s.handle_question(99, "change password");
        assert_eq!(q.rq, None);
        assert!(q.recommended_tags.is_empty());
        let c = s.handle_tag_click(99, &[0]);
        assert!(c.recommended_tags.is_empty());
        assert!(c.predicted_questions.is_empty());
        assert_eq!(counter_value(&s, "serving.error.bad_tenant"), 3);
        // Degraded requests still count toward latency and request
        // accounting — a fronting gateway's 200s reconcile exactly.
        assert_eq!(s.latency_snapshot().count, 3);
        assert_eq!(counter_value(&s, "serving.requests"), 3);
    }

    #[test]
    fn every_path_ticks_the_request_total() {
        let s = server();
        let _ = s.handle_question(0, "change password"); // answered
        let _ = s.handle_question(0, "zz qq xx"); // cold-start fallback
        let _ = s.handle_tag_click(0, &[0]); // answered
        let _ = s.handle_tag_click(0, &[]); // degraded: empty clicks
        let _ = s.cold_start_tags(0); // top-level cold start
        assert_eq!(counter_value(&s, "serving.requests"), 5);
        assert_eq!(s.latency_snapshot().count, 5);
        // The in-question fallback is accounted once (as a question), the
        // top-level lookup once (as a cold start).
        assert_eq!(s.metrics().histogram("serving.question_us").count(), 2);
        assert_eq!(s.metrics().histogram("serving.cold_start_us").count(), 1);
    }

    #[test]
    fn empty_clicks_do_not_panic() {
        let s = server();
        let r = s.handle_tag_click(0, &[]);
        assert!(r.recommended_tags.is_empty());
        assert!(r.predicted_questions.is_empty());
        assert_eq!(counter_value(&s, "serving.error.empty_clicks"), 1);
    }

    #[test]
    fn unknown_tag_ids_are_dropped_not_fatal() {
        let s = server();
        // 999 is out of range; the valid click 1 still drives the response.
        let r = s.handle_tag_click(0, &[1, 999]);
        assert!(!r.recommended_tags.contains(&1));
        assert_eq!(counter_value(&s, "serving.error.bad_tag"), 1);
        // All-invalid clicks degrade to the empty response.
        let r = s.handle_tag_click(0, &[999, 1000]);
        assert!(r.recommended_tags.is_empty());
        assert_eq!(counter_value(&s, "serving.error.bad_tag"), 3);
    }

    #[test]
    fn per_stage_histograms_populate() {
        let s = server().with_cache(8);
        let _ = s.handle_tag_click(0, &[0, 1]);
        let m = s.metrics();
        for stage in ["recall", "rerank", "score", "cache"] {
            let h = m.histogram(&format!("serving.stage.{stage}_us"));
            assert_eq!(h.count(), 1, "stage {stage} not timed");
        }
        // Per-tenant request counter.
        assert_eq!(counter_value(&s, "serving.requests.tenant_0"), 1);
    }

    #[test]
    fn shared_registry_receives_server_metrics() {
        let registry = MetricsRegistry::new();
        let s = server().with_metrics(registry.clone());
        let _ = s.handle_tag_click(0, &[0]);
        assert_eq!(registry.histogram("serving.tag_click_us").count(), 1);
        let text = registry.render_prometheus();
        assert!(text.contains("serving_tag_click_us_count 1"));
    }

    #[test]
    fn concurrent_clicks_are_all_accounted() {
        // The deployment shape: one server shard per worker thread, all
        // publishing into one shared scrape registry. `ModelServer` itself
        // is not `Sync` (the optional QA matcher holds `Rc`-based params),
        // but the registry is, and every shard's requests must land in it.
        let registry = MetricsRegistry::new();
        let threads = 4;
        let per_thread = 50;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let registry = registry.clone();
                scope.spawn(move || {
                    let s = server().with_metrics(registry);
                    for i in 0..per_thread {
                        let clicks = if (t + i) % 2 == 0 { vec![0] } else { vec![1, 0] };
                        let r = s.handle_tag_click(0, &clicks);
                        assert!(!r.recommended_tags.is_empty());
                    }
                });
            }
        });
        let total = (threads * per_thread) as u64;
        let snap = registry.histogram("serving.request_us").snapshot();
        assert_eq!(snap.count, total, "histogram count == request count");
        assert_eq!(registry.histogram("serving.tag_click_us").count(), total);
        assert_eq!(registry.counter("serving.requests.tenant_0").get(), total);
        let (p50, p90, p99) = (snap.quantile(0.5), snap.quantile(0.9), snap.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "monotone quantiles: {p50} {p90} {p99}");
        assert!(snap.quantile(1.0) == snap.max);
    }
}
