//! The self-tuning runtime governor: one deterministic control loop per
//! process, closing the loop from live observability to every throughput
//! knob the serving spine exposes.
//!
//! ## Why
//!
//! Every knob used to be a static constant picked by hand: drain
//! `batch_max`, the tensor pool size, the shed threshold, `par_threshold`.
//! A config tuned for interactive latency wastes the hardware under bulk
//! replay, and a throughput config adds batching delay to lone requests.
//! The governor samples a fixed-cadence [`Observation`] (per-shard queue
//! depths, drain batch-row counts, `slo.latency_us` tails, tensor-pool
//! dispatch mix) and steps the knobs so a *single* config serves both
//! regimes.
//!
//! ## Step rules
//!
//! Evaluated in a fixed order every tick, at most one step per knob:
//!
//! * **`batch_max`** — doubles under backlog (deepest queue ≥ 2× the
//!   current ceiling: the queue is outrunning the drains) and halves after
//!   consecutive idle ticks (empty queues and near-singleton drains: the
//!   ceiling is just unused headroom).
//! * **`pool_threads`** — halves when queues are deep (every shard has
//!   runnable drain work; extra kernel threads only oversubscribe the
//!   cores) and doubles after consecutive empty-queue ticks (lone large
//!   batches benefit from intra-kernel parallelism).
//! * **`shed_depth`** — scales off the worst per-tier SLO error-budget
//!   burn: shrinks to ¾ when the budget is blown (shed early, keep served
//!   requests inside the tail target) and relaxes back toward the physical
//!   queue capacity while the burn stays under half.
//! * **`par_threshold`** — drops to a low floor when the pool is active
//!   and drains are large (the stacked forward has rows to split), and
//!   returns to the default when drains shrink or the pool is serial.
//!
//! ## Determinism contract
//!
//! [`Governor::step`] is a pure function of `(GovernorConfig, observation
//! sequence)`: observations are fully quantized integers, the state is
//! plain counters, and no clock, RNG, or float rounding participates.
//! Every step emits a [`Decision`] whose rendered line names the knob, the
//! old and new values, and the triggering signal; [`Governor::replay`]
//! over a recorded trace reproduces the identical decision log byte for
//! byte (pinned by `tests/governor_determinism.rs`).
//!
//! [`GovernorRuntime`] is the impure shell: a sampling thread that feeds
//! live snapshots to the pure core, applies each decision to the shared
//! [`RuntimeKnobs`] / tensor-pool globals, mirrors it into `governor.*`
//! metrics, and appends the line to a [`DecisionLog`] the gateway serves
//! at `/debug/governor`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use intellitag_obs::{
    DecisionLog, MetricsRegistry, RuntimeSnapshot, GOVERNOR_KNOB_LABEL, GOVERNOR_KNOB_METRIC,
    GOVERNOR_STEPS_METRIC, GOVERNOR_TICKS_METRIC,
};

use crate::sharded::RuntimeKnobs;

/// One quantized observation tick (see [`intellitag_obs::RuntimeSnapshot`]
/// for the field-by-field meaning and the integer-only rationale).
pub type Observation = RuntimeSnapshot;

/// Inclusive value bounds a governed knob may never leave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnobBounds {
    /// Smallest value the governor may set.
    pub min: usize,
    /// Largest value the governor may set.
    pub max: usize,
}

impl KnobBounds {
    /// Clamps `v` into `[min, max]`.
    pub fn clamp(&self, v: usize) -> usize {
        v.clamp(self.min, self.max)
    }
}

/// Full configuration of the control loop: initial knob values, declared
/// bounds, and the signal thresholds the step rules compare against.
/// Together with the observation sequence this *fully determines* every
/// decision — there is no hidden state.
#[derive(Debug, Clone)]
pub struct GovernorConfig {
    /// Bounds for the drain `batch_max` knob.
    pub batch_bounds: KnobBounds,
    /// Bounds for the tensor compute-pool size.
    pub pool_bounds: KnobBounds,
    /// Bounds for the soft shed threshold.
    pub shed_bounds: KnobBounds,
    /// Starting `batch_max` (should match the front's [`crate::ShardConfig`]).
    pub initial_batch_max: usize,
    /// Starting pool size.
    pub initial_pool_threads: usize,
    /// Starting shed depth.
    pub initial_shed_depth: usize,
    /// Starting (and "high") `par_threshold`; the governor returns here
    /// when drains are small.
    pub initial_par_threshold: usize,
    /// The low `par_threshold` used while drains are large and the pool is
    /// active.
    pub par_threshold_low: usize,
    /// Queue depth at/above which shard queues count as *deep* (pool
    /// shrinks — threads are better spent on drains).
    pub deep_queue_depth: u64,
    /// Consecutive idle ticks required before `batch_max` shrinks.
    pub idle_ticks_to_shrink: u32,
    /// Consecutive empty-queue ticks required before the pool grows.
    pub grow_ticks_to_widen: u32,
    /// Mean drain rows (×100) at/below which drains count as *small*.
    pub small_drain_rows_x100: u64,
    /// Mean drain rows (×100) at/above which drains count as *large*.
    pub large_drain_rows_x100: u64,
    /// The SLO latency target the budget-burn observation is anchored to.
    pub target_p99_us: u64,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            batch_bounds: KnobBounds { min: 1, max: 64 },
            pool_bounds: KnobBounds { min: 1, max: intellitag_tensor::hardware_threads() },
            shed_bounds: KnobBounds { min: 8, max: 256 },
            initial_batch_max: 8,
            initial_pool_threads: 1,
            initial_shed_depth: 256,
            initial_par_threshold: intellitag_tensor::DEFAULT_PAR_THRESHOLD,
            par_threshold_low: 8 * 1024,
            deep_queue_depth: 4,
            idle_ticks_to_shrink: 2,
            grow_ticks_to_widen: 2,
            small_drain_rows_x100: 150,
            large_drain_rows_x100: 400,
            target_p99_us: 150_000,
        }
    }
}

/// One knob step: what changed, from what to what, and the signal that
/// triggered it. [`Decision::line`] is the canonical rendering the
/// determinism contract is stated over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// The observation tick (1-based) this decision fired on.
    pub tick: u64,
    /// The stepped knob: `batch_max`, `pool_threads`, `shed_depth`, or
    /// `par_threshold`.
    pub knob: &'static str,
    /// Value before the step.
    pub old: u64,
    /// Value after the step (always within the declared bounds).
    pub new: u64,
    /// The triggering signal, e.g. `backlog:qmax=17`.
    pub signal: String,
}

impl Decision {
    /// The canonical one-line rendering:
    /// `tick=N knob=K old=A new=B signal=S`.
    pub fn line(&self) -> String {
        format!(
            "tick={} knob={} old={} new={} signal={}",
            self.tick, self.knob, self.old, self.new, self.signal
        )
    }
}

/// The pure decision core. Feed it the observation sequence via
/// [`Governor::step`]; it never touches a clock, the registry, or the live
/// knobs — applying decisions is [`GovernorRuntime`]'s job.
#[derive(Debug, Clone)]
pub struct Governor {
    cfg: GovernorConfig,
    batch_max: usize,
    pool_threads: usize,
    shed_depth: usize,
    par_threshold: usize,
    prev: Option<Observation>,
    tick: u64,
    idle_ticks: u32,
    pool_grow_ticks: u32,
}

impl Governor {
    /// A governor at its configured initial knob values (clamped into the
    /// declared bounds, so the bounds invariant holds from tick zero).
    pub fn new(cfg: GovernorConfig) -> Self {
        let batch_max = cfg.batch_bounds.clamp(cfg.initial_batch_max);
        let pool_threads = cfg.pool_bounds.clamp(cfg.initial_pool_threads);
        let shed_depth = cfg.shed_bounds.clamp(cfg.initial_shed_depth);
        let par_threshold = cfg.initial_par_threshold;
        Governor {
            cfg,
            batch_max,
            pool_threads,
            shed_depth,
            par_threshold,
            prev: None,
            tick: 0,
            idle_ticks: 0,
            pool_grow_ticks: 0,
        }
    }

    /// Current `batch_max` target.
    pub fn batch_max(&self) -> usize {
        self.batch_max
    }

    /// Current pool-size target.
    pub fn pool_threads(&self) -> usize {
        self.pool_threads
    }

    /// Current shed-depth target.
    pub fn shed_depth(&self) -> usize {
        self.shed_depth
    }

    /// Current `par_threshold` target.
    pub fn par_threshold(&self) -> usize {
        self.par_threshold
    }

    /// Observation ticks consumed so far.
    pub fn ticks(&self) -> u64 {
        self.tick
    }

    fn decision(&self, knob: &'static str, old: usize, new: usize, signal: String) -> Decision {
        Decision { tick: self.tick, knob, old: old as u64, new: new as u64, signal }
    }

    /// Consumes one observation and returns the knob steps it triggers (at
    /// most one per knob). Pure: identical `(config, observation sequence)`
    /// pairs produce identical decision sequences.
    ///
    /// The first observation only anchors the cumulative counters (rate
    /// signals need a delta) and never steps anything.
    pub fn step(&mut self, obs: &Observation) -> Vec<Decision> {
        self.tick += 1;
        let Some(prev) = self.prev.replace(*obs) else {
            return Vec::new();
        };
        let drains = obs.batch_count.saturating_sub(prev.batch_count);
        let rows = obs.batch_rows_sum.saturating_sub(prev.batch_rows_sum);
        let rows_mean_x100 = (rows * 100).checked_div(drains).unwrap_or(0);
        let qmax = obs.queue_depth_max;
        let burn = obs.budget_used_max_x100;
        let mut out = Vec::new();

        // batch_max: backlog grows it, sustained idle shrinks it.
        if qmax >= 2 * self.batch_max as u64 && self.batch_max < self.cfg.batch_bounds.max {
            let new = self.cfg.batch_bounds.clamp(self.batch_max * 2);
            out.push(self.decision(
                "batch_max",
                self.batch_max,
                new,
                format!("backlog:qmax={qmax}"),
            ));
            self.batch_max = new;
            self.idle_ticks = 0;
        } else if qmax == 0 && drains > 0 && rows_mean_x100 <= self.cfg.small_drain_rows_x100 {
            self.idle_ticks += 1;
            if self.idle_ticks >= self.cfg.idle_ticks_to_shrink
                && self.batch_max > self.cfg.batch_bounds.min
            {
                let new = self.cfg.batch_bounds.clamp(self.batch_max / 2);
                out.push(self.decision(
                    "batch_max",
                    self.batch_max,
                    new,
                    format!("idle:rows_mean_x100={rows_mean_x100}"),
                ));
                self.batch_max = new;
                self.idle_ticks = 0;
            }
        } else {
            self.idle_ticks = 0;
        }

        // pool_threads: deep queues shrink it, sustained empty queues grow it.
        if qmax >= self.cfg.deep_queue_depth {
            self.pool_grow_ticks = 0;
            if self.pool_threads > self.cfg.pool_bounds.min {
                let new = self.cfg.pool_bounds.clamp(self.pool_threads / 2);
                out.push(self.decision(
                    "pool_threads",
                    self.pool_threads,
                    new,
                    format!("deep_queues:qmax={qmax}"),
                ));
                self.pool_threads = new;
            }
        } else if qmax == 0 {
            self.pool_grow_ticks += 1;
            if self.pool_grow_ticks >= self.cfg.grow_ticks_to_widen
                && self.pool_threads < self.cfg.pool_bounds.max
            {
                let new = self.cfg.pool_bounds.clamp(self.pool_threads * 2);
                out.push(self.decision(
                    "pool_threads",
                    self.pool_threads,
                    new,
                    "idle_queues:qmax=0".to_string(),
                ));
                self.pool_threads = new;
                self.pool_grow_ticks = 0;
            }
        } else {
            self.pool_grow_ticks = 0;
        }

        // shed_depth: scale off the worst per-tier error-budget burn.
        if burn > 100 && self.shed_depth > self.cfg.shed_bounds.min {
            let new = self.cfg.shed_bounds.clamp(self.shed_depth * 3 / 4);
            out.push(self.decision(
                "shed_depth",
                self.shed_depth,
                new,
                format!("budget_blown:burn_x100={burn}"),
            ));
            self.shed_depth = new;
        } else if burn < 50 && self.shed_depth < self.cfg.shed_bounds.max {
            let step = (self.cfg.shed_bounds.max / 4).max(1);
            let new = self.cfg.shed_bounds.clamp(self.shed_depth.saturating_add(step));
            out.push(self.decision(
                "shed_depth",
                self.shed_depth,
                new,
                format!("budget_ok:burn_x100={burn}"),
            ));
            self.shed_depth = new;
        }

        // par_threshold: low while the pool is active and drains are large.
        if self.pool_threads > 1
            && drains > 0
            && rows_mean_x100 >= self.cfg.large_drain_rows_x100
            && self.par_threshold != self.cfg.par_threshold_low
        {
            let new = self.cfg.par_threshold_low;
            out.push(self.decision(
                "par_threshold",
                self.par_threshold,
                new,
                format!("large_drains:rows_mean_x100={rows_mean_x100}"),
            ));
            self.par_threshold = new;
        } else if self.par_threshold != self.cfg.initial_par_threshold
            && (self.pool_threads == 1
                || (drains > 0 && rows_mean_x100 <= self.cfg.small_drain_rows_x100))
        {
            let new = self.cfg.initial_par_threshold;
            out.push(self.decision(
                "par_threshold",
                self.par_threshold,
                new,
                format!("small_drains:rows_mean_x100={rows_mean_x100}"),
            ));
            self.par_threshold = new;
        }

        out
    }

    /// Replays a recorded observation trace through a fresh governor and
    /// returns the rendered decision log — the determinism proof: replaying
    /// the trace a second time (or on another host) yields byte-identical
    /// lines.
    pub fn replay(cfg: GovernorConfig, trace: &[Observation]) -> Vec<String> {
        let mut gov = Governor::new(cfg);
        let mut lines = Vec::new();
        for obs in trace {
            for d in gov.step(obs) {
                lines.push(d.line());
            }
        }
        lines
    }
}

/// Cap on the retained observation trace — generous for any bench run
/// (hours at a 10 ms cadence) while bounding a long-lived process.
const TRACE_CAP: usize = 1 << 16;

/// The live control loop: a sampling thread wrapping the pure [`Governor`].
///
/// Each tick it samples an [`Observation`] from the registry (plus the
/// tensor pool's dispatch counters), records it into a bounded trace,
/// steps the governor, and applies every decision — `batch_max` /
/// `shed_depth` onto the front's [`RuntimeKnobs`], pool size and
/// `par_threshold` onto the tensor-crate globals. Every decision also
/// increments `governor.steps{knob=..}`, updates `governor.knob{knob=..}`,
/// and appends its line to the shared [`DecisionLog`].
///
/// Dropping the runtime (or calling [`GovernorRuntime::stop`]) stops the
/// loop; the knobs keep their last governed values.
pub struct GovernorRuntime {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    log: DecisionLog,
    trace: Arc<Mutex<Vec<Observation>>>,
}

impl GovernorRuntime {
    /// Spawns the control loop at a fixed `interval` cadence. The
    /// configured initial knob values are applied immediately (so the
    /// governed process starts from a known point), then every tick steps
    /// from live observations. `log` is shared — hand a clone to the
    /// gateway for `/debug/governor`.
    pub fn spawn(
        cfg: GovernorConfig,
        registry: MetricsRegistry,
        knobs: Arc<RuntimeKnobs>,
        log: DecisionLog,
        interval: Duration,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let trace: Arc<Mutex<Vec<Observation>>> = Arc::new(Mutex::new(Vec::new()));
        let mut gov = Governor::new(cfg.clone());
        apply_knob(&knobs, "batch_max", gov.batch_max() as u64);
        apply_knob(&knobs, "pool_threads", gov.pool_threads() as u64);
        apply_knob(&knobs, "shed_depth", gov.shed_depth() as u64);
        apply_knob(&knobs, "par_threshold", gov.par_threshold() as u64);
        let (stop_t, trace_t, log_t) = (Arc::clone(&stop), Arc::clone(&trace), log.clone());
        let handle = std::thread::Builder::new()
            .name("intellitag-governor".into())
            .spawn(move || {
                let ticks = registry.counter(GOVERNOR_TICKS_METRIC);
                while !stop_t.load(Ordering::Acquire) {
                    let mut obs = Observation::sample(&registry, cfg.target_p99_us);
                    let (par, ser) = intellitag_tensor::pool_dispatch_stats();
                    obs.pool_parallel = par as u64;
                    obs.pool_serial = ser as u64;
                    {
                        let mut t = trace_t.lock().unwrap_or_else(|e| e.into_inner());
                        if t.len() < TRACE_CAP {
                            t.push(obs);
                        }
                    }
                    ticks.inc();
                    for d in gov.step(&obs) {
                        apply_knob(&knobs, d.knob, d.new);
                        registry
                            .counter_labeled(
                                GOVERNOR_STEPS_METRIC,
                                &[(GOVERNOR_KNOB_LABEL, d.knob)],
                            )
                            .inc();
                        registry
                            .gauge_labeled(GOVERNOR_KNOB_METRIC, &[(GOVERNOR_KNOB_LABEL, d.knob)])
                            .set(d.new as f64);
                        log_t.push(d.line());
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn governor thread");
        GovernorRuntime { stop, handle: Some(handle), log, trace }
    }

    /// The shared decision log (clone to serve it elsewhere).
    pub fn decision_log(&self) -> &DecisionLog {
        &self.log
    }

    /// Lifetime decision count (survives log truncation).
    pub fn decision_count(&self) -> u64 {
        self.log.pushed()
    }

    /// The recorded observation trace so far (bounded at an internal cap).
    /// Replaying it through [`Governor::replay`] with the same config
    /// reproduces the decision log exactly.
    pub fn observations(&self) -> Vec<Observation> {
        self.trace.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Stops the loop and joins the sampling thread. Knobs keep their last
    /// governed values.
    pub fn stop(mut self) {
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GovernorRuntime {
    fn drop(&mut self) {
        self.join();
    }
}

/// Routes one decision's new value onto the live knob it names.
fn apply_knob(knobs: &RuntimeKnobs, knob: &str, value: u64) {
    match knob {
        "batch_max" => knobs.set_batch_max(value as usize),
        "shed_depth" => knobs.set_shed_depth(value as usize),
        "pool_threads" => intellitag_tensor::set_pool_threads(value as usize),
        "par_threshold" => intellitag_tensor::set_par_threshold(value as usize),
        other => unreachable!("unknown governed knob {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GovernorConfig {
        GovernorConfig {
            pool_bounds: KnobBounds { min: 1, max: 8 },
            shed_bounds: KnobBounds { min: 8, max: 64 },
            initial_shed_depth: 64,
            ..GovernorConfig::default()
        }
    }

    fn obs(tick: u64, qmax: u64, drains_per_tick: u64, rows_per_drain: u64) -> Observation {
        Observation {
            queue_depth_max: qmax,
            queue_depth_sum: qmax,
            shards: 2,
            batch_count: tick * drains_per_tick,
            batch_rows_sum: tick * drains_per_tick * rows_per_drain,
            ..Observation::default()
        }
    }

    #[test]
    fn first_observation_never_steps() {
        let mut gov = Governor::new(cfg());
        assert!(gov.step(&obs(1, 100, 1, 1)).is_empty(), "warm-up tick must not step");
        assert_eq!(gov.ticks(), 1);
    }

    #[test]
    fn backlog_grows_batch_and_deep_queues_shrink_pool() {
        let mut gov = Governor::new(GovernorConfig { initial_pool_threads: 4, ..cfg() });
        let _ = gov.step(&obs(1, 0, 1, 1));
        // Deep backlog: qmax far beyond 2x batch_max.
        let decisions = gov.step(&obs(2, 32, 4, 8));
        let knobs: Vec<&str> = decisions.iter().map(|d| d.knob).collect();
        assert!(knobs.contains(&"batch_max"), "backlog must grow batch_max: {decisions:?}");
        assert!(knobs.contains(&"pool_threads"), "deep queues must shrink pool: {decisions:?}");
        assert_eq!(gov.batch_max(), 16);
        assert_eq!(gov.pool_threads(), 2);
        let batch = decisions.iter().find(|d| d.knob == "batch_max").unwrap();
        assert_eq!(batch.line(), "tick=2 knob=batch_max old=8 new=16 signal=backlog:qmax=32");
    }

    #[test]
    fn sustained_idle_shrinks_batch_and_grows_pool() {
        let mut gov = Governor::new(cfg());
        let mut saw_batch_shrink = false;
        let mut saw_pool_grow = false;
        for t in 1..=6 {
            for d in gov.step(&obs(t, 0, 2, 1)) {
                match d.knob {
                    "batch_max" => {
                        saw_batch_shrink = true;
                        assert!(d.new < d.old);
                    }
                    "pool_threads" => {
                        saw_pool_grow = true;
                        assert!(d.new > d.old);
                    }
                    _ => {}
                }
            }
        }
        assert!(saw_batch_shrink, "idle ticks must shrink batch_max");
        assert!(saw_pool_grow, "idle queues must grow the pool");
        assert!(gov.batch_max() < 8);
        assert!(gov.pool_threads() > 1);
    }

    #[test]
    fn budget_burn_scales_shed_depth_both_ways() {
        let mut gov = Governor::new(cfg());
        let mut o = obs(1, 2, 1, 2);
        let _ = gov.step(&o);
        o = obs(2, 2, 1, 2);
        o.budget_used_max_x100 = 400; // 4x the budget: shrink
        let d = gov.step(&o);
        let shed = d.iter().find(|d| d.knob == "shed_depth").expect("shed step");
        assert_eq!(shed.new, 48);
        assert!(shed.signal.starts_with("budget_blown:"), "{}", shed.signal);
        o = obs(3, 2, 1, 2);
        o.budget_used_max_x100 = 0; // healthy: relax back
        let d = gov.step(&o);
        let shed = d.iter().find(|d| d.knob == "shed_depth").expect("shed relax");
        assert!(shed.new > 48);
        assert!(shed.signal.starts_with("budget_ok:"), "{}", shed.signal);
    }

    #[test]
    fn par_threshold_follows_drain_size_and_pool_state() {
        let mut gov = Governor::new(GovernorConfig {
            initial_pool_threads: 4,
            deep_queue_depth: 100,
            ..cfg()
        });
        let _ = gov.step(&obs(1, 1, 1, 8));
        // Large drains with an active pool: drop to the low threshold.
        let d = gov.step(&obs(2, 1, 1, 8));
        let pt = d.iter().find(|d| d.knob == "par_threshold").expect("par step");
        assert_eq!(pt.new as usize, gov.cfg.par_threshold_low);
        // Small drains: return to the default.
        let mut gov2 = gov.clone();
        let d = gov2.step(&obs(3, 1, 1, 1));
        let pt = d.iter().find(|d| d.knob == "par_threshold").expect("par revert");
        assert_eq!(pt.new as usize, gov2.cfg.initial_par_threshold);
    }

    #[test]
    fn replay_reproduces_step_lines() {
        let trace: Vec<Observation> = (1..=20)
            .map(|t| {
                let mut o = obs(t, if t % 3 == 0 { 20 } else { 0 }, 2, (t % 5) + 1);
                o.budget_used_max_x100 = if t % 4 == 0 { 300 } else { 10 };
                o
            })
            .collect();
        let mut gov = Governor::new(cfg());
        let mut live_lines = Vec::new();
        for o in &trace {
            for d in gov.step(o) {
                live_lines.push(d.line());
            }
        }
        assert!(!live_lines.is_empty(), "trace must trigger decisions");
        assert_eq!(Governor::replay(cfg(), &trace), live_lines);
        assert_eq!(Governor::replay(cfg(), &trace), live_lines, "second replay diverged");
    }

    #[test]
    fn runtime_applies_decisions_to_live_knobs() {
        let registry = MetricsRegistry::new();
        let knobs = Arc::new(RuntimeKnobs::new(8, 256));
        // A standing backlog the sampler will observe every tick.
        registry.gauge_labeled("sharded.queue_depth", &[("shard", "0")]).set(64.0);
        let rows = registry.histogram_labeled("sharded.batch_rows", &[("shard", "0")]);
        let log = DecisionLog::new(64);
        let rt = GovernorRuntime::spawn(
            GovernorConfig { initial_pool_threads: 1, ..cfg() },
            registry.clone(),
            Arc::clone(&knobs),
            log,
            Duration::from_millis(1),
        );
        // Feed fresh drains so the rate signals move, then wait for steps.
        for i in 0..200 {
            rows.record(4);
            if knobs.batch_max() > 8 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
            assert!(i < 199, "governor never grew batch_max under standing backlog");
        }
        assert!(rt.decision_count() >= 1);
        let obs_trace = rt.observations();
        assert!(!obs_trace.is_empty());
        rt.stop();
        assert!(knobs.batch_max() > 8, "backlog must have grown the live batch_max");
        assert!(
            registry
                .counter_labeled(GOVERNOR_STEPS_METRIC, &[(GOVERNOR_KNOB_LABEL, "batch_max")])
                .get()
                >= 1
        );
        let g = registry.gauge_labeled(GOVERNOR_KNOB_METRIC, &[(GOVERNOR_KNOB_LABEL, "batch_max")]);
        assert_eq!(g.get(), knobs.batch_max() as f64);
    }
}
