//! The Q&A matching model (paper §V-A): the deployed system re-ranks the
//! ElasticSearch recall set with a RoBERTa matcher to find "the best
//! matching RQ" for a user's question. No pretrained encoder exists
//! offline, so the substitute is a trainable siamese bag-of-embeddings
//! scorer: both texts are encoded by mean-pooled word embeddings and scored
//! with a bilinear form, trained on (paraphrase, RQ) pairs with in-batch
//! negatives.

use std::time::Instant;

use intellitag_nn::Embedding;
use intellitag_obs::MetricsRegistry;
use intellitag_tensor::{Matrix, Param, ParamSet, Tape, Tensor};
use intellitag_text::Vocab;
use rand::prelude::*;
use rand::rngs::StdRng;

pub use intellitag_baselines::TrainConfig;

/// Configuration of the matcher.
#[derive(Debug, Clone, Copy)]
pub struct QaMatcherConfig {
    /// Embedding width.
    pub dim: usize,
    /// Negatives per positive pair during training.
    pub negatives: usize,
    /// Optimizer settings.
    pub train: TrainConfig,
}

impl Default for QaMatcherConfig {
    fn default() -> Self {
        QaMatcherConfig {
            dim: 48,
            negatives: 4,
            train: TrainConfig { epochs: 2, lr: 5e-3, ..Default::default() },
        }
    }
}

/// A trained question↔RQ matcher.
pub struct QaMatcher {
    vocab: Vocab,
    emb: Embedding,
    /// Bilinear interaction matrix (`dim x dim`).
    w: Param,
    dim: usize,
}

impl QaMatcher {
    /// Trains on `(user question, matching RQ text)` pairs. Negatives are
    /// drawn from `corpus` (all RQ texts).
    pub fn train(pairs: &[(String, String)], corpus: &[String], cfg: QaMatcherConfig) -> Self {
        Self::train_with_metrics(pairs, corpus, cfg, &MetricsRegistry::new())
    }

    /// Like [`QaMatcher::train`], but publishes per-epoch
    /// `train.qa_matcher.loss` / `train.qa_matcher.pairs_per_sec` gauges and
    /// an epoch counter into a shared registry.
    pub fn train_with_metrics(
        pairs: &[(String, String)],
        corpus: &[String],
        cfg: QaMatcherConfig,
        metrics: &MetricsRegistry,
    ) -> Self {
        assert!(!pairs.is_empty() && !corpus.is_empty(), "matcher needs data");
        let loss_gauge = metrics.gauge("train.qa_matcher.loss");
        let rate_gauge = metrics.gauge("train.qa_matcher.pairs_per_sec");
        let epoch_counter = metrics.counter("train.qa_matcher.epochs");
        let mut rng = StdRng::seed_from_u64(cfg.train.seed);
        let mut all_texts: Vec<&str> = corpus.iter().map(String::as_str).collect();
        all_texts.extend(pairs.iter().map(|(q, _)| q.as_str()));
        let vocab = Vocab::from_texts(&all_texts, 1);

        let mut params = ParamSet::new(cfg.train.lr);
        let emb = Embedding::new("qam.emb", vocab.len(), cfg.dim, &mut params, &mut rng);
        let w = params.register(Param::new("qam.w", Matrix::eye(cfg.dim)));
        let model = QaMatcher { vocab, emb, w, dim: cfg.dim };

        let tc = &cfg.train;
        params.total_steps = Some((pairs.len() * tc.epochs).div_ceil(tc.batch_size.max(1)).max(1));
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for epoch in 0..tc.epochs {
            let epoch_start = Instant::now();
            order.shuffle(&mut rng);
            let mut in_batch = 0;
            let mut epoch_loss = 0.0f64;
            for (i, &pi) in order.iter().enumerate() {
                let (query, positive) = &pairs[pi];
                let tape = Tape::training(tc.seed ^ (epoch as u64) << 32 ^ pi as u64);
                let Some(q) = model.encode(&tape, query) else { continue };
                let mut cands: Vec<Tensor> = Vec::with_capacity(1 + cfg.negatives);
                match model.encode(&tape, positive) {
                    Some(p) => cands.push(p),
                    None => continue,
                }
                let mut guard = 0;
                while cands.len() < 1 + cfg.negatives && guard < 64 {
                    guard += 1;
                    let neg = corpus.choose(&mut rng).expect("corpus");
                    if neg == positive {
                        continue;
                    }
                    if let Some(n) = model.encode(&tape, neg) {
                        cands.push(n);
                    }
                }
                let cand_matrix = Tensor::concat_rows(&cands); // k x d
                let logits = q.matmul(&tape.param(&model.w)).matmul(&cand_matrix.transpose()); // 1 x k
                let loss = logits.cross_entropy_logits(&[0]);
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == tc.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            loss_gauge.set(epoch_loss / pairs.len() as f64);
            rate_gauge.set(pairs.len() as f64 / epoch_start.elapsed().as_secs_f64().max(1e-9));
            epoch_counter.inc();
            if tc.verbose {
                println!("QaMatcher epoch {epoch}: loss {:.4}", epoch_loss / pairs.len() as f64);
            }
        }
        model
    }

    /// Mean-pooled embedding of a text (`1 x dim`); `None` for texts with no
    /// known tokens.
    fn encode(&self, tape: &Tape, text: &str) -> Option<Tensor> {
        let ids = self.vocab.encode(text);
        if ids.is_empty() || ids.iter().all(|&i| i == intellitag_text::UNK_ID) {
            return None;
        }
        Some(self.emb.forward(tape, &ids).mean_rows().tanh())
    }

    /// Match score between a user question and an RQ text (higher = better).
    /// Returns `f32::NEG_INFINITY` when either text has no known tokens.
    pub fn score(&self, question: &str, rq_text: &str) -> f32 {
        let tape = Tape::new();
        let (Some(q), Some(r)) = (self.encode(&tape, question), self.encode(&tape, rq_text)) else {
            return f32::NEG_INFINITY;
        };
        q.matmul(&tape.param(&self.w)).matmul(&r.transpose()).scalar()
    }

    /// Re-ranks candidate `(id, text)` pairs by match score, descending.
    pub fn rerank<'a>(
        &self,
        question: &str,
        candidates: impl IntoIterator<Item = (usize, &'a str)>,
    ) -> Vec<usize> {
        let mut scored: Vec<(usize, f32)> =
            candidates.into_iter().map(|(id, text)| (id, self.score(question, text))).collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        scored.into_iter().map(|(id, _)| id).collect()
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_datagen::{World, WorldConfig};

    fn training_setup() -> (World, Vec<(String, String)>, Vec<String>) {
        let world = World::generate(WorldConfig::tiny(13));
        let corpus: Vec<String> = world.rqs.iter().map(|r| r.text()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut pairs = Vec::new();
        for (rq, rq_text) in corpus.iter().enumerate() {
            for _ in 0..2 {
                pairs.push((world.paraphrase_question(rq, &mut rng), rq_text.clone()));
            }
        }
        (world, pairs, corpus)
    }

    #[test]
    fn matcher_ranks_true_rq_highly() {
        let (world, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs, &corpus, QaMatcherConfig::default());
        // Fresh paraphrases, not seen at training time.
        let mut rng = StdRng::seed_from_u64(99);
        let mut hits = 0;
        let total = 40;
        for i in 0..total {
            let rq = (i * 5) % world.rqs.len();
            let q = world.paraphrase_question(rq, &mut rng);
            let candidates: Vec<(usize, &str)> = (0..world.rqs.len())
                .step_by(7)
                .chain(std::iter::once(rq))
                .map(|j| (j, corpus[j].as_str()))
                .collect();
            let ranked = matcher.rerank(&q, candidates);
            if ranked.iter().take(3).any(|&r| world.rqs[r].tags == world.rqs[rq].tags) {
                hits += 1;
            }
        }
        assert!(hits * 2 > total, "matcher hit@3 too low: {hits}/{total}");
    }

    #[test]
    fn training_publishes_metrics() {
        let (_, pairs, corpus) = training_setup();
        let registry = MetricsRegistry::new();
        let cfg = QaMatcherConfig {
            train: TrainConfig { epochs: 3, ..Default::default() },
            ..Default::default()
        };
        let _ = QaMatcher::train_with_metrics(&pairs[..30], &corpus, cfg, &registry);
        assert_eq!(registry.counter("train.qa_matcher.epochs").get(), 3);
        assert!(registry.gauge("train.qa_matcher.loss").get() > 0.0);
        assert!(registry.gauge("train.qa_matcher.pairs_per_sec").get() > 0.0);
    }

    #[test]
    fn unknown_text_scores_neg_infinity() {
        let (_, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs[..50], &corpus, QaMatcherConfig::default());
        assert_eq!(matcher.score("zzzz qqqq", &corpus[0]), f32::NEG_INFINITY);
    }

    #[test]
    fn rerank_is_deterministic_and_complete() {
        let (_, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs[..50], &corpus, QaMatcherConfig::default());
        let cands: Vec<(usize, &str)> =
            corpus.iter().take(10).enumerate().map(|(i, t)| (i, t.as_str())).collect();
        let a = matcher.rerank("how to change password", cands.clone());
        let b = matcher.rerank("how to change password", cands);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
