//! The Q&A matching model (paper §V-A): the deployed system re-ranks the
//! ElasticSearch recall set with a RoBERTa matcher to find "the best
//! matching RQ" for a user's question. No pretrained encoder exists
//! offline, so the substitute is a trainable siamese bag-of-embeddings
//! scorer: both texts are encoded by mean-pooled word embeddings and scored
//! with a bilinear form, trained on (paraphrase, RQ) pairs with in-batch
//! negatives.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::time::Instant;

use intellitag_nn::Embedding;
use intellitag_obs::MetricsRegistry;
use intellitag_tensor::{Matrix, Param, ParamSet, Tape, Tensor};
use intellitag_text::Vocab;
use rand::prelude::*;
use rand::rngs::StdRng;

pub use intellitag_baselines::TrainConfig;

/// Configuration of the matcher.
#[derive(Debug, Clone, Copy)]
pub struct QaMatcherConfig {
    /// Embedding width.
    pub dim: usize,
    /// Negatives per positive pair during training.
    pub negatives: usize,
    /// Optimizer settings.
    pub train: TrainConfig,
}

impl Default for QaMatcherConfig {
    fn default() -> Self {
        QaMatcherConfig {
            dim: 48,
            negatives: 4,
            train: TrainConfig { epochs: 2, lr: 5e-3, ..Default::default() },
        }
    }
}

/// A trained question↔RQ matcher.
///
/// Inference-side candidate encodings are memoized: an RQ text is encoded
/// once (typically at [`QaMatcher::prewarm`] time) and every later
/// [`QaMatcher::rerank`]/[`QaMatcher::score`] reuses the cached vector, so
/// the question path no longer re-encodes the KB per request.
pub struct QaMatcher {
    vocab: Vocab,
    emb: Embedding,
    /// Bilinear interaction matrix (`dim x dim`).
    w: Param,
    dim: usize,
    /// Memoized candidate-side encodings (`1 x dim`, `None` = all-UNK text).
    /// Keyed by exact text; bounded in practice by the KB the matcher serves.
    encodings: RefCell<HashMap<String, Option<Matrix>>>,
    /// Inference-path embedding forwards actually run (cache misses +
    /// query-side encodes). Training encodes are not counted.
    encode_calls: Cell<u64>,
    /// Candidate encodings served from the memo instead of re-encoded.
    cache_hits: Cell<u64>,
}

impl QaMatcher {
    /// Trains on `(user question, matching RQ text)` pairs. Negatives are
    /// drawn from `corpus` (all RQ texts).
    pub fn train(pairs: &[(String, String)], corpus: &[String], cfg: QaMatcherConfig) -> Self {
        Self::train_with_metrics(pairs, corpus, cfg, &MetricsRegistry::new())
    }

    /// Like [`QaMatcher::train`], but publishes per-epoch
    /// `train.qa_matcher.loss` / `train.qa_matcher.pairs_per_sec` gauges and
    /// an epoch counter into a shared registry.
    pub fn train_with_metrics(
        pairs: &[(String, String)],
        corpus: &[String],
        cfg: QaMatcherConfig,
        metrics: &MetricsRegistry,
    ) -> Self {
        assert!(!pairs.is_empty() && !corpus.is_empty(), "matcher needs data");
        let loss_gauge = metrics.gauge("train.qa_matcher.loss");
        let rate_gauge = metrics.gauge("train.qa_matcher.pairs_per_sec");
        let epoch_counter = metrics.counter("train.qa_matcher.epochs");
        let mut rng = StdRng::seed_from_u64(cfg.train.seed);
        let mut all_texts: Vec<&str> = corpus.iter().map(String::as_str).collect();
        all_texts.extend(pairs.iter().map(|(q, _)| q.as_str()));
        let vocab = Vocab::from_texts(&all_texts, 1);

        let mut params = ParamSet::new(cfg.train.lr);
        let emb = Embedding::new("qam.emb", vocab.len(), cfg.dim, &mut params, &mut rng);
        let w = params.register(Param::new("qam.w", Matrix::eye(cfg.dim)));
        let model = QaMatcher {
            vocab,
            emb,
            w,
            dim: cfg.dim,
            encodings: RefCell::new(HashMap::new()),
            encode_calls: Cell::new(0),
            cache_hits: Cell::new(0),
        };

        let tc = &cfg.train;
        params.total_steps = Some((pairs.len() * tc.epochs).div_ceil(tc.batch_size.max(1)).max(1));
        let mut order: Vec<usize> = (0..pairs.len()).collect();
        for epoch in 0..tc.epochs {
            let epoch_start = Instant::now();
            order.shuffle(&mut rng);
            let mut in_batch = 0;
            let mut epoch_loss = 0.0f64;
            for (i, &pi) in order.iter().enumerate() {
                let (query, positive) = &pairs[pi];
                let tape = Tape::training(tc.seed ^ (epoch as u64) << 32 ^ pi as u64);
                let Some(q) = model.encode(&tape, query) else { continue };
                let mut cands: Vec<Tensor> = Vec::with_capacity(1 + cfg.negatives);
                match model.encode(&tape, positive) {
                    Some(p) => cands.push(p),
                    None => continue,
                }
                let mut guard = 0;
                while cands.len() < 1 + cfg.negatives && guard < 64 {
                    guard += 1;
                    let neg = corpus.choose(&mut rng).expect("corpus");
                    if neg == positive {
                        continue;
                    }
                    if let Some(n) = model.encode(&tape, neg) {
                        cands.push(n);
                    }
                }
                let cand_matrix = Tensor::concat_rows(&cands); // k x d
                let logits = q.matmul(&tape.param(&model.w)).matmul(&cand_matrix.transpose()); // 1 x k
                let loss = logits.cross_entropy_logits(&[0]);
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == tc.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            loss_gauge.set(epoch_loss / pairs.len() as f64);
            rate_gauge.set(pairs.len() as f64 / epoch_start.elapsed().as_secs_f64().max(1e-9));
            epoch_counter.inc();
            if tc.verbose {
                println!("QaMatcher epoch {epoch}: loss {:.4}", epoch_loss / pairs.len() as f64);
            }
        }
        model
    }

    /// Mean-pooled embedding of a text (`1 x dim`); `None` for texts with no
    /// known tokens.
    fn encode(&self, tape: &Tape, text: &str) -> Option<Tensor> {
        let ids = self.vocab.encode(text);
        if ids.is_empty() || ids.iter().all(|&i| i == intellitag_text::UNK_ID) {
            return None;
        }
        Some(self.emb.forward(tape, &ids).mean_rows().tanh())
    }

    /// Runs one inference-side encode (`1 x dim` matrix), counted in
    /// [`QaMatcher::encode_calls`]. Used for query texts (which vary per
    /// request) and for candidate cache misses.
    fn encode_value(&self, text: &str) -> Option<Matrix> {
        self.encode_calls.set(self.encode_calls.get() + 1);
        let tape = Tape::new();
        self.encode(&tape, text).map(|t| t.value())
    }

    /// Candidate-side encoding through the memo: encoded once per distinct
    /// text, served from the cache thereafter.
    fn encode_candidate(&self, text: &str) -> Option<Matrix> {
        if let Some(cached) = self.encodings.borrow().get(text) {
            self.cache_hits.set(self.cache_hits.get() + 1);
            return cached.clone();
        }
        let enc = self.encode_value(text);
        self.encodings.borrow_mut().insert(text.to_string(), enc.clone());
        enc
    }

    /// Encodes `texts` into the candidate memo up front — call with the KB's
    /// RQ texts at server build time so no request pays for a first-touch
    /// encode.
    pub fn prewarm<'a>(&self, texts: impl IntoIterator<Item = &'a str>) {
        for text in texts {
            if !self.encodings.borrow().contains_key(text) {
                let enc = self.encode_value(text);
                self.encodings.borrow_mut().insert(text.to_string(), enc);
            }
        }
    }

    /// Inference-path embedding forwards run so far (query encodes plus
    /// candidate cache misses) — the quantity the "no per-request KB
    /// re-encode" tests pin.
    pub fn encode_calls(&self) -> u64 {
        self.encode_calls.get()
    }

    /// Candidate encodings served from the memo instead of re-encoded.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.get()
    }

    /// The query side of the bilinear form, computed once per request:
    /// `q · W` (`1 x dim`). `None` when the question has no known tokens.
    fn project_query(&self, question: &str) -> Option<Matrix> {
        Some(self.encode_value(question)?.matmul(&self.w.value()))
    }

    /// Scores one cached candidate against a projected query. Associates as
    /// `(q · W) · rᵀ`, exactly the order the tensor-graph scorer used.
    fn score_projected(projected: Option<&Matrix>, candidate: Option<&Matrix>) -> f32 {
        match (projected, candidate) {
            (Some(p), Some(r)) => p.matmul_nt(r).get(0, 0),
            _ => f32::NEG_INFINITY,
        }
    }

    /// Match score between a user question and an RQ text (higher = better).
    /// Returns `f32::NEG_INFINITY` when either text has no known tokens.
    pub fn score(&self, question: &str, rq_text: &str) -> f32 {
        Self::score_projected(
            self.project_query(question).as_ref(),
            self.encode_candidate(rq_text).as_ref(),
        )
    }

    /// Scores candidates with one query encode + projection, candidates
    /// served from the encoding memo.
    fn score_candidates<'a>(
        &self,
        question: &str,
        candidates: impl IntoIterator<Item = (usize, &'a str)>,
    ) -> Vec<(usize, f32)> {
        let projected = self.project_query(question);
        candidates
            .into_iter()
            .map(|(id, text)| {
                (
                    id,
                    Self::score_projected(projected.as_ref(), self.encode_candidate(text).as_ref()),
                )
            })
            .collect()
    }

    /// Re-ranks candidate `(id, text)` pairs by match score, descending.
    /// The question is encoded and projected once for the whole candidate
    /// set, not once per candidate.
    pub fn rerank<'a>(
        &self,
        question: &str,
        candidates: impl IntoIterator<Item = (usize, &'a str)>,
    ) -> Vec<usize> {
        let mut scored = self.score_candidates(question, candidates);
        scored.sort_by(Self::rank_order);
        scored.into_iter().map(|(id, _)| id).collect()
    }

    /// The best-matching candidate id — what [`Self::rerank`]`.first()`
    /// returns, without sorting or collecting the full candidate vec.
    pub fn rerank_top1<'a>(
        &self,
        question: &str,
        candidates: impl IntoIterator<Item = (usize, &'a str)>,
    ) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for cand in self.score_candidates(question, candidates) {
            let replace = match &best {
                // Strictly-less keeps the earliest of rank-order ties, like
                // the stable sort in `rerank`.
                Some(b) => Self::rank_order(&cand, b) == std::cmp::Ordering::Less,
                None => true,
            };
            if replace {
                best = Some(cand);
            }
        }
        best.map(|(id, _)| id)
    }

    /// `rerank`'s comparator: score descending, id ascending on ties.
    fn rank_order(a: &(usize, f32), b: &(usize, f32)) -> std::cmp::Ordering {
        b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
    }

    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_datagen::{World, WorldConfig};

    fn training_setup() -> (World, Vec<(String, String)>, Vec<String>) {
        let world = World::generate(WorldConfig::tiny(13));
        let corpus: Vec<String> = world.rqs.iter().map(|r| r.text()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut pairs = Vec::new();
        for (rq, rq_text) in corpus.iter().enumerate() {
            for _ in 0..2 {
                pairs.push((world.paraphrase_question(rq, &mut rng), rq_text.clone()));
            }
        }
        (world, pairs, corpus)
    }

    #[test]
    fn matcher_ranks_true_rq_highly() {
        let (world, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs, &corpus, QaMatcherConfig::default());
        // Fresh paraphrases, not seen at training time.
        let mut rng = StdRng::seed_from_u64(99);
        let mut hits = 0;
        let total = 40;
        for i in 0..total {
            let rq = (i * 5) % world.rqs.len();
            let q = world.paraphrase_question(rq, &mut rng);
            let candidates: Vec<(usize, &str)> = (0..world.rqs.len())
                .step_by(7)
                .chain(std::iter::once(rq))
                .map(|j| (j, corpus[j].as_str()))
                .collect();
            let ranked = matcher.rerank(&q, candidates);
            if ranked.iter().take(3).any(|&r| world.rqs[r].tags == world.rqs[rq].tags) {
                hits += 1;
            }
        }
        assert!(hits * 2 > total, "matcher hit@3 too low: {hits}/{total}");
    }

    #[test]
    fn training_publishes_metrics() {
        let (_, pairs, corpus) = training_setup();
        let registry = MetricsRegistry::new();
        let cfg = QaMatcherConfig {
            train: TrainConfig { epochs: 3, ..Default::default() },
            ..Default::default()
        };
        let _ = QaMatcher::train_with_metrics(&pairs[..30], &corpus, cfg, &registry);
        assert_eq!(registry.counter("train.qa_matcher.epochs").get(), 3);
        assert!(registry.gauge("train.qa_matcher.loss").get() > 0.0);
        assert!(registry.gauge("train.qa_matcher.pairs_per_sec").get() > 0.0);
    }

    #[test]
    fn unknown_text_scores_neg_infinity() {
        let (_, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs[..50], &corpus, QaMatcherConfig::default());
        assert_eq!(matcher.score("zzzz qqqq", &corpus[0]), f32::NEG_INFINITY);
    }

    #[test]
    fn rerank_top1_matches_full_rerank() {
        let (world, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs[..50], &corpus, QaMatcherConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        for i in 0..20 {
            let rq = (i * 3) % world.rqs.len();
            let q = world.paraphrase_question(rq, &mut rng);
            let cands: Vec<(usize, &str)> =
                (0..corpus.len()).step_by(2).map(|j| (j, corpus[j].as_str())).collect();
            assert_eq!(
                matcher.rerank_top1(&q, cands.clone()),
                matcher.rerank(&q, cands).first().copied(),
                "top1 diverged from rerank for query {i}"
            );
        }
        // All-unknown query: every score is NEG_INFINITY, ties break by id.
        let cands: Vec<(usize, &str)> = vec![(7, corpus[0].as_str()), (2, corpus[1].as_str())];
        assert_eq!(matcher.rerank_top1("zzzz qqqq", cands.clone()), Some(2));
        assert_eq!(matcher.rerank("zzzz qqqq", cands)[0], 2);
        assert_eq!(matcher.rerank_top1("zzzz", Vec::new()), None);
    }

    #[test]
    fn candidate_encodings_are_memoized() {
        let (_, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs[..30], &corpus, QaMatcherConfig::default());
        assert_eq!(matcher.encode_calls(), 0, "training encodes are not counted");
        matcher.prewarm(corpus.iter().take(10).map(String::as_str));
        assert_eq!(matcher.encode_calls(), 10);
        // Re-prewarming the same texts is free.
        matcher.prewarm(corpus.iter().take(10).map(String::as_str));
        assert_eq!(matcher.encode_calls(), 10);

        let cands: Vec<(usize, &str)> =
            corpus.iter().take(10).enumerate().map(|(i, t)| (i, t.as_str())).collect();
        for round in 1..=3u64 {
            let _ = matcher.rerank("how to change password", cands.clone());
            // One query-side encode per rerank; all 10 candidates hit cache.
            assert_eq!(matcher.encode_calls(), 10 + round);
            assert_eq!(matcher.cache_hits(), 10 * round);
        }

        // Scores served from the cache equal freshly-encoded scores.
        let cold = QaMatcher::train(&pairs[..30], &corpus, QaMatcherConfig::default());
        assert_eq!(
            matcher.rerank("how to change password", cands.clone()),
            cold.rerank("how to change password", cands)
        );
    }

    #[test]
    fn rerank_is_deterministic_and_complete() {
        let (_, pairs, corpus) = training_setup();
        let matcher = QaMatcher::train(&pairs[..50], &corpus, QaMatcherConfig::default());
        let cands: Vec<(usize, &str)> =
            corpus.iter().take(10).enumerate().map(|(i, t)| (i, t.as_str())).collect();
        let a = matcher.rerank("how to change password", cands.clone());
        let b = matcher.rerank("how to change password", cands);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }
}
