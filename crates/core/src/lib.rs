//! # intellitag-core
//!
//! The paper's primary contribution and serving system:
//!
//! * [`IntelliTag`] — the hierarchical TagRec model (§IV): shared graph
//!   layers (neighbor attention, Eq. 4-5; metapath attention, Eq. 6-7)
//!   feeding sequential Transformer layers with contextual attention
//!   (Eq. 8-11), trained end-to-end or step-by-step (`IntelliTag_st`).
//! * [`TagRecConfig`] — hyperparameters plus the Table V ablation switches.
//! * [`evaluate_offline`] — the 49-negative ranking protocol (§VI-A2)
//!   behind Tables IV/V and Fig. 6.
//! * [`ModelServer`] — the online request path of §V: BM25 recall + model
//!   re-rank, precomputed tag embeddings, cold-start fallbacks, and
//!   per-stage observability through `intellitag-obs` (span timing for
//!   recall/rerank/score/cache, error and cold-start counters, bounded
//!   latency histograms).
//! * [`ShardedServer`] — the sharded, batched serving front: N worker
//!   threads each owning a `ModelServer` replica, bounded request queues
//!   with overload shedding, per-shard labeled metrics, and response parity
//!   with the single-process server (pinned by `tests/sharded_parity.rs`).
//! * [`ModelSwap`] / [`SwapPayload`] — the epoch-fenced hot-swap mailbox:
//!   the online trainer publishes versioned snapshots and every shard
//!   worker installs them at a drain boundary, so no drain mixes model
//!   versions and serving never pauses (pinned by
//!   `tests/hot_swap_parity.rs`).
//! * [`TagService`] — the request surface both fronts implement, so the
//!   simulator, benches and examples swap fronts with one line.
//! * [`simulate_online`] — A/B traffic buckets measuring CTR (Fig. 7),
//!   HIR and latency (Table VI) against the simulated user population,
//!   publishing rolling `online.*` gauges into the shared registry.

#![warn(missing_docs)]

mod cache;
mod config;
mod experiment;
mod governor;
mod graph_layers;
mod model;
mod qa_matcher;
mod serving;
mod sharded;
mod simulator;

pub use cache::{LruCache, ResponseCache};
pub use config::{TagRecConfig, TrainConfig};
pub use experiment::{evaluate_offline, ProtocolConfig};
pub use governor::{Decision, Governor, GovernorConfig, GovernorRuntime, KnobBounds, Observation};
pub use graph_layers::GraphLayers;
pub use model::IntelliTag;
pub use qa_matcher::{QaMatcher, QaMatcherConfig};
pub use serving::{
    ModelServer, PendingReply, Poll, QuestionResponse, Submission, TagClickResponse, TagService,
    RECENT_LATENCY_WINDOW,
};
pub use sharded::{
    ModelSwap, RoutingPolicy, RuntimeKnobs, ShardConfig, ShardedServer, ShedReason, SwapPayload,
};
pub use simulator::{simulate_online, DayMetrics, SimConfig, SimOutcome};
