//! Configuration of the TagRec (IntelliTag) model.

pub use intellitag_baselines::TrainConfig;

/// Hyperparameters and ablation switches for the IntelliTag model.
///
/// Defaults follow the paper (§VI-A3) scaled to CPU training: 4 attention
/// heads for all three attentions, a 2-layer sequential Transformer, and the
/// same head count everywhere ("the values of head numbers for different
/// attentions are set same").
#[derive(Debug, Clone, Copy)]
pub struct TagRecConfig {
    /// Embedding width `d` (paper uses 100; bench default 64).
    pub dim: usize,
    /// Attention heads `M` (neighbor, metapath and contextual alike).
    pub heads: usize,
    /// Stacked Transformer layers `L` in the sequential model.
    pub seq_layers: usize,
    /// Maximum sampled neighbors per metapath during aggregation.
    pub neighbor_cap: usize,
    /// End-to-end (true, "IntelliTag") vs step-by-step (false,
    /// "IntelliTag_st") training (§IV-D).
    pub end_to_end: bool,
    /// Ablation: neighbor attention (Eq. 4-5); false = uniform averaging.
    pub use_neighbor_attention: bool,
    /// Ablation: metapath attention (Eq. 6-7); false = uniform fusion.
    pub use_metapath_attention: bool,
    /// Ablation: contextual attention (Eq. 8-11); false = mean pooling.
    pub use_contextual_attention: bool,
    /// Optimizer/schedule settings shared with the baselines.
    pub train: TrainConfig,
}

impl Default for TagRecConfig {
    fn default() -> Self {
        TagRecConfig {
            dim: 64,
            heads: 4,
            seq_layers: 2,
            neighbor_cap: 10,
            end_to_end: true,
            use_neighbor_attention: true,
            use_metapath_attention: true,
            use_contextual_attention: true,
            train: TrainConfig::default(),
        }
    }
}

impl TagRecConfig {
    /// The step-by-step variant (paper's `IntelliTag_st`).
    pub fn step_by_step(mut self) -> Self {
        self.end_to_end = false;
        self
    }

    /// Ablation without neighbor attention (`IntelliTag w/o na`).
    pub fn without_neighbor_attention(mut self) -> Self {
        self.use_neighbor_attention = false;
        self
    }

    /// Ablation without metapath attention (`IntelliTag w/o ma`).
    pub fn without_metapath_attention(mut self) -> Self {
        self.use_metapath_attention = false;
        self
    }

    /// Ablation without contextual attention (`IntelliTag w/o ca`).
    pub fn without_contextual_attention(mut self) -> Self {
        self.use_contextual_attention = false;
        self
    }

    /// The display name matching the paper's tables.
    pub fn model_name(&self) -> &'static str {
        match (
            self.end_to_end,
            self.use_neighbor_attention,
            self.use_metapath_attention,
            self.use_contextual_attention,
        ) {
            (_, false, true, true) => "IntelliTag w/o na",
            (_, true, false, true) => "IntelliTag w/o ma",
            (_, true, true, false) => "IntelliTag w/o ca",
            (false, true, true, true) => "IntelliTag_st",
            (true, true, true, true) => "IntelliTag",
            _ => "IntelliTag (custom)",
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || self.heads == 0 || self.seq_layers == 0 {
            return Err("dim, heads and seq_layers must be positive".into());
        }
        if !self.dim.is_multiple_of(self.heads) {
            return Err(format!(
                "dim {} must be divisible by heads {} for the sequential model",
                self.dim, self.heads
            ));
        }
        if self.neighbor_cap == 0 {
            return Err("neighbor_cap must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_end_to_end() {
        let c = TagRecConfig::default();
        c.validate().unwrap();
        assert!(c.end_to_end);
        assert_eq!(c.model_name(), "IntelliTag");
    }

    #[test]
    fn variant_names_match_paper() {
        let base = TagRecConfig::default();
        assert_eq!(base.step_by_step().model_name(), "IntelliTag_st");
        assert_eq!(base.without_neighbor_attention().model_name(), "IntelliTag w/o na");
        assert_eq!(base.without_metapath_attention().model_name(), "IntelliTag w/o ma");
        assert_eq!(base.without_contextual_attention().model_name(), "IntelliTag w/o ca");
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = TagRecConfig { dim: 30, ..Default::default() }; // not divisible by 4 heads
        assert!(c.validate().is_err());
        let c = TagRecConfig { neighbor_cap: 0, ..Default::default() };
        assert!(c.validate().is_err());
    }
}
