//! The IntelliTag TagRec model (paper §IV): hierarchical attention over the
//! heterogeneous graph (inner, shared) feeding Transformer layers over the
//! click sequence (outer), trained end-to-end or step-by-step.

use std::time::Instant;

use intellitag_baselines::SequenceRecommender;
use intellitag_graph::{HetGraph, ALL_METAPATHS};
use intellitag_nn::{Linear, PositionEmbedding, TransformerEncoder};
use intellitag_obs::MetricsRegistry;
use intellitag_tensor::{Matrix, Param, ParamSet, Tape, Tensor};
use intellitag_text::HashedEmbedder;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::config::TagRecConfig;
use crate::graph_layers::GraphLayers;

/// Maximum clicks kept as context (sessions cap at 12, plus the mask slot).
const MAX_CTX: usize = 15;

/// The trained IntelliTag model.
pub struct IntelliTag {
    cfg: TagRecConfig,
    graph_layers: GraphLayers,
    pos: PositionEmbedding,
    mask_emb: Param,
    encoder: TransformerEncoder,
    out: Linear,
    num_tags: usize,
    /// Tag embeddings precomputed after training — what the deployed system
    /// uploads to online model servers instead of running GNN layers
    /// per request (§V-B).
    z_table: Matrix,
    /// Graph-layer parameters (kept for T+1 snapshot upload, §V-B).
    graph_params: ParamSet,
    /// Sequence-layer parameters (kept for T+1 snapshot upload, §V-B).
    seq_params: ParamSet,
}

impl IntelliTag {
    /// Builds an untrained model with the architecture implied by `cfg`
    /// (deterministic in `cfg.train.seed`, including the sampled
    /// neighborhoods). Used by [`IntelliTag::train`] and
    /// [`IntelliTag::load`].
    fn build(graph: &HetGraph, tag_texts: &[String], cfg: TagRecConfig) -> Self {
        cfg.validate().expect("invalid TagRecConfig");
        let num_tags = graph.num_tags();
        assert_eq!(tag_texts.len(), num_tags, "one text per tag");
        let mut rng = StdRng::seed_from_u64(cfg.train.seed);

        // Text-derived initial features. Hashed embeddings are unit-norm
        // (entries ~ d^-1/2); the paper's learned text features have
        // entry-scale variance, so scale up to keep Eq. 5's sigmoid out of
        // its flat region — otherwise every tag aggregates to ~0.5 and the
        // embeddings collapse.
        let embedder = HashedEmbedder::new(cfg.dim);
        let feature_scale = 4.0;
        let mut init = Matrix::zeros(num_tags, cfg.dim);
        for (t, text) in tag_texts.iter().enumerate() {
            let v = embedder.embed(text);
            for (dst, src) in init.row_slice_mut(t).iter_mut().zip(&v) {
                *dst = src * feature_scale;
            }
        }

        let mut graph_params = ParamSet::new(cfg.train.lr);
        let graph_layers = GraphLayers::new(
            graph,
            init,
            cfg.heads,
            cfg.neighbor_cap,
            cfg.use_neighbor_attention,
            cfg.use_metapath_attention,
            &mut graph_params,
            &mut rng,
        );

        let mut seq_params = ParamSet::new(cfg.train.lr);
        let pos =
            PositionEmbedding::new("tagrec.pos", MAX_CTX + 1, cfg.dim, &mut seq_params, &mut rng);
        let mask_emb = seq_params.register(Param::uniform(
            "tagrec.mask",
            1,
            cfg.dim,
            (1.0 / cfg.dim as f32).sqrt(),
            &mut rng,
        ));
        let encoder = TransformerEncoder::new(
            "tagrec.enc",
            cfg.seq_layers,
            cfg.dim,
            cfg.heads,
            &mut seq_params,
            &mut rng,
        );
        let out = Linear::new("tagrec.out", cfg.dim, num_tags, true, &mut seq_params, &mut rng);

        IntelliTag {
            cfg,
            graph_layers,
            pos,
            mask_emb,
            encoder,
            out,
            num_tags,
            z_table: Matrix::zeros(num_tags, cfg.dim),
            graph_params,
            seq_params,
        }
    }

    /// Trains the model.
    ///
    /// * `graph` — the TagRec heterogeneous graph.
    /// * `tag_texts` — surface text per tag (initializes `x_t` with hashed
    ///   text features, the paper's "tag features from a text perspective").
    /// * `sessions` — training sessions (ordered clicked-tag lists).
    pub fn train(
        graph: &HetGraph,
        tag_texts: &[String],
        sessions: &[Vec<usize>],
        cfg: TagRecConfig,
    ) -> Self {
        Self::train_with_metrics(graph, tag_texts, sessions, cfg, &MetricsRegistry::new())
    }

    /// Like [`IntelliTag::train`], but publishes per-epoch training gauges
    /// (`train.{model}.graph.loss`, `train.{model}.seq.loss`, throughput in
    /// examples/s, and an epoch counter) into a shared registry — the
    /// offline T+1 trainer's visibility into whether a nightly refresh is
    /// converging.
    pub fn train_with_metrics(
        graph: &HetGraph,
        tag_texts: &[String],
        sessions: &[Vec<usize>],
        cfg: TagRecConfig,
        metrics: &MetricsRegistry,
    ) -> Self {
        let mut model = Self::build(graph, tag_texts, cfg);
        let mut rng = StdRng::seed_from_u64(cfg.train.seed ^ 0x7261_696E); // "rain"

        // Both modes first learn the structural objective over the graph
        // (metapath neighbors rank above random tags). They differ in what
        // happens next — §IV-D: the step-by-step variant freezes the
        // resulting tag embeddings, while the end-to-end mode "further
        // adjusts the values of tag embeddings and propagates gradient
        // errors to the sharable graph-based layers" during sequence
        // training.
        let mut graph_params = ParamSet::new(cfg.train.lr);
        graph_params.extend(&model.graph_params);
        let mut seq_params = ParamSet::new(cfg.train.lr);
        seq_params.extend(&model.seq_params);
        model.pretrain_graph(&mut graph_params, &mut rng, metrics);
        if cfg.end_to_end {
            let mut params = ParamSet::new(cfg.train.lr);
            params.extend(&graph_params);
            params.extend(&seq_params);
            model.train_sequence(sessions, &mut params, true, true, &mut rng, metrics);
        } else {
            model.z_table = model.graph_layers.precompute_all();
            model.train_sequence(sessions, &mut seq_params, false, true, &mut rng, metrics);
        }

        // Final offline inference pass: freeze tag embeddings for serving.
        model.z_table = model.graph_layers.precompute_all();
        model
    }

    /// One online training increment: continues sequence training from the
    /// *current* parameters on a fresh batch of sessions (harvested from
    /// the click-event WAL), then refreshes the frozen serving table.
    ///
    /// Unlike [`IntelliTag::train`] this does not rebuild or re-pretrain
    /// the model — the graph structure is unchanged between increments, so
    /// only the sequential objective (and, in end-to-end mode, the shared
    /// graph layers behind it) moves. `epochs` bounds the passes over this
    /// increment's sessions independently of the offline
    /// `cfg.train.epochs`, and `increment_seed` keys all randomness
    /// (shuffling, masking, dropout tapes) so the result is a pure
    /// function of `(parameters, sessions, epochs, increment_seed)` — the
    /// property the hot-swap parity tests lean on.
    pub fn train_increment(
        &mut self,
        sessions: &[Vec<usize>],
        epochs: usize,
        increment_seed: u64,
        metrics: &MetricsRegistry,
    ) {
        if epochs == 0 || sessions.iter().all(|s| s.len() < 2) {
            return; // nothing to learn from — keep the model bit-stable
        }
        // train_sequence reads epochs and the tape seed from `self.cfg`;
        // swap in the increment's values and restore the offline config
        // afterwards so `save`/`load` round-trips stay architecture-stable.
        let saved = self.cfg.train;
        self.cfg.train.epochs = epochs;
        self.cfg.train.seed = saved.seed ^ increment_seed ^ 0x6F6E_6C69; // "onli"
        let mut rng = StdRng::seed_from_u64(self.cfg.train.seed);
        let mut params = ParamSet::new(self.cfg.train.lr);
        if self.cfg.end_to_end {
            params.extend(&self.graph_params);
        }
        params.extend(&self.seq_params);
        // Adam moments are hidden per-Param state that `save` does not
        // persist; resetting them makes the increment a pure function of
        // the parameter *values*, so a trainer resumed from a snapshot
        // produces bit-identical increments to one that never restarted.
        params.reset_moments();
        // Constant learning rate: the offline linear-decay schedule reaches
        // zero at the end of a run, and an increment small enough to fit in
        // one optimizer step would otherwise train at lr 0 and change
        // nothing. Increments are fine-tuning, not a fresh schedule.
        self.train_sequence(sessions, &mut params, self.cfg.end_to_end, false, &mut rng, metrics);
        self.cfg.train = saved;
        // Re-freeze tag embeddings for serving, exactly like the tail of
        // offline training (a no-op for the step-by-step variant, where the
        // graph layers did not move).
        self.z_table = self.graph_layers.precompute_all();
    }

    /// Serializes the trained model's parameters and precomputed tag
    /// embeddings — the artifact the offline T+1 trainer uploads to the
    /// online model servers (§V-B).
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let mut all = ParamSet::new(0.0);
        all.extend(&self.graph_params);
        all.extend(&self.seq_params);
        intellitag_tensor::Snapshot::capture(&all).write_to(w)?;
        intellitag_tensor::write_matrix(w, &self.z_table)
    }

    /// Loads a model saved by [`IntelliTag::save`]. The graph, tag texts and
    /// configuration must match the training-time ones (the architecture is
    /// rebuilt from them; parameter names and shapes are verified).
    pub fn load<R: std::io::Read>(
        graph: &HetGraph,
        tag_texts: &[String],
        cfg: TagRecConfig,
        r: &mut R,
    ) -> std::io::Result<Self> {
        let mut model = Self::build(graph, tag_texts, cfg);
        let snapshot = intellitag_tensor::Snapshot::read_from(r)?;
        let mut all = ParamSet::new(0.0);
        all.extend(&model.graph_params);
        all.extend(&model.seq_params);
        snapshot.restore(&all)?;
        model.z_table = intellitag_tensor::read_matrix(r)?;
        if model.z_table.shape() != (model.num_tags, model.cfg.dim) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "z table shape mismatch",
            ));
        }
        Ok(model)
    }

    /// Structural pretraining for the step-by-step variant: metapath
    /// neighbors should score higher than random tags (skip-gram-style
    /// ranking over the learned `z`).
    fn pretrain_graph(&self, params: &mut ParamSet, rng: &mut StdRng, metrics: &MetricsRegistry) {
        let prefix = format!("train.{}", self.cfg.model_name());
        let loss_gauge = metrics.gauge(&format!("{prefix}.graph.loss"));
        let rate_gauge = metrics.gauge(&format!("{prefix}.graph.examples_per_sec"));
        let epoch_counter = metrics.counter(&format!("{prefix}.epochs"));
        let num_tags = self.num_tags;
        let epochs = self.cfg.train.epochs.max(1);
        params.total_steps = Some((num_tags * epochs).div_ceil(self.cfg.train.batch_size).max(1));
        let negatives = 4;
        let mut order: Vec<usize> = (0..num_tags).collect();
        for _ in 0..epochs {
            let epoch_start = Instant::now();
            let mut epoch_loss = 0.0f64;
            let mut seen = 0u64;
            order.shuffle(rng);
            let mut in_batch = 0;
            for (i, &t) in order.iter().enumerate() {
                // A positive from any metapath neighborhood (excluding the
                // self-loop entry, which would make the objective trivial).
                let mut pos = None;
                for mp in 0..ALL_METAPATHS.len() {
                    let list: Vec<usize> = self
                        .graph_layers
                        .neighbor_list(t, mp)
                        .iter()
                        .copied()
                        .filter(|&n| n != t)
                        .collect();
                    if !list.is_empty() {
                        pos = list.choose(rng).copied();
                        break;
                    }
                }
                let Some(pos) = pos else { continue };
                let mut cands = vec![pos];
                while cands.len() < 1 + negatives {
                    let n = rng.gen_range(0..num_tags);
                    if n != t && n != pos {
                        cands.push(n);
                    }
                }
                let tape = Tape::training(rng.gen());
                let z_t = self.graph_layers.embed_tag(&tape, t); // 1 x d
                let z_c = self.graph_layers.embed_tags(&tape, &cands); // (1+neg) x d
                let logits = z_t.matmul(&z_c.transpose()); // 1 x (1+neg)
                let loss = logits.cross_entropy_logits(&[0]);
                epoch_loss += loss.scalar() as f64;
                seen += 1;
                loss.backward();
                in_batch += 1;
                if in_batch == self.cfg.train.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            loss_gauge.set(epoch_loss / seen.max(1) as f64);
            rate_gauge.set(seen as f64 / epoch_start.elapsed().as_secs_f64().max(1e-9));
            epoch_counter.inc();
        }
    }

    /// Cloze training of the sequential layers (Eq. 8-12). When
    /// `end_to_end`, the context embeddings come from the live graph layers;
    /// otherwise from the frozen z table.
    fn train_sequence(
        &self,
        sessions: &[Vec<usize>],
        params: &mut ParamSet,
        end_to_end: bool,
        decay_lr: bool,
        rng: &mut StdRng,
        metrics: &MetricsRegistry,
    ) {
        let prefix = format!("train.{}", self.cfg.model_name());
        let loss_gauge = metrics.gauge(&format!("{prefix}.seq.loss"));
        let rate_gauge = metrics.gauge(&format!("{prefix}.seq.examples_per_sec"));
        let epoch_counter = metrics.counter(&format!("{prefix}.epochs"));
        let mut examples: Vec<(&[usize], usize)> = Vec::new();
        for s in sessions {
            for k in 1..s.len() {
                let lo = k.saturating_sub(MAX_CTX);
                examples.push((&s[lo..k], s[k]));
            }
        }
        let cfg = &self.cfg.train;
        params.total_steps = if decay_lr {
            Some((examples.len() * cfg.epochs).div_ceil(cfg.batch_size.max(1)).max(1))
        } else {
            None
        };

        let mut order: Vec<usize> = (0..examples.len()).collect();
        for epoch in 0..cfg.epochs {
            let epoch_start = Instant::now();
            order.shuffle(rng);
            let mut epoch_loss = 0.0f64;
            let mut in_batch = 0;
            for (i, &ex) in order.iter().enumerate() {
                let (ctx, target) = examples[ex];
                let tape = Tape::training(cfg.seed ^ (epoch as u64) << 32 ^ ex as u64);
                let z_seq = if end_to_end {
                    self.graph_layers.embed_tags(&tape, ctx)
                } else {
                    self.gather_frozen(&tape, ctx)
                };
                // Cloze regularization (§VI-A4, mask proportion 0.2): replace
                // random context embeddings with the mask embedding.
                let z_seq = self.apply_context_masking(&tape, z_seq, cfg.mask_prob, rng);
                let logits = self.seq_logits(&tape, &z_seq);
                let loss = logits.cross_entropy_logits(&[target]);
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == cfg.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            loss_gauge.set(epoch_loss / examples.len().max(1) as f64);
            rate_gauge.set(examples.len() as f64 / epoch_start.elapsed().as_secs_f64().max(1e-9));
            epoch_counter.inc();
            if cfg.verbose {
                println!(
                    "{} epoch {epoch}: loss {:.4}",
                    self.cfg.model_name(),
                    epoch_loss / examples.len().max(1) as f64
                );
            }
        }
    }

    fn apply_context_masking(
        &self,
        tape: &Tape,
        z_seq: Tensor,
        mask_prob: f64,
        rng: &mut StdRng,
    ) -> Tensor {
        if mask_prob <= 0.0 || z_seq.rows() <= 1 {
            return z_seq;
        }
        let mut rows: Vec<Tensor> = Vec::with_capacity(z_seq.rows());
        let mut changed = false;
        for r in 0..z_seq.rows() {
            if rng.gen_bool(mask_prob) {
                rows.push(tape.param(&self.mask_emb));
                changed = true;
            } else {
                rows.push(z_seq.row(r));
            }
        }
        if changed {
            Tensor::concat_rows(&rows)
        } else {
            z_seq
        }
    }

    /// Looks up frozen tag embeddings as constants (no gradient to graph).
    fn gather_frozen(&self, tape: &Tape, tags: &[usize]) -> Tensor {
        tape.constant(self.z_table.gather_rows(tags))
    }

    /// Sequential forward (Eq. 8-11): append the mask embedding, add
    /// positions, run the Transformer stack, project the mask position.
    fn seq_logits(&self, tape: &Tape, z_seq: &Tensor) -> Tensor {
        let n = z_seq.rows();
        let mask = tape.param(&self.mask_emb);
        let x = Tensor::concat_rows(&[z_seq.clone(), mask]); // (n+1) x d
        let x = x.add(&self.pos.forward(tape, n + 1));
        let last = if self.cfg.use_contextual_attention {
            let h = self.encoder.forward(tape, &x);
            h.row(n)
        } else {
            // Ablation w/o ca: without attention no information can flow
            // between positions, so the prediction slot sees only the most
            // recent click (the degenerate Markov behaviour the paper's
            // large w/o-ca drop reflects).
            x.row(n.saturating_sub(1))
        };
        self.out.forward(tape, &last) // 1 x |T|
    }

    /// One stacked forward over several contexts at once: every context's
    /// `[z_seq; mask]` block is row-stacked into a single matrix and run
    /// through the encoder under a block-diagonal attention mask, so a
    /// micro-batch costs one forward instead of one per request.
    ///
    /// Bit-exact with [`Self::seq_logits`] per row: all non-attention ops are
    /// row-local, the additive `0.0`/`-inf` mask leaves in-block softmax bits
    /// untouched, and the GEMM engine's fixed ascending-k accumulation
    /// makes the masked (exactly-zero) probabilities bit-preserving no-ops,
    /// so each block's accumulation order matches the per-sequence run.
    /// Contexts must be non-empty and pre-clipped.
    fn seq_logits_batch(&self, contexts: &[&[usize]]) -> Matrix {
        let tape = Tape::new();
        let mask_emb = tape.param(&self.mask_emb);
        let mut parts: Vec<Tensor> = Vec::with_capacity(contexts.len() * 2);
        let mut lens = Vec::with_capacity(contexts.len());
        let mut pos_ids = Vec::new();
        let mut pred_rows = Vec::with_capacity(contexts.len());
        let mut offset = 0;
        for &ctx in contexts {
            let n = ctx.len();
            assert!(n > 0, "seq_logits_batch: contexts must be non-empty");
            parts.push(self.gather_frozen(&tape, ctx));
            parts.push(mask_emb.clone());
            lens.push(n + 1);
            pos_ids.extend(0..=n);
            pred_rows.push(if self.cfg.use_contextual_attention {
                offset + n // the mask slot
            } else {
                offset + n - 1 // ablation w/o ca: the most recent click
            });
            offset += n + 1;
        }
        let x = Tensor::concat_rows(&parts);
        let x = x.add(&self.pos.forward_ids(&tape, &pos_ids));
        let h = if self.cfg.use_contextual_attention {
            let attn_mask = tape.constant(Matrix::block_diag_mask(&lens));
            self.encoder.forward_masked(&tape, &x, &attn_mask)
        } else {
            x
        };
        self.out.forward(&tape, &h.gather_rows(&pred_rows)).value() // B x |T|
    }

    /// The model's configuration.
    pub fn config(&self) -> &TagRecConfig {
        &self.cfg
    }

    /// The inner graph layers (attention introspection, Fig. 5a/b).
    pub fn graph_layers(&self) -> &GraphLayers {
        &self.graph_layers
    }

    /// The precomputed tag-embedding table uploaded to serving.
    pub fn z_table(&self) -> &Matrix {
        &self.z_table
    }

    /// Contextual attention matrices (per layer, per head) for a context —
    /// the data behind Fig. 5c/d. The final row/column is the mask position.
    pub fn contextual_attention(&self, context: &[usize]) -> Vec<Vec<Matrix>> {
        assert!(!context.is_empty(), "context must be non-empty");
        let ctx = clip_context(context);
        let tape = Tape::new();
        let z_seq = self.gather_frozen(&tape, ctx);
        let n = z_seq.rows();
        let mask = tape.param(&self.mask_emb);
        let x = Tensor::concat_rows(&[z_seq, mask]);
        let x = x.add(&self.pos.forward(&tape, n + 1));
        self.encoder.forward_with_attn(&tape, &x).1
    }
}

fn clip_context(context: &[usize]) -> &[usize] {
    let lo = context.len().saturating_sub(MAX_CTX);
    &context[lo..]
}

impl SequenceRecommender for IntelliTag {
    fn name(&self) -> &str {
        self.cfg.model_name()
    }

    fn score_all(&self, context: &[usize]) -> Vec<f32> {
        if context.is_empty() {
            return vec![0.0; self.num_tags];
        }
        let ctx = clip_context(context);
        let tape = Tape::new();
        let z_seq = self.gather_frozen(&tape, ctx);
        self.seq_logits(&tape, &z_seq).value().into_vec()
    }

    fn score_candidates_batch(&self, reqs: &[(&[usize], &[usize])]) -> Vec<Vec<f32>> {
        // Empty contexts keep `score_all`'s all-zero scores; everything else
        // rides one stacked forward.
        let live: Vec<usize> = (0..reqs.len()).filter(|&i| !reqs[i].0.is_empty()).collect();
        let mut out: Vec<Vec<f32>> =
            reqs.iter().map(|&(_, cands)| vec![0.0; cands.len()]).collect();
        if live.is_empty() {
            return out;
        }
        let contexts: Vec<&[usize]> = live.iter().map(|&i| clip_context(reqs[i].0)).collect();
        let logits = self.seq_logits_batch(&contexts);
        for (row, &i) in live.iter().enumerate() {
            let all = logits.row_slice(row);
            out[i] = reqs[i].1.iter().map(|&c| all[c]).collect();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_baselines::TrainConfig;
    use intellitag_graph::HetGraphBuilder;

    /// A cyclic world: tag t co-clicked with t+1; sessions walk the cycle.
    fn cyclic_world(n: usize) -> (HetGraph, Vec<String>, Vec<Vec<usize>>) {
        let mut b = HetGraphBuilder::new(n, n, 1);
        for t in 0..n {
            b.add_asc(t, t);
            b.set_tenant(t, 0);
            b.add_clk(t, (t + 1) % n);
            b.add_cst(t, (t + 1) % n);
        }
        let g = b.build();
        let texts: Vec<String> = (0..n).map(|t| format!("tag {t}")).collect();
        let sessions: Vec<Vec<usize>> = (0..n * 12)
            .map(|i| {
                let s = i % n;
                vec![s, (s + 1) % n, (s + 2) % n]
            })
            .collect();
        (g, texts, sessions)
    }

    fn quick_cfg() -> TagRecConfig {
        TagRecConfig {
            dim: 16,
            heads: 2,
            seq_layers: 1,
            neighbor_cap: 4,
            train: TrainConfig {
                epochs: 40,
                lr: 0.01,
                batch_size: 16,
                seed: 7,
                mask_prob: 0.0,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn end_to_end_learns_cycle() {
        let n = 6;
        let (g, texts, sessions) = cyclic_world(n);
        let m = IntelliTag::train(&g, &texts, &sessions, quick_cfg());
        let mut correct = 0;
        for s in 0..n {
            let scores = m.score_all(&[s, (s + 1) % n]);
            let pred =
                scores.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            if pred == (s + 2) % n {
                correct += 1;
            }
        }
        assert!(correct >= n - 2, "learned {correct}/{n} transitions");
    }

    #[test]
    fn training_publishes_metrics() {
        let (g, texts, sessions) = cyclic_world(5);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 2;
        let registry = MetricsRegistry::new();
        let m = IntelliTag::train_with_metrics(&g, &texts, &sessions, cfg, &registry);
        let prefix = format!("train.{}", m.name());
        // Graph pretraining and sequence training each ran 2 epochs.
        assert_eq!(registry.counter(&format!("{prefix}.epochs")).get(), 4);
        assert!(registry.gauge(&format!("{prefix}.graph.loss")).get() > 0.0);
        assert!(registry.gauge(&format!("{prefix}.seq.loss")).get() > 0.0);
        assert!(registry.gauge(&format!("{prefix}.seq.examples_per_sec")).get() > 0.0);
        assert!(registry.gauge(&format!("{prefix}.graph.examples_per_sec")).get() > 0.0);
    }

    #[test]
    fn step_by_step_variant_trains_and_scores() {
        let (g, texts, sessions) = cyclic_world(5);
        let m = IntelliTag::train(&g, &texts, &sessions, quick_cfg().step_by_step());
        assert_eq!(m.name(), "IntelliTag_st");
        let scores = m.score_all(&[0]);
        assert_eq!(scores.len(), 5);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn ablations_train_and_score() {
        let (g, texts, sessions) = cyclic_world(5);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 2;
        for variant in [
            cfg.without_neighbor_attention(),
            cfg.without_metapath_attention(),
            cfg.without_contextual_attention(),
        ] {
            let m = IntelliTag::train(&g, &texts, &sessions, variant);
            let scores = m.score_all(&[1, 2]);
            assert_eq!(scores.len(), 5);
            assert!(scores.iter().all(|s| s.is_finite()), "{}", m.name());
        }
    }

    #[test]
    fn train_increment_is_deterministic_and_moves_the_model() {
        let (g, texts, sessions) = cyclic_world(6);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 2;
        let (day1, day2) = sessions.split_at(sessions.len() / 2);
        let registry = MetricsRegistry::new();

        let run = || {
            let mut m = IntelliTag::train(&g, &texts, day1, cfg);
            m.train_increment(day2, 2, 1, &registry);
            let mut bytes = Vec::new();
            m.save(&mut bytes).unwrap();
            (m, bytes)
        };
        let (m_a, bytes_a) = run();
        let (_m_b, bytes_b) = run();
        assert_eq!(bytes_a, bytes_b, "increment must be a pure function of its inputs");

        // The increment actually learns: parameters moved off the base
        // checkpoint, and the restored config still matches the offline one.
        let mut base = IntelliTag::train(&g, &texts, day1, cfg);
        let mut base_bytes = Vec::new();
        base.save(&mut base_bytes).unwrap();
        assert_ne!(bytes_a, base_bytes, "increment left the model unchanged");
        assert_eq!(m_a.cfg.train.epochs, cfg.train.epochs);
        assert_eq!(m_a.cfg.train.seed, cfg.train.seed);

        // Different increment seeds diverge; zero epochs is a strict no-op.
        let mut other = IntelliTag::train(&g, &texts, day1, cfg);
        other.train_increment(day2, 2, 2, &registry);
        let mut other_bytes = Vec::new();
        other.save(&mut other_bytes).unwrap();
        assert_ne!(bytes_a, other_bytes);
        base.train_increment(day2, 0, 1, &registry);
        let mut noop_bytes = Vec::new();
        base.save(&mut noop_bytes).unwrap();
        assert_eq!(noop_bytes, base_bytes);

        // And the incremented model round-trips through save/load like any
        // offline artifact (the snapshot registry depends on this).
        let loaded = IntelliTag::load(&g, &texts, cfg, &mut &bytes_a[..]).unwrap();
        let ctx = [0usize, 1];
        assert_eq!(m_a.score_all(&ctx), loaded.score_all(&ctx));
    }

    #[test]
    fn batched_scoring_is_bit_exact_with_serial() {
        let n = 6;
        let (g, texts, sessions) = cyclic_world(n);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 2;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        // Mixed lengths, duplicates, an empty context, an over-long context
        // (clipped to MAX_CTX), and differing candidate pools.
        let long: Vec<usize> = (0..MAX_CTX + 4).map(|i| i % n).collect();
        let contexts: Vec<Vec<usize>> =
            vec![vec![0, 1], vec![3], vec![0, 1], vec![], vec![2, 3, 4, 5], long];
        let pools: Vec<Vec<usize>> = vec![
            (0..n).collect(),
            vec![5, 0, 2],
            vec![1],
            (0..n).collect(),
            vec![4, 4, 1],
            (0..n).rev().collect(),
        ];
        let reqs: Vec<(&[usize], &[usize])> =
            contexts.iter().zip(&pools).map(|(c, p)| (c.as_slice(), p.as_slice())).collect();
        let batched = m.score_candidates_batch(&reqs);
        for (i, &(ctx, pool)) in reqs.iter().enumerate() {
            let serial = m.score_candidates(ctx, pool);
            // Bitwise equality, not approximate: the serving front treats the
            // two paths as interchangeable.
            assert_eq!(batched[i], serial, "request {i} diverged");
        }
    }

    #[test]
    fn batched_scoring_without_contextual_attention_matches_serial() {
        let (g, texts, sessions) = cyclic_world(5);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 2;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg.without_contextual_attention());
        let contexts: Vec<Vec<usize>> = vec![vec![1, 2], vec![4], vec![0, 1, 2, 3]];
        let pool: Vec<usize> = (0..5).collect();
        let reqs: Vec<(&[usize], &[usize])> =
            contexts.iter().map(|c| (c.as_slice(), pool.as_slice())).collect();
        let batched = m.score_candidates_batch(&reqs);
        for (i, &(ctx, pool)) in reqs.iter().enumerate() {
            assert_eq!(batched[i], m.score_candidates(ctx, pool), "request {i} diverged");
        }
    }

    #[test]
    fn batched_scoring_all_empty_contexts_is_zero() {
        let (g, texts, sessions) = cyclic_world(4);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 1;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        let pool = [0usize, 2];
        let reqs: Vec<(&[usize], &[usize])> = vec![(&[], &pool), (&[], &pool)];
        assert_eq!(m.score_candidates_batch(&reqs), vec![vec![0.0; 2]; 2]);
    }

    #[test]
    fn empty_context_is_safe() {
        let (g, texts, sessions) = cyclic_world(4);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 1;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        assert_eq!(m.score_all(&[]), vec![0.0; 4]);
    }

    #[test]
    fn z_table_is_finite_and_sized() {
        let (g, texts, sessions) = cyclic_world(4);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 1;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        assert_eq!(m.z_table().shape(), (4, 16));
        assert!(!m.z_table().has_non_finite());
    }

    #[test]
    fn contextual_attention_has_mask_row() {
        let (g, texts, sessions) = cyclic_world(4);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 1;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        let attn = m.contextual_attention(&[0, 1]);
        assert_eq!(attn.len(), 1); // layers
        assert_eq!(attn[0].len(), 2); // heads
        assert_eq!(attn[0][0].shape(), (3, 3)); // 2 clicks + mask
                                                // Rows are distributions.
        for h in &attn[0] {
            for r in 0..3 {
                let s: f32 = h.row_slice(r).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn save_load_roundtrip_preserves_scores() {
        let (g, texts, sessions) = cyclic_world(5);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 2;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let loaded = IntelliTag::load(&g, &texts, cfg, &mut buf.as_slice()).unwrap();
        assert_eq!(m.z_table(), loaded.z_table());
        for ctx in [vec![0usize], vec![1, 2], vec![0, 3, 4]] {
            assert_eq!(m.score_all(&ctx), loaded.score_all(&ctx));
        }
    }

    #[test]
    fn load_rejects_mismatched_architecture() {
        let (g, texts, sessions) = cyclic_world(5);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 1;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        let mut buf = Vec::new();
        m.save(&mut buf).unwrap();
        let mut other = cfg;
        other.dim = 8; // different width -> shape mismatch
        assert!(IntelliTag::load(&g, &texts, other, &mut buf.as_slice()).is_err());
    }

    #[test]
    fn long_context_is_clipped() {
        let (g, texts, sessions) = cyclic_world(4);
        let mut cfg = quick_cfg();
        cfg.train.epochs = 1;
        let m = IntelliTag::train(&g, &texts, &sessions, cfg);
        let long: Vec<usize> = (0..50).map(|i| i % 4).collect();
        assert_eq!(m.score_all(&long).len(), 4);
    }
}
