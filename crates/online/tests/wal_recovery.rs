//! WAL crash-recovery guarantees, pinned exhaustively and by property:
//! a log truncated or bit-flipped at *any* byte offset recovers — without
//! panicking — the longest prefix of fully valid records, and replaying
//! that prefix yields exactly the state a fault-free log of those records
//! would.

use intellitag_online::{click_sessions, decode_all, WalEvent, WAL_MAGIC};
use proptest::prelude::*;

fn encode_log(events: &[WalEvent]) -> Vec<u8> {
    let mut buf = WAL_MAGIC.to_vec();
    for e in events {
        e.encode_record(&mut buf);
    }
    buf
}

/// Byte offset where each record ends (record `i` spans
/// `boundaries[i]..boundaries[i+1]` with `boundaries[0]` just past the
/// magic).
fn record_boundaries(events: &[WalEvent]) -> Vec<usize> {
    let mut ends = vec![WAL_MAGIC.len()];
    let mut buf = WAL_MAGIC.to_vec();
    for e in events {
        e.encode_record(&mut buf);
        ends.push(buf.len());
    }
    ends
}

fn arb_event() -> impl Strategy<Value = WalEvent> {
    prop_oneof![
        (0usize..1000, proptest::collection::vec(0usize..100_000, 0..12))
            .prop_map(|(tenant, clicks)| WalEvent::TagClick { tenant, clicks }),
        (0usize..1000, "[a-zA-Z0-9 ?密码变更]{0,40}")
            .prop_map(|(tenant, text)| WalEvent::Question { tenant, text }),
    ]
}

fn fixed_events() -> Vec<WalEvent> {
    vec![
        WalEvent::TagClick { tenant: 0, clicks: vec![3, 1, 4] },
        WalEvent::Question { tenant: 12, text: "how do I change my password".into() },
        WalEvent::TagClick { tenant: 7, clicks: vec![] },
        WalEvent::TagClick { tenant: 1, clicks: vec![128, 300, 70000] },
        WalEvent::Question { tenant: 3, text: "账单在哪里".into() },
        WalEvent::TagClick { tenant: 900, clicks: vec![0, 0, 0, 0] },
    ]
}

/// Truncation at every byte offset — the crash-mid-append model —
/// exhaustively: the recovered events are exactly the records fully
/// contained in the prefix, and the valid length never points past the
/// cut.
#[test]
fn truncation_at_every_offset_recovers_longest_valid_prefix() {
    let events = fixed_events();
    let buf = encode_log(&events);
    let bounds = record_boundaries(&events);
    for cut in 0..=buf.len() {
        let (recovered, valid) = decode_all(&buf[..cut]);
        let intact = bounds.iter().filter(|&&b| b > WAL_MAGIC.len() && b <= cut).count();
        assert_eq!(
            recovered,
            &events[..intact],
            "cut at byte {cut}: must recover exactly the {intact} intact records"
        );
        let expected_valid = if cut < WAL_MAGIC.len() { 0 } else { bounds[intact] };
        assert_eq!(valid, expected_valid, "cut at byte {cut}");
        assert!(valid <= cut, "valid length may never exceed the surviving bytes");
    }
}

/// A single flipped bit at every byte offset — the torn-sector model —
/// exhaustively: never a panic, and everything before the damaged record
/// survives. (A flip can only damage the record containing it; by-offset
/// framing plus per-record CRCs confine the blast radius.)
#[test]
fn bit_flip_at_every_offset_keeps_the_preceding_records() {
    let events = fixed_events();
    let buf = encode_log(&events);
    let bounds = record_boundaries(&events);
    for offset in 0..buf.len() {
        for bit in [0x01u8, 0x80u8] {
            let mut damaged = buf.clone();
            damaged[offset] ^= bit;
            let (recovered, valid) = decode_all(&damaged);
            assert!(valid <= buf.len());
            if offset < WAL_MAGIC.len() {
                assert!(recovered.is_empty(), "magic flip at {offset} must invalidate the file");
                continue;
            }
            // Records strictly before the flipped byte's record must
            // survive untouched.
            let safe = bounds.iter().filter(|&&b| b > WAL_MAGIC.len() && b <= offset).count();
            assert!(
                recovered.len() >= safe,
                "flip at {offset}: {safe} records precede the damage, got {}",
                recovered.len()
            );
            assert_eq!(
                &recovered[..safe],
                &events[..safe],
                "flip at {offset}: preceding records must replay byte-identically"
            );
            // Whatever did survive must be a prefix of the original log —
            // corruption may hide records, never invent or reorder them.
            assert_eq!(
                recovered,
                &events[..recovered.len()],
                "flip at {offset}: recovery must be a prefix"
            );
        }
    }
}

proptest! {
    /// Random logs, random truncation points: recovery equals a fault-free
    /// log of exactly the surviving records — same events, same replayed
    /// training sessions.
    #[test]
    fn truncated_random_log_replays_like_a_fault_free_prefix(
        events in proptest::collection::vec(arb_event(), 1..12),
        cut_frac in 0.0f64..=1.0,
    ) {
        let buf = encode_log(&events);
        let cut = (buf.len() as f64 * cut_frac) as usize;
        let (recovered, valid) = decode_all(&buf[..cut]);
        prop_assert!(valid <= cut);
        prop_assert!(recovered.len() <= events.len());
        prop_assert_eq!(&recovered, &events[..recovered.len()]);
        // Re-encoding the recovered prefix reproduces the valid bytes:
        // recovery loses the torn tail and nothing else.
        let replayed = encode_log(&recovered);
        prop_assert_eq!(&replayed[..], &buf[..valid.max(WAL_MAGIC.len()).min(buf.len())]);
        // And the trainer-facing projection agrees with the fault-free one.
        let offline: Vec<Vec<usize>> = click_sessions(&events[..recovered.len()]);
        prop_assert_eq!(click_sessions(&recovered), offline);
    }

    /// Random logs, random byte corruption (flip, not truncate): decoding
    /// never panics and always yields a prefix of the original events.
    #[test]
    fn corrupted_random_log_never_panics_and_stays_a_prefix(
        events in proptest::collection::vec(arb_event(), 1..10),
        offset_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let mut buf = encode_log(&events);
        let offset = ((buf.len() - 1) as f64 * offset_frac) as usize;
        buf[offset] ^= xor;
        let (recovered, valid) = decode_all(&buf);
        prop_assert!(valid <= buf.len());
        prop_assert_eq!(&recovered, &events[..recovered.len()]);
    }

    /// Encode/decode round trip over arbitrary events, including varint
    /// edge values and multi-byte UTF-8 questions.
    #[test]
    fn random_events_round_trip(events in proptest::collection::vec(arb_event(), 0..16)) {
        let buf = encode_log(&events);
        let (decoded, valid) = decode_all(&buf);
        prop_assert_eq!(decoded, events);
        prop_assert_eq!(valid, buf.len());
    }
}
