//! The append-only click-event WAL: the durable half of the continuous-
//! training loop.
//!
//! Serving emits one [`WalEvent`] per served model-route request (tag-click
//! trails and free-text questions); the incremental trainer tails the log
//! and folds batches into the model. The format is deliberately tiny and
//! self-describing:
//!
//! ```text
//! file   := magic("ITAGWAL1") record*
//! record := varint(payload_len) payload crc32_le(payload)
//! payload:= varint(type) varint(tenant) body
//! body   := varint(n) varint(click)*n          -- type 1, tag click
//!         | varint(len) utf8[len]              -- type 2, question
//! ```
//!
//! Varints are the gateway wire protocol's LEB128 codec
//! ([`intellitag_gateway::codec`]) — one integer encoding across the wire
//! and the log. Every record carries a CRC32 of its payload, so recovery
//! after a crash is a single forward scan: decode records until the first
//! torn or corrupt one, truncate there, resume appending. The recovery
//! proptests (`tests/wal_recovery.rs`) pin that a fault at *any* byte
//! offset recovers the longest valid prefix without a panic.
//!
//! Appends are fsync-batched ([`WalWriter::open`]'s `sync_every`): the
//! serving path pays one `write` per event and one `fsync` per batch —
//! the classic group-commit trade of bounded loss window for throughput.
//!
//! ## Segmented logs
//!
//! A single-file WAL grows forever. [`SegmentedWal`] keeps the same record
//! format but spreads the log over a directory of fixed-size segment
//! files, each named by the 20-digit **logical** byte offset where it
//! starts (`00000000000000000000.wal`, `00000000000000004096.wal`, …).
//! The logical offset space is exactly the single-file offset space — the
//! first segment's magic occupies logical `[0, 8)` and every later
//! segment's magic is a file-local header outside it — so a trainer
//! cursor is the same plain byte offset either way. The writer rolls to a
//! new segment once the active file crosses `segment_bytes`, and
//! [`SegmentedWal::compact`] deletes any sealed segment whose records all
//! sit behind the latest snapshot's persisted cursor: the disk footprint
//! tracks the unconsumed tail instead of the log's lifetime.

use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use intellitag_gateway::codec::{read_varint, write_varint};
use intellitag_obs::{
    Counter, MetricsRegistry, WAL_APPENDS_METRIC, WAL_BYTES_METRIC, WAL_COMPACTED_SEGMENTS_METRIC,
    WAL_FSYNCS_METRIC, WAL_ROTATIONS_METRIC, WAL_SEGMENTS_METRIC, WAL_TRUNCATED_BYTES_METRIC,
};

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"ITAGWAL1";

/// Upper bound on a single record's payload — anything larger is treated
/// as corruption during the recovery scan (a click trail or question this
/// size cannot come from the serving path).
pub const MAX_RECORD_BYTES: usize = 1 << 20;

const TYPE_TAG_CLICK: u64 = 1;
const TYPE_QUESTION: u64 = 2;

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time —
/// record integrity without a dependency.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC32_TABLE: [u32; 256] = crc32_table();

/// One step of the CRC32 rolling state (start from `0xFFFF_FFFF`, finish
/// by complementing) — lets multi-buffer callers checksum without
/// concatenating.
pub(crate) fn crc32_update(state: u32, byte: u8) -> u32 {
    CRC32_TABLE[((state ^ byte as u32) & 0xFF) as usize] ^ (state >> 8)
}

/// CRC32 (IEEE) checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = crc32_update(c, b);
    }
    !c
}

/// One logged serving event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalEvent {
    /// A served tag-click trail (ordered, oldest click first).
    TagClick {
        /// Requesting tenant.
        tenant: usize,
        /// The clicked-tag trail the request carried.
        clicks: Vec<usize>,
    },
    /// A served free-text question.
    Question {
        /// Requesting tenant.
        tenant: usize,
        /// The question text.
        text: String,
    },
}

impl WalEvent {
    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalEvent::TagClick { tenant, clicks } => {
                write_varint(out, TYPE_TAG_CLICK);
                write_varint(out, *tenant as u64);
                write_varint(out, clicks.len() as u64);
                for &c in clicks {
                    write_varint(out, c as u64);
                }
            }
            WalEvent::Question { tenant, text } => {
                write_varint(out, TYPE_QUESTION);
                write_varint(out, *tenant as u64);
                write_varint(out, text.len() as u64);
                out.extend_from_slice(text.as_bytes());
            }
        }
    }

    /// Decodes one payload. `None` on any malformation — an unknown type,
    /// a count that overruns the payload, invalid UTF-8, or trailing bytes
    /// (a valid prefix with garbage appended is still corruption).
    fn decode_payload(payload: &[u8]) -> Option<WalEvent> {
        let mut pos = 0;
        let ty = read_varint(payload, &mut pos).ok()?;
        let tenant = read_varint(payload, &mut pos).ok()? as usize;
        let event = match ty {
            TYPE_TAG_CLICK => {
                let n = read_varint(payload, &mut pos).ok()? as usize;
                if n > payload.len().saturating_sub(pos) {
                    return None; // every click is at least one byte
                }
                let mut clicks = Vec::with_capacity(n);
                for _ in 0..n {
                    clicks.push(read_varint(payload, &mut pos).ok()? as usize);
                }
                WalEvent::TagClick { tenant, clicks }
            }
            TYPE_QUESTION => {
                let len = read_varint(payload, &mut pos).ok()? as usize;
                let end = pos.checked_add(len)?;
                let bytes = payload.get(pos..end)?;
                pos = end;
                WalEvent::Question { tenant, text: std::str::from_utf8(bytes).ok()?.to_string() }
            }
            _ => return None,
        };
        if pos != payload.len() {
            return None;
        }
        Some(event)
    }

    /// Appends the framed record — varint length, payload, CRC32 — to
    /// `out`.
    pub fn encode_record(&self, out: &mut Vec<u8>) {
        let mut payload = Vec::with_capacity(16);
        self.encode_payload(&mut payload);
        write_varint(out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
    }
}

/// Decodes records from `buf` starting at byte `start` (the trainer's
/// resumable cursor). Returns the events and the offset one past the last
/// fully valid record: the scan stops — without consuming anything — at
/// the first record that is torn (runs past the buffer), oversized, fails
/// its CRC, or decodes to a malformed payload.
pub fn decode_records(buf: &[u8], start: usize) -> (Vec<WalEvent>, usize) {
    let mut events = Vec::new();
    let mut valid = start.min(buf.len());
    loop {
        let mut pos = valid;
        let Ok(len) = read_varint(buf, &mut pos) else { break };
        let len = len as usize;
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let end = pos + len + 4; // bounded by MAX_RECORD_BYTES: no overflow
        if end > buf.len() {
            break;
        }
        let payload = &buf[pos..pos + len];
        let stored = u32::from_le_bytes(buf[pos + len..end].try_into().expect("4 crc bytes"));
        if crc32(payload) != stored {
            break;
        }
        let Some(event) = WalEvent::decode_payload(payload) else { break };
        events.push(event);
        valid = end;
    }
    (events, valid)
}

/// Decodes a whole WAL byte image. A missing or wrong magic invalidates
/// the entire file (`valid_len` 0); otherwise this is
/// [`decode_records`] from just past the magic.
pub fn decode_all(bytes: &[u8]) -> (Vec<WalEvent>, usize) {
    if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return (Vec::new(), 0);
    }
    decode_records(bytes, WAL_MAGIC.len())
}

/// Outcome of recovering a WAL file after a crash.
#[derive(Debug)]
pub struct Recovered {
    /// Every event in the longest valid prefix, in append order.
    pub events: Vec<WalEvent>,
    /// Byte length of the valid prefix — where appends resume.
    pub valid_len: u64,
    /// Torn/corrupt tail bytes dropped by recovery.
    pub truncated: u64,
}

/// Reads the WAL at `path` and scans for its longest valid prefix. A
/// missing file recovers as empty (a fresh log); a present file is never
/// modified — truncation happens in [`WalWriter::open`].
pub fn recover(path: &Path) -> io::Result<Recovered> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let (events, valid_len) = decode_all(&bytes);
    Ok(Recovered {
        events,
        valid_len: valid_len as u64,
        truncated: (bytes.len() - valid_len) as u64,
    })
}

/// Projects the TagRec training sessions out of a replayed event stream:
/// one session per [`WalEvent::TagClick`] trail, in log order. Questions
/// feed the Q&A side, not sequence training, and are skipped. No length
/// filtering happens here — sessions too short to yield a training example
/// are already no-ops inside `IntelliTag::train_increment`, and keeping
/// the projection lossless is what lets `tests/t_plus_one.rs` assert the
/// offline and WAL-replayed paths train on *identical* inputs.
pub fn click_sessions(events: &[WalEvent]) -> Vec<Vec<usize>> {
    events
        .iter()
        .filter_map(|e| match e {
            WalEvent::TagClick { clicks, .. } => Some(clicks.clone()),
            WalEvent::Question { .. } => None,
        })
        .collect()
}

/// Appending side of the WAL: owns the file, batches fsyncs, publishes
/// `wal.*` metrics. One writer per log — serving funnels events through a
/// single sink.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    len: u64,
    sync_every: usize,
    unsynced: usize,
    record_buf: Vec<u8>,
    appends: Arc<Counter>,
    bytes: Arc<Counter>,
    fsyncs: Arc<Counter>,
}

impl WalWriter {
    /// Opens (creating if absent) the WAL at `path`: recovers the longest
    /// valid prefix, truncates any torn tail (counted in
    /// `wal.truncated_bytes`), and positions for appending. Returns the
    /// writer plus the recovery outcome so callers can replay surviving
    /// events before accepting new ones.
    ///
    /// `sync_every` is the group-commit knob: an fsync every N appends
    /// (`1` = synchronous durability, larger = bounded loss window).
    pub fn open(
        path: &Path,
        sync_every: usize,
        registry: &MetricsRegistry,
    ) -> io::Result<(WalWriter, Recovered)> {
        assert!(sync_every >= 1, "sync_every must be at least 1");
        let recovered = recover(path)?;
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)?;
        let mut len = recovered.valid_len;
        if recovered.truncated > 0 {
            file.set_len(len)?;
            registry.counter(WAL_TRUNCATED_BYTES_METRIC).add(recovered.truncated);
        }
        if len == 0 {
            // Fresh log (or an unrecognizable file): restart from magic.
            file.set_len(0)?;
            file.write_all(WAL_MAGIC)?;
            len = WAL_MAGIC.len() as u64;
        }
        file.seek(SeekFrom::Start(len))?;
        Ok((
            WalWriter {
                file,
                path: path.to_path_buf(),
                len,
                sync_every,
                unsynced: 0,
                record_buf: Vec::with_capacity(64),
                appends: registry.counter(WAL_APPENDS_METRIC),
                bytes: registry.counter(WAL_BYTES_METRIC),
                fsyncs: registry.counter(WAL_FSYNCS_METRIC),
            },
            recovered,
        ))
    }

    /// Appends one event; fsyncs when the group-commit batch fills.
    pub fn append(&mut self, event: &WalEvent) -> io::Result<()> {
        self.record_buf.clear();
        event.encode_record(&mut self.record_buf);
        self.file.write_all(&self.record_buf)?;
        self.len += self.record_buf.len() as u64;
        self.appends.inc();
        self.bytes.add(self.record_buf.len() as u64);
        self.unsynced += 1;
        if self.unsynced >= self.sync_every {
            self.sync()?;
        }
        Ok(())
    }

    /// Forces any unsynced appends to disk (also called on drop,
    /// best-effort).
    pub fn sync(&mut self) -> io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        self.file.sync_data()?;
        self.unsynced = 0;
        self.fsyncs.inc();
        Ok(())
    }

    /// Current log length in bytes (magic included).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records yet.
    pub fn is_empty(&self) -> bool {
        self.len <= WAL_MAGIC.len() as u64
    }

    /// The log's path (the trainer tails the same file).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        let _ = self.sync();
    }
}

/// The file a segment starting at logical offset `start` lives in.
fn segment_path(dir: &Path, start: u64) -> PathBuf {
    dir.join(format!("{start:020}.wal"))
}

/// Logical offset of file offset `file_off` inside the segment starting at
/// `start`. Segment 0's magic is part of the logical space (offsets there
/// equal file offsets); every later segment's magic is a file-local header
/// the logical space skips.
fn logical_at(start: u64, file_off: u64) -> u64 {
    if start == 0 {
        file_off
    } else {
        start + file_off - WAL_MAGIC.len() as u64
    }
}

/// Inverse of [`logical_at`]: the file offset of logical offset `logical`
/// inside the segment starting at `start`.
fn file_at(start: u64, logical: u64) -> u64 {
    if start == 0 {
        logical
    } else {
        logical - start + WAL_MAGIC.len() as u64
    }
}

/// The sorted logical start offsets of the segment files in `dir`. Only
/// `NNNN….wal` names with the 20-digit zero-padded shape count; anything
/// else in the directory is ignored.
pub fn list_segments(dir: &Path) -> io::Result<Vec<u64>> {
    let mut starts = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(".wal") else { continue };
        if stem.len() == 20 && stem.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(start) = stem.parse::<u64>() {
                starts.push(start);
            }
        }
    }
    starts.sort_unstable();
    Ok(starts)
}

/// Tails a segmented WAL directory from logical `cursor`: decodes every
/// record in `[cursor, end)` across however many segments that spans, and
/// returns the events plus the advanced cursor. The scan stops — exactly
/// like [`decode_records`] — at the first torn or corrupt record, and at
/// any gap in the segment chain. A cursor pointing below the compaction
/// horizon (its segments already deleted) resumes at the oldest surviving
/// record; by the compaction contract those deleted records are already in
/// the persisted model, so nothing is lost.
pub fn read_segments(dir: &Path, cursor: u64) -> io::Result<(Vec<WalEvent>, u64)> {
    let starts = match list_segments(dir) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), cursor)),
        Err(e) => return Err(e),
    };
    let mut events = Vec::new();
    let Some(&first) = starts.first() else { return Ok((events, cursor)) };
    let mut cur = cursor.max(logical_at(first, WAL_MAGIC.len() as u64));
    for (i, &start) in starts.iter().enumerate() {
        let path = segment_path(dir, start);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            // Compacted away between the listing and the read: the records
            // it held are behind any live cursor by contract.
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            break;
        }
        let end = logical_at(start, bytes.len() as u64);
        if end <= cur {
            continue; // wholly behind the cursor
        }
        if cur < logical_at(start, WAL_MAGIC.len() as u64) {
            break; // gap in the chain below the cursor
        }
        let (fresh, valid) = decode_records(&bytes, file_at(start, cur) as usize);
        events.extend(fresh);
        cur = logical_at(start, valid as u64);
        if valid < bytes.len() {
            break; // torn or corrupt record: the scan cannot cross it
        }
        if starts.get(i + 1).is_some_and(|&next| next != cur) {
            break; // the next segment does not start where this one ended
        }
    }
    Ok((events, cur))
}

/// A size-bounded, compactable WAL: the single-file record format spread
/// over a directory of segments (see the module docs). One writer per
/// directory, same append/sync/group-commit semantics as [`WalWriter`].
pub struct SegmentedWal {
    dir: PathBuf,
    segment_bytes: u64,
    sync_every: usize,
    registry: MetricsRegistry,
    writer: WalWriter,
    active_start: u64,
    rotations: Arc<Counter>,
    compacted: Arc<Counter>,
}

impl SegmentedWal {
    /// Opens (creating if absent) the segmented WAL in `dir`, recovering
    /// the longest valid prefix across segments: sealed segments must be
    /// intact and flush against their successor; the first damaged or
    /// discontiguous segment becomes the new active tail and every
    /// later (orphaned) segment is deleted — the multi-file analogue of
    /// truncating a torn tail. `segment_bytes` is the roll threshold: a
    /// fresh segment starts once the active file reaches it.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        sync_every: usize,
        registry: &MetricsRegistry,
    ) -> io::Result<(SegmentedWal, Recovered)> {
        assert!(
            segment_bytes > WAL_MAGIC.len() as u64,
            "segment_bytes must exceed the magic header"
        );
        std::fs::create_dir_all(dir)?;
        let starts = list_segments(dir)?;
        let mut events = Vec::new();
        let mut truncated = 0u64;
        let mut active_start = 0;
        for (i, &start) in starts.iter().enumerate() {
            active_start = start;
            let rec = recover(&segment_path(dir, start))?;
            events.extend(rec.events);
            truncated += rec.truncated;
            // An all-invalid segment (bad magic) recovers as empty: its
            // writer restarts at the segment's own logical start.
            let end = if rec.valid_len == 0 {
                logical_at(start, WAL_MAGIC.len() as u64)
            } else {
                logical_at(start, rec.valid_len)
            };
            let contiguous = starts.get(i + 1).is_none_or(|&next| next == end);
            if rec.truncated > 0 || !contiguous {
                // The valid prefix ends inside this segment: anything
                // beyond it is unreachable. Drop the orphans.
                for &orphan in &starts[i + 1..] {
                    let path = segment_path(dir, orphan);
                    let len = std::fs::metadata(&path)?.len();
                    truncated += len;
                    registry.counter(WAL_TRUNCATED_BYTES_METRIC).add(len);
                    std::fs::remove_file(&path)?;
                }
                break;
            }
        }
        // Reopening the tail segment re-runs its recovery (idempotent) and
        // truncates the torn bytes counted above.
        let (writer, _) = WalWriter::open(&segment_path(dir, active_start), sync_every, registry)?;
        let wal = SegmentedWal {
            dir: dir.to_path_buf(),
            segment_bytes,
            sync_every,
            registry: registry.clone(),
            writer,
            active_start,
            rotations: registry.counter(WAL_ROTATIONS_METRIC),
            compacted: registry.counter(WAL_COMPACTED_SEGMENTS_METRIC),
        };
        wal.update_segments_gauge()?;
        let valid_len = wal.logical_len();
        Ok((wal, Recovered { events, valid_len, truncated }))
    }

    /// Appends one event, rolling to a fresh segment first when the active
    /// file has reached the size threshold. Same fsync batching as
    /// [`WalWriter::append`].
    pub fn append(&mut self, event: &WalEvent) -> io::Result<()> {
        if self.writer.len() >= self.segment_bytes && !self.writer.is_empty() {
            self.roll()?;
        }
        self.writer.append(event)
    }

    /// Seals the active segment and opens the next one at the current
    /// logical end.
    fn roll(&mut self) -> io::Result<()> {
        self.writer.sync()?;
        let next = self.logical_len();
        let (writer, _) =
            WalWriter::open(&segment_path(&self.dir, next), self.sync_every, &self.registry)?;
        self.writer = writer;
        self.active_start = next;
        self.rotations.inc();
        self.update_segments_gauge()
    }

    /// Deletes every sealed segment whose records all sit at logical
    /// offsets below `persisted_cursor` — the WAL cursor of the latest
    /// *durable* model snapshot, so deleted records can never be needed
    /// again (a restarted trainer resumes at or past that cursor). The
    /// active segment is never deleted. Returns how many segments went.
    pub fn compact(&mut self, persisted_cursor: u64) -> io::Result<usize> {
        let mut removed = 0usize;
        for start in list_segments(&self.dir)? {
            if start == self.active_start {
                continue;
            }
            let path = segment_path(&self.dir, start);
            let len = std::fs::metadata(&path)?.len();
            if logical_at(start, len) <= persisted_cursor {
                std::fs::remove_file(&path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            self.compacted.add(removed as u64);
            self.update_segments_gauge()?;
        }
        Ok(removed)
    }

    /// Forces any unsynced appends in the active segment to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// One past the last logical byte — where [`read_segments`] cursors
    /// converge once they have consumed everything.
    pub fn logical_len(&self) -> u64 {
        logical_at(self.active_start, self.writer.len())
    }

    /// Logical start offset of the segment currently appended to.
    pub fn active_segment_start(&self) -> u64 {
        self.active_start
    }

    /// The log directory (the trainer tails the same directory).
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Segment files currently on disk.
    pub fn segment_count(&self) -> io::Result<usize> {
        Ok(list_segments(&self.dir)?.len())
    }

    fn update_segments_gauge(&self) -> io::Result<()> {
        let n = list_segments(&self.dir)?.len();
        self.registry.gauge(WAL_SEGMENTS_METRIC).set(n as f64);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events() -> Vec<WalEvent> {
        vec![
            WalEvent::TagClick { tenant: 0, clicks: vec![1, 2, 3] },
            WalEvent::Question { tenant: 7, text: "how to pay the bill".into() },
            WalEvent::TagClick { tenant: 300, clicks: vec![] },
            WalEvent::TagClick { tenant: 2, clicks: vec![128, 4096, 0] },
            WalEvent::Question { tenant: 1, text: "变更密码".into() },
        ]
    }

    fn encode_log(events: &[WalEvent]) -> Vec<u8> {
        let mut buf = WAL_MAGIC.to_vec();
        for e in events {
            e.encode_record(&mut buf);
        }
        buf
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Reference values of the IEEE polynomial (zlib's crc32).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"hello"), 0x3610_A686);
    }

    #[test]
    fn records_round_trip() {
        let evts = events();
        let buf = encode_log(&evts);
        let (decoded, valid) = decode_all(&buf);
        assert_eq!(decoded, evts);
        assert_eq!(valid, buf.len());
    }

    #[test]
    fn bad_magic_invalidates_the_whole_file() {
        let mut buf = encode_log(&events());
        buf[3] ^= 0xFF;
        let (decoded, valid) = decode_all(&buf);
        assert!(decoded.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let evts = events();
        let buf = encode_log(&evts);
        let (_, after_two) = {
            let two = encode_log(&evts[..2]);
            (0, two.len())
        };
        // Cut mid-way through the third record.
        let cut = &buf[..after_two + 3];
        let (decoded, valid) = decode_all(cut);
        assert_eq!(decoded, &evts[..2]);
        assert_eq!(valid, after_two);
    }

    #[test]
    fn flipped_payload_bit_stops_the_scan_at_the_previous_record() {
        let evts = events();
        let one = encode_log(&evts[..1]);
        let mut buf = encode_log(&evts);
        buf[one.len() + 2] ^= 0x01; // inside record 2's payload
        let (decoded, valid) = decode_all(&buf);
        assert_eq!(decoded, &evts[..1]);
        assert_eq!(valid, one.len());
    }

    #[test]
    fn decode_records_resumes_from_a_cursor() {
        let evts = events();
        let buf = encode_log(&evts);
        let first_three = encode_log(&evts[..3]).len();
        let (tail, valid) = decode_records(&buf, first_three);
        assert_eq!(tail, &evts[3..]);
        assert_eq!(valid, buf.len());
        // A cursor past the end decodes nothing and stays put.
        let (none, same) = decode_records(&buf, buf.len());
        assert!(none.is_empty());
        assert_eq!(same, buf.len());
    }

    #[test]
    fn writer_appends_recovers_and_truncates_torn_tails() {
        let dir = std::env::temp_dir().join(format!("itag-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.wal");
        let _ = std::fs::remove_file(&path);
        let registry = MetricsRegistry::new();
        let evts = events();

        let (mut w, rec) = WalWriter::open(&path, 2, &registry).unwrap();
        assert_eq!(rec.events.len(), 0);
        assert!(w.is_empty());
        for e in &evts {
            w.append(e).unwrap();
        }
        w.sync().unwrap();
        assert!(!w.is_empty());
        assert_eq!(registry.counter(WAL_APPENDS_METRIC).get(), evts.len() as u64);
        assert!(registry.counter(WAL_FSYNCS_METRIC).get() >= 2, "group commit fsyncs");
        let full_len = w.len();
        drop(w);

        // Simulate a crash mid-append: torn half-record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len() as u64, full_len);
        bytes.extend_from_slice(&[0x55, 0x11, 0x22]);
        std::fs::write(&path, &bytes).unwrap();

        let (w2, rec2) = WalWriter::open(&path, 1, &registry).unwrap();
        assert_eq!(rec2.events, evts, "recovery must surface every intact record");
        assert_eq!(rec2.truncated, 3);
        assert_eq!(w2.len(), full_len, "torn tail truncated before appending");
        assert_eq!(registry.counter(WAL_TRUNCATED_BYTES_METRIC).get(), 3);
        drop(w2);

        // And appends after recovery extend the same valid log.
        let (mut w3, _) = WalWriter::open(&path, 1, &registry).unwrap();
        w3.append(&evts[0]).unwrap();
        drop(w3);
        let (all, _) = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(all.len(), evts.len() + 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn click_sessions_projects_trails_in_order() {
        let evts = events();
        let sessions = click_sessions(&evts);
        assert_eq!(sessions, vec![vec![1, 2, 3], vec![], vec![128, 4096, 0]]);
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("itag-seg-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// A stream of distinguishable events, long enough to span segments.
    fn stream(n: usize) -> Vec<WalEvent> {
        (0..n).map(|i| WalEvent::TagClick { tenant: i, clicks: vec![i, i + 1] }).collect()
    }

    #[test]
    fn segmented_wal_rolls_and_replays_across_segments() {
        let dir = tmp_dir("roll");
        let registry = MetricsRegistry::new();
        let evts = stream(40);
        let (mut wal, rec) = SegmentedWal::open(&dir, 64, 4, &registry).unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(wal.logical_len(), WAL_MAGIC.len() as u64, "fresh log starts past the magic");
        for e in &evts {
            wal.append(e).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.segment_count().unwrap() >= 3, "40 events at 64B/segment must roll");
        assert_eq!(
            registry.counter(WAL_ROTATIONS_METRIC).get() as usize + 1,
            wal.segment_count().unwrap(),
        );
        assert_eq!(
            registry.gauge(WAL_SEGMENTS_METRIC).get() as usize,
            wal.segment_count().unwrap()
        );

        // A tail from the very start sees every event, across segments.
        let (all, cursor) = read_segments(&dir, WAL_MAGIC.len() as u64).unwrap();
        assert_eq!(all, evts);
        assert_eq!(cursor, wal.logical_len());
        // A cursor at a later segment boundary resumes exactly there,
        // re-delivering nothing.
        let starts = list_segments(&dir).unwrap();
        let (tail, tail_cursor) = read_segments(&dir, starts[1]).unwrap();
        assert_eq!(tail_cursor, cursor);
        assert!(!tail.is_empty() && tail.len() < evts.len());
        assert_eq!(tail[..], evts[evts.len() - tail.len()..]);

        // Reopening recovers the full event sequence and the same cursor.
        let len = wal.logical_len();
        drop(wal);
        let (wal2, rec2) = SegmentedWal::open(&dir, 64, 4, &registry).unwrap();
        assert_eq!(rec2.events, evts);
        assert_eq!(rec2.truncated, 0);
        assert_eq!(wal2.logical_len(), len);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn segmented_recovery_truncates_torn_active_tail_and_keeps_appending() {
        let dir = tmp_dir("torn");
        let registry = MetricsRegistry::new();
        let evts = stream(20);
        let (mut wal, _) = SegmentedWal::open(&dir, 64, 1, &registry).unwrap();
        for e in &evts {
            wal.append(e).unwrap();
        }
        let len = wal.logical_len();
        let active = wal.active_segment_start();
        drop(wal);

        // Crash mid-append: torn half-record at the active segment's tail.
        let tail = dir.join(format!("{active:020}.wal"));
        let mut bytes = std::fs::read(&tail).unwrap();
        bytes.extend_from_slice(&[0x7F, 0x01, 0x02, 0x03, 0x04]);
        std::fs::write(&tail, &bytes).unwrap();

        let (mut wal2, rec) = SegmentedWal::open(&dir, 64, 1, &registry).unwrap();
        assert_eq!(rec.events, evts, "every intact record survives");
        assert_eq!(rec.truncated, 5);
        assert_eq!(wal2.logical_len(), len, "torn tail truncated before appending");
        wal2.append(&evts[0]).unwrap();
        wal2.sync().unwrap();
        let (all, _) = read_segments(&dir, WAL_MAGIC.len() as u64).unwrap();
        assert_eq!(all.len(), evts.len() + 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn damaged_sealed_segment_orphans_everything_after_it() {
        let dir = tmp_dir("orphan");
        let registry = MetricsRegistry::new();
        let evts = stream(40);
        let (mut wal, _) = SegmentedWal::open(&dir, 64, 1, &registry).unwrap();
        for e in &evts {
            wal.append(e).unwrap();
        }
        let segments = wal.segment_count().unwrap();
        assert!(segments >= 3);
        drop(wal);

        // Chop the tail off the SECOND segment: the valid prefix now ends
        // inside it, and later segments are unreachable.
        let starts = list_segments(&dir).unwrap();
        let victim = dir.join(format!("{:020}.wal", starts[1]));
        let bytes = std::fs::read(&victim).unwrap();
        let (events_before, _) = read_segments(&dir, WAL_MAGIC.len() as u64).unwrap();
        std::fs::write(&victim, &bytes[..bytes.len() - 2]).unwrap();

        let (wal2, rec) = SegmentedWal::open(&dir, 64, 1, &registry).unwrap();
        assert!(rec.events.len() < events_before.len(), "records behind the cut are gone");
        assert!(!rec.events.is_empty(), "segment 0 and the victim's prefix survive");
        assert_eq!(rec.events, events_before[..rec.events.len()], "recovery is a prefix");
        assert!(rec.truncated > 0);
        assert_eq!(
            wal2.active_segment_start(),
            starts[1],
            "the damaged segment becomes the active tail"
        );
        assert_eq!(wal2.segment_count().unwrap(), 2, "orphaned segments deleted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_deletes_only_wholly_consumed_segments() {
        let dir = tmp_dir("compact");
        let registry = MetricsRegistry::new();
        let evts = stream(40);
        let (mut wal, _) = SegmentedWal::open(&dir, 64, 1, &registry).unwrap();
        for e in &evts {
            wal.append(e).unwrap();
        }
        let starts = list_segments(&dir).unwrap();
        assert!(starts.len() >= 4, "need several sealed segments: got {starts:?}");

        // A cursor at segment 1's start (segment boundaries are record
        // boundaries) reclaims only segment 0: segment 1 still holds
        // records at or past the cursor.
        assert_eq!(wal.compact(starts[1]).unwrap(), 1);
        assert_eq!(registry.counter(WAL_COMPACTED_SEGMENTS_METRIC).get(), 1);
        // The surviving tail still replays, starting from the horizon.
        let (tail, cursor) = read_segments(&dir, starts[1]).unwrap();
        assert_eq!(cursor, wal.logical_len());
        assert_eq!(tail[..], evts[evts.len() - tail.len()..]);

        // A cursor at the very end reclaims every sealed segment but
        // never the active one, even when fully consumed.
        let end = wal.logical_len();
        let before = wal.segment_count().unwrap();
        assert_eq!(wal.compact(end).unwrap(), before - 1);
        assert_eq!(wal.segment_count().unwrap(), 1);
        assert_eq!(list_segments(&dir).unwrap(), vec![wal.active_segment_start()]);
        // Appends continue seamlessly after compaction.
        wal.append(&evts[0]).unwrap();
        wal.sync().unwrap();
        let (after, _) = read_segments(&dir, end).unwrap();
        assert_eq!(after, vec![evts[0].clone()]);

        // A stale cursor below the horizon resumes at the oldest survivor.
        let (resumed, _) = read_segments(&dir, WAL_MAGIC.len() as u64).unwrap();
        assert!(!resumed.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
