//! The incremental trainer: tails the WAL, folds click batches into the
//! model, and publishes versioned snapshots to the hot-swap mailbox.
//!
//! One [`OnlineTrainer`] owns the live copy of the model (models hold
//! `Rc`-based autograd parameters and are not `Send`, so the trainer is
//! *built inside* its thread via [`OnlineTrainer::spawn`]'s constructor
//! closure — the same pattern the sharded server uses for its replicas).
//! Each [`OnlineTrainer::poll`]:
//!
//! 1. re-reads the WAL and decodes records past its cursor (the log is
//!    append-only, so a plain byte offset is a complete resume token);
//! 2. once at least `batch_events` events are pending, runs one
//!    deterministic training increment over their click sessions;
//! 3. serializes the model, registers it with the [`SnapshotRegistry`]
//!    (which assigns the next version), and publishes the payload to the
//!    [`ModelSwap`] mailbox, where shard workers install it at their next
//!    drain boundary.
//!
//! Determinism: the increment seed is the increment ordinal, so a given
//! base model + WAL prefix always produces bit-identical snapshots — the
//! property `tests/t_plus_one.rs` pins against the offline trainer.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use intellitag_core::{IntelliTag, ModelSwap};
use intellitag_obs::{Counter, MetricsRegistry, TRAINER_EVENTS_METRIC, TRAINER_INCREMENTS_METRIC};

use crate::snapshot::{ModelSnapshot, SnapshotRegistry};
use crate::wal::{click_sessions, decode_records, read_segments, WalEvent, WAL_MAGIC};

/// Knobs for the incremental training loop.
#[derive(Debug, Clone, Copy)]
pub struct TrainerConfig {
    /// Minimum pending WAL events before an increment runs. Smaller =
    /// fresher model, more snapshot churn.
    pub batch_events: usize,
    /// Epochs per increment (passed to `IntelliTag::train_increment`).
    pub epochs: usize,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig { batch_events: 8, epochs: 1 }
    }
}

/// The consuming half of the continuous-training loop.
pub struct OnlineTrainer {
    model: IntelliTag,
    wal_path: PathBuf,
    cursor: usize,
    pending: Vec<WalEvent>,
    cfg: TrainerConfig,
    registry: Arc<SnapshotRegistry>,
    swap: Option<ModelSwap>,
    increments: u64,
    events_consumed: u64,
    increments_metric: Arc<Counter>,
    events_metric: Arc<Counter>,
    metrics: MetricsRegistry,
}

impl OnlineTrainer {
    /// A trainer starting from `model` (the T+1 offline artifact), tailing
    /// the WAL at `wal_path` from the first record. Snapshots go to
    /// `registry`; pass a [`ModelSwap`] to also push each one to serving.
    pub fn new(
        model: IntelliTag,
        wal_path: &Path,
        cfg: TrainerConfig,
        registry: Arc<SnapshotRegistry>,
        swap: Option<ModelSwap>,
        metrics: &MetricsRegistry,
    ) -> OnlineTrainer {
        assert!(cfg.batch_events >= 1, "batch_events must be at least 1");
        OnlineTrainer {
            model,
            wal_path: wal_path.to_path_buf(),
            cursor: WAL_MAGIC.len(),
            pending: Vec::new(),
            cfg,
            registry,
            swap,
            increments: 0,
            events_consumed: 0,
            increments_metric: metrics.counter(TRAINER_INCREMENTS_METRIC),
            events_metric: metrics.counter(TRAINER_EVENTS_METRIC),
            metrics: metrics.clone(),
        }
    }

    /// A trainer resuming from a published snapshot after a restart:
    /// `model` must be the `IntelliTag::load` of `snapshot.bytes`, and the
    /// trainer seeks straight to the snapshot's WAL cursor instead of
    /// refolding the whole log. Restoring `increments` keeps the
    /// deterministic per-increment seed chain intact, so the resumed
    /// trainer's next snapshot is byte-identical to the one a
    /// never-restarted trainer would have published; `registry` is advanced
    /// past the snapshot's version so serving never sees a version reused.
    #[allow(clippy::too_many_arguments)]
    pub fn resume_from(
        model: IntelliTag,
        snapshot: &ModelSnapshot,
        wal_path: &Path,
        cfg: TrainerConfig,
        registry: Arc<SnapshotRegistry>,
        swap: Option<ModelSwap>,
        metrics: &MetricsRegistry,
    ) -> OnlineTrainer {
        registry.advance_to(snapshot.version);
        let mut trainer = OnlineTrainer::new(model, wal_path, cfg, registry, swap, metrics);
        trainer.cursor = (snapshot.wal_cursor as usize).max(WAL_MAGIC.len());
        trainer.events_consumed = snapshot.events_consumed;
        trainer.increments = snapshot.increments;
        trainer
    }

    /// Events decoded but not yet folded into the model.
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }

    /// Total events folded into the model so far.
    pub fn events_consumed(&self) -> u64 {
        self.events_consumed
    }

    /// Reads any new WAL records, and if the pending batch is full, runs
    /// one increment and publishes the resulting snapshot (also returned).
    /// `Ok(None)` means "nothing to do yet". A WAL that does not exist yet
    /// is not an error — serving may simply not have logged anything.
    pub fn poll(&mut self) -> io::Result<Option<ModelSnapshot>> {
        if self.wal_path.is_dir() {
            // A segmented WAL: the logical cursor spans segment files, but
            // it is the same plain byte offset as the single-file case.
            let (fresh, valid) = read_segments(&self.wal_path, self.cursor as u64)?;
            self.pending.extend(fresh);
            self.cursor = valid as usize;
        } else {
            match std::fs::read(&self.wal_path) {
                Ok(bytes) => {
                    let (fresh, valid) = decode_records(&bytes, self.cursor);
                    self.pending.extend(fresh);
                    self.cursor = valid;
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        if self.pending.len() < self.cfg.batch_events {
            return Ok(None);
        }
        let batch = std::mem::take(&mut self.pending);
        let sessions = click_sessions(&batch);
        self.increments += 1;
        self.events_consumed += batch.len() as u64;
        self.model.train_increment(&sessions, self.cfg.epochs, self.increments, &self.metrics);
        self.increments_metric.inc();
        self.events_metric.add(batch.len() as u64);
        let mut bytes = Vec::new();
        self.model.save(&mut bytes)?;
        // `pending` is empty here, so the read cursor doubles as the exact
        // "everything below this offset is in the model" resume token.
        let snap =
            self.registry.publish(bytes, self.events_consumed, self.increments, self.cursor as u64);
        if let Some(swap) = &self.swap {
            swap.publish(snap.to_swap_payload());
        }
        Ok(Some(snap))
    }

    /// Runs a trainer on its own thread, polling every `poll_interval`
    /// until `stop` flips, then draining one final poll. The constructor
    /// closure runs *inside* the thread because models are not `Send`.
    pub fn spawn<B>(
        build: B,
        poll_interval: Duration,
        stop: Arc<AtomicBool>,
    ) -> JoinHandle<io::Result<()>>
    where
        B: FnOnce() -> io::Result<OnlineTrainer> + Send + 'static,
    {
        std::thread::spawn(move || {
            let mut trainer = build()?;
            while !stop.load(Ordering::Acquire) {
                trainer.poll()?;
                std::thread::sleep(poll_interval);
            }
            trainer.poll()?;
            Ok(())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::WalWriter;
    use intellitag_core::TagRecConfig;
    use intellitag_datagen::{World, WorldConfig};
    use intellitag_obs::SNAPSHOT_VERSION_METRIC;

    fn quick_cfg() -> TagRecConfig {
        let mut cfg =
            TagRecConfig { dim: 8, heads: 2, seq_layers: 1, neighbor_cap: 4, ..Default::default() };
        cfg.train.epochs = 1;
        cfg.train.batch_size = 8;
        cfg
    }

    fn base_model() -> (IntelliTag, Vec<Vec<usize>>) {
        let world = World::generate(WorldConfig::tiny(17));
        let graph = world.build_graph();
        let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
        // Only trails with ≥2 clicks yield training examples; keeping the
        // test sessions that long means every increment really moves
        // parameters.
        let sessions: Vec<Vec<usize>> = world
            .sessions
            .iter()
            .map(|s| s.clicks.clone())
            .filter(|c| c.len() >= 2)
            .take(12)
            .collect();
        let model = IntelliTag::train(&graph, &texts, &sessions, quick_cfg());
        (model, sessions)
    }

    fn tmp_wal(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("itag-trainer-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn trainer_batches_trains_and_publishes_versions() {
        let (model, sessions) = base_model();
        let metrics = MetricsRegistry::new();
        let registry = Arc::new(SnapshotRegistry::new(4, &metrics));
        let swap = ModelSwap::new();
        let path = tmp_wal("loop");
        let cfg = TrainerConfig { batch_events: 3, epochs: 1 };
        let mut trainer = OnlineTrainer::new(
            model,
            &path,
            cfg,
            Arc::clone(&registry),
            Some(swap.clone()),
            &metrics,
        );

        // No WAL file yet: a poll is a clean no-op.
        assert!(trainer.poll().unwrap().is_none());

        let (mut w, _) = WalWriter::open(&path, 1, &metrics).unwrap();
        w.append(&WalEvent::TagClick { tenant: 0, clicks: sessions[0].clone() }).unwrap();
        w.append(&WalEvent::Question { tenant: 0, text: "billing".into() }).unwrap();
        assert!(trainer.poll().unwrap().is_none(), "below batch_events");
        assert_eq!(trainer.pending_events(), 2);

        w.append(&WalEvent::TagClick { tenant: 1, clicks: sessions[1].clone() }).unwrap();
        let snap = trainer.poll().unwrap().expect("batch full: must publish");
        assert_eq!(snap.version, 1);
        assert_eq!(snap.events_consumed, 3);
        assert_eq!(snap.increments, 1);
        assert_eq!(trainer.pending_events(), 0);
        assert_eq!(trainer.events_consumed(), 3);
        assert_eq!(swap.latest_version(), 1, "payload pushed to the mailbox");
        assert_eq!(metrics.counter(TRAINER_INCREMENTS_METRIC).get(), 1);
        assert_eq!(metrics.counter(TRAINER_EVENTS_METRIC).get(), 3);
        assert_eq!(metrics.gauge(SNAPSHOT_VERSION_METRIC).get(), 1.0);

        // Second batch bumps the version; the model keeps moving.
        for s in sessions.iter().skip(2).take(3) {
            w.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }
        let snap2 = trainer.poll().unwrap().expect("second batch");
        assert_eq!(snap2.version, 2);
        assert_eq!(snap2.events_consumed, 6);
        assert_ne!(*snap2.bytes, *snap.bytes, "an increment moves the parameters");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identical_wal_prefixes_produce_identical_snapshots() {
        let metrics = MetricsRegistry::new();
        let path = tmp_wal("determinism");
        let (mut w, _) = WalWriter::open(&path, 1, &metrics).unwrap();
        let (model_a, sessions) = base_model();
        for s in sessions.iter().take(4) {
            w.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }
        drop(w);

        let run = |model: IntelliTag| {
            let metrics = MetricsRegistry::new();
            let registry = Arc::new(SnapshotRegistry::new(2, &metrics));
            let mut t = OnlineTrainer::new(
                model,
                &path,
                TrainerConfig { batch_events: 4, epochs: 1 },
                registry,
                None,
                &metrics,
            );
            t.poll().unwrap().expect("one full batch")
        };
        let (model_b, _) = base_model();
        let snap_a = run(model_a);
        let snap_b = run(model_b);
        assert_eq!(*snap_a.bytes, *snap_b.bytes, "same base + same WAL = same snapshot");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn killed_trainer_resumes_at_cursor_and_matches_uninterrupted_run() {
        let world = World::generate(WorldConfig::tiny(17));
        let graph = world.build_graph();
        let texts: Vec<String> = world.tags.iter().map(|t| t.text()).collect();
        let sessions: Vec<Vec<usize>> = world
            .sessions
            .iter()
            .map(|s| s.clicks.clone())
            .filter(|c| c.len() >= 2)
            .take(12)
            .collect();
        let trained = IntelliTag::train(&graph, &texts, &sessions, quick_cfg());
        let mut base = Vec::new();
        trained.save(&mut base).unwrap();
        let load =
            |bytes: &[u8]| IntelliTag::load(&graph, &texts, quick_cfg(), &mut &bytes[..]).unwrap();
        let cfg = TrainerConfig { batch_events: 3, epochs: 1 };
        let path = tmp_wal("restart");
        let metrics = MetricsRegistry::new();
        let (mut w, _) = WalWriter::open(&path, 1, &metrics).unwrap();
        for s in sessions.iter().take(3) {
            w.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }

        // Reference trainer: never restarted, consumes both batches.
        let reg_a = Arc::new(SnapshotRegistry::new(4, &metrics));
        let mut trainer_a =
            OnlineTrainer::new(load(&base), &path, cfg, Arc::clone(&reg_a), None, &metrics);
        // Victim trainer: consumes the first batch, then is "killed" (its
        // snapshot survives only as serialized bytes, like on disk).
        let reg_b = Arc::new(SnapshotRegistry::new(4, &metrics));
        let mut trainer_b =
            OnlineTrainer::new(load(&base), &path, cfg, Arc::clone(&reg_b), None, &metrics);
        let snap_a1 = trainer_a.poll().unwrap().expect("first batch (reference)");
        let snap_b1 = trainer_b.poll().unwrap().expect("first batch (victim)");
        assert_eq!(*snap_a1.bytes, *snap_b1.bytes);
        let mut durable = Vec::new();
        snap_b1.write_to(&mut durable).unwrap();
        drop(trainer_b);

        for s in sessions.iter().skip(3).take(3) {
            w.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }
        let snap_a2 = trainer_a.poll().unwrap().expect("second batch (reference)");

        // Restart: fresh process state — new registry, new metrics — with
        // only the durable snapshot and the WAL on disk.
        let metrics2 = MetricsRegistry::new();
        let reg2 = Arc::new(SnapshotRegistry::new(4, &metrics2));
        let recovered = ModelSnapshot::read_from(&mut &durable[..]).unwrap();
        let mut resumed = OnlineTrainer::resume_from(
            load(&recovered.bytes),
            &recovered,
            &path,
            cfg,
            Arc::clone(&reg2),
            None,
            &metrics2,
        );
        assert_eq!(resumed.events_consumed(), 3, "provenance restored from the snapshot");

        let snap_b2 = resumed.poll().unwrap().expect("resumed trainer sees only the new batch");
        assert_eq!(snap_b2.version, 2, "version line continues past the resumed snapshot");
        assert_eq!(snap_b2.events_consumed, 6);
        assert_eq!(snap_b2.increments, 2);
        assert_eq!(snap_b2.wal_cursor, snap_a2.wal_cursor);
        assert_eq!(
            metrics2.counter(TRAINER_EVENTS_METRIC).get(),
            3,
            "resume must fold only events past the cursor, not refold the whole WAL"
        );
        assert_eq!(
            *snap_b2.bytes, *snap_a2.bytes,
            "restarted trainer's snapshot must be byte-identical to the uninterrupted run"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trainer_tails_segmented_wal_across_rotation_and_compaction() {
        use crate::wal::SegmentedWal;

        let (model, sessions) = base_model();
        let metrics = MetricsRegistry::new();
        let registry = Arc::new(SnapshotRegistry::new(8, &metrics));
        let dir = std::env::temp_dir().join(format!("itag-trainer-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Tiny segments: a handful of click trails spans several files.
        let (mut wal, _) = SegmentedWal::open(&dir, 48, 1, &metrics).unwrap();
        let cfg = TrainerConfig { batch_events: 3, epochs: 1 };
        let mut trainer =
            OnlineTrainer::new(model, &dir, cfg, Arc::clone(&registry), None, &metrics);

        for s in sessions.iter().take(3) {
            wal.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }
        let snap = trainer.poll().unwrap().expect("first batch across segments");
        assert_eq!(snap.events_consumed, 3);
        assert_eq!(snap.wal_cursor, wal.logical_len(), "cursor is the logical offset");

        // Compact behind the persisted cursor, then keep appending: the
        // trainer's next poll resumes past the horizon without refolding.
        wal.compact(snap.wal_cursor).unwrap();
        for s in sessions.iter().skip(3).take(3) {
            wal.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }
        let snap2 = trainer.poll().unwrap().expect("second batch after compaction");
        assert_eq!(snap2.events_consumed, 6);
        assert_eq!(snap2.version, 2);
        assert_eq!(
            metrics.counter(TRAINER_EVENTS_METRIC).get(),
            6,
            "compaction must not cause refolding or loss"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spawned_trainer_drains_on_stop() {
        let metrics = MetricsRegistry::new();
        let registry = Arc::new(SnapshotRegistry::new(2, &metrics));
        let path = tmp_wal("spawned");
        let (mut w, _) = WalWriter::open(&path, 1, &metrics).unwrap();
        let (model, sessions) = base_model();
        for s in sessions.iter().take(2) {
            w.append(&WalEvent::TagClick { tenant: 0, clicks: s.clone() }).unwrap();
        }
        drop(w);

        drop(model); // models are not Send: the spawned trainer builds its own
        let stop = Arc::new(AtomicBool::new(false));
        let reg2 = Arc::clone(&registry);
        let metrics2 = metrics.clone();
        let path2 = path.clone();
        let handle = OnlineTrainer::spawn(
            move || {
                let (model, _) = base_model();
                Ok(OnlineTrainer::new(
                    model,
                    &path2,
                    TrainerConfig { batch_events: 2, epochs: 1 },
                    reg2,
                    None,
                    &metrics2,
                ))
            },
            Duration::from_millis(1),
            Arc::clone(&stop),
        );
        // The final drain poll after `stop` flips must still consume the
        // batch even if the thread never saw it while running.
        stop.store(true, Ordering::Release);
        handle.join().unwrap().unwrap();
        assert_eq!(registry.latest().expect("drained batch published").version, 1);
        let _ = std::fs::remove_file(&path);
    }
}
