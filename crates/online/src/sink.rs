//! The gateway-facing end of the WAL: an [`EventSink`] that appends every
//! served request as a [`WalEvent`].
//!
//! The sink runs on the gateway's serving threads, so it is deliberately
//! best-effort: an append failure (disk full, log directory gone) is
//! counted in `wal.append_errors` and dropped rather than surfaced to the
//! client — a broken training feed must never fail serving. The writer
//! sits behind a `Mutex` because gateway workers share one sink; appends
//! are a buffered `write` (fsync only every `sync_every` events), so the
//! critical section is short.

use std::sync::{Arc, Mutex};

use intellitag_gateway::EventSink;
use intellitag_obs::{Counter, MetricsRegistry, WAL_APPEND_ERRORS_METRIC};

use crate::wal::{WalEvent, WalWriter};

/// Bridges the gateway's served-request stream into the WAL.
pub struct WalSink {
    writer: Mutex<WalWriter>,
    append_errors: Arc<Counter>,
}

impl WalSink {
    /// Wraps an opened [`WalWriter`]. Counting failed appends needs the
    /// same registry the writer was opened with.
    pub fn new(writer: WalWriter, registry: &MetricsRegistry) -> WalSink {
        WalSink {
            writer: Mutex::new(writer),
            append_errors: registry.counter(WAL_APPEND_ERRORS_METRIC),
        }
    }

    fn append(&self, event: &WalEvent) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.append(event).is_err() {
            self.append_errors.inc();
        }
    }

    /// Flushes any unsynced appends (the trainer only sees fsynced bytes
    /// once the OS page cache would survive — tests call this before
    /// polling to make the hand-off deterministic).
    pub fn sync(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(|e| e.into_inner());
        if writer.sync().is_err() {
            self.append_errors.inc();
        }
    }
}

impl EventSink for WalSink {
    fn tag_click(&self, tenant: usize, clicks: &[usize]) {
        self.append(&WalEvent::TagClick { tenant, clicks: clicks.to_vec() });
    }

    fn question(&self, tenant: usize, text: &str) {
        self.append(&WalEvent::Question { tenant, text: text.to_string() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::decode_all;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("itag-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn sink_appends_served_requests_in_order() {
        let metrics = MetricsRegistry::new();
        let path = tmp("order");
        let (writer, _) = WalWriter::open(&path, 4, &metrics).unwrap();
        let sink = WalSink::new(writer, &metrics);
        sink.tag_click(3, &[1, 2]);
        sink.question(0, "reset password");
        sink.tag_click(3, &[1, 2, 9]);
        sink.sync();
        let (events, _) = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(
            events,
            vec![
                WalEvent::TagClick { tenant: 3, clicks: vec![1, 2] },
                WalEvent::Question { tenant: 0, text: "reset password".into() },
                WalEvent::TagClick { tenant: 3, clicks: vec![1, 2, 9] },
            ]
        );
        assert_eq!(metrics.counter(WAL_APPEND_ERRORS_METRIC).get(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let metrics = MetricsRegistry::new();
        let path = tmp("threads");
        let (writer, _) = WalWriter::open(&path, 8, &metrics).unwrap();
        let sink = Arc::new(WalSink::new(writer, &metrics));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..25 {
                        sink.tag_click(t, &[i]);
                    }
                });
            }
        });
        sink.sync();
        let (events, _) = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(events.len(), 100, "concurrent appends never tear records");
        let _ = std::fs::remove_file(&path);
    }
}
