//! The gateway-facing end of the WAL: an [`EventSink`] that appends every
//! served request as a [`WalEvent`].
//!
//! The sink runs on the gateway's serving threads, so it is deliberately
//! best-effort: an append failure (disk full, log directory gone) is
//! counted in `wal.append_errors` and dropped rather than surfaced to the
//! client — a broken training feed must never fail serving. The writer
//! sits behind a `Mutex` because gateway workers share one sink; appends
//! are a buffered `write` (fsync only every `sync_every` events), so the
//! critical section is short.

use std::sync::{Arc, Mutex};

use intellitag_gateway::EventSink;
use intellitag_obs::{Counter, MetricsRegistry, WAL_APPEND_ERRORS_METRIC};

use crate::wal::{SegmentedWal, WalEvent, WalWriter};

/// The sink's backing log: one file forever, or a rolling segment
/// directory that compaction can shrink.
enum Log {
    Single(WalWriter),
    Segmented(SegmentedWal),
}

impl Log {
    fn append(&mut self, event: &WalEvent) -> std::io::Result<()> {
        match self {
            Log::Single(w) => w.append(event),
            Log::Segmented(w) => w.append(event),
        }
    }

    fn sync(&mut self) -> std::io::Result<()> {
        match self {
            Log::Single(w) => w.sync(),
            Log::Segmented(w) => w.sync(),
        }
    }
}

/// Bridges the gateway's served-request stream into the WAL.
pub struct WalSink {
    log: Mutex<Log>,
    append_errors: Arc<Counter>,
}

impl WalSink {
    /// Wraps an opened [`WalWriter`]. Counting failed appends needs the
    /// same registry the writer was opened with.
    pub fn new(writer: WalWriter, registry: &MetricsRegistry) -> WalSink {
        WalSink {
            log: Mutex::new(Log::Single(writer)),
            append_errors: registry.counter(WAL_APPEND_ERRORS_METRIC),
        }
    }

    /// Wraps an opened [`SegmentedWal`]: same serving-path semantics, but
    /// the log rolls segments and [`WalSink::compact`] can reclaim them.
    pub fn segmented(wal: SegmentedWal, registry: &MetricsRegistry) -> WalSink {
        WalSink {
            log: Mutex::new(Log::Segmented(wal)),
            append_errors: registry.counter(WAL_APPEND_ERRORS_METRIC),
        }
    }

    fn append(&self, event: &WalEvent) {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        if log.append(event).is_err() {
            self.append_errors.inc();
        }
    }

    /// Flushes any unsynced appends (the trainer only sees fsynced bytes
    /// once the OS page cache would survive — tests call this before
    /// polling to make the hand-off deterministic).
    pub fn sync(&self) {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        if log.sync().is_err() {
            self.append_errors.inc();
        }
    }

    /// Deletes sealed segments wholly behind `persisted_cursor` (the WAL
    /// cursor of the latest durable snapshot). A no-op for single-file
    /// sinks; best-effort like appends — a failed compaction counts an
    /// error and keeps serving. Returns how many segments were deleted.
    pub fn compact(&self, persisted_cursor: u64) -> usize {
        let mut log = self.log.lock().unwrap_or_else(|e| e.into_inner());
        match &mut *log {
            Log::Single(_) => 0,
            Log::Segmented(w) => w.compact(persisted_cursor).unwrap_or_else(|_| {
                self.append_errors.inc();
                0
            }),
        }
    }
}

impl EventSink for WalSink {
    fn tag_click(&self, tenant: usize, clicks: &[usize]) {
        self.append(&WalEvent::TagClick { tenant, clicks: clicks.to_vec() });
    }

    fn question(&self, tenant: usize, text: &str) {
        self.append(&WalEvent::Question { tenant, text: text.to_string() });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wal::decode_all;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("itag-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn sink_appends_served_requests_in_order() {
        let metrics = MetricsRegistry::new();
        let path = tmp("order");
        let (writer, _) = WalWriter::open(&path, 4, &metrics).unwrap();
        let sink = WalSink::new(writer, &metrics);
        sink.tag_click(3, &[1, 2]);
        sink.question(0, "reset password");
        sink.tag_click(3, &[1, 2, 9]);
        sink.sync();
        let (events, _) = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(
            events,
            vec![
                WalEvent::TagClick { tenant: 3, clicks: vec![1, 2] },
                WalEvent::Question { tenant: 0, text: "reset password".into() },
                WalEvent::TagClick { tenant: 3, clicks: vec![1, 2, 9] },
            ]
        );
        assert_eq!(metrics.counter(WAL_APPEND_ERRORS_METRIC).get(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn segmented_sink_rolls_and_compacts_behind_a_cursor() {
        use crate::wal::{list_segments, read_segments, SegmentedWal, WAL_MAGIC};

        let metrics = MetricsRegistry::new();
        let dir = std::env::temp_dir().join(format!("itag-sink-seg-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (wal, _) = SegmentedWal::open(&dir, 48, 2, &metrics).unwrap();
        let sink = WalSink::segmented(wal, &metrics);
        for i in 0..20 {
            sink.tag_click(i, &[i, i + 1]);
        }
        sink.sync();
        let starts = list_segments(&dir).unwrap();
        assert!(starts.len() >= 3, "sink appends must roll segments: {starts:?}");
        let (events, end) = read_segments(&dir, WAL_MAGIC.len() as u64).unwrap();
        assert_eq!(events.len(), 20);

        // Compacting behind a fully-consumed cursor leaves the active
        // segment; a single-file sink reports zero reclaimed.
        assert!(sink.compact(end) >= 2);
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        assert_eq!(metrics.counter(WAL_APPEND_ERRORS_METRIC).get(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let metrics = MetricsRegistry::new();
        let path = tmp("threads");
        let (writer, _) = WalWriter::open(&path, 8, &metrics).unwrap();
        let sink = Arc::new(WalSink::new(writer, &metrics));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..25 {
                        sink.tag_click(t, &[i]);
                    }
                });
            }
        });
        sink.sync();
        let (events, _) = decode_all(&std::fs::read(&path).unwrap());
        assert_eq!(events.len(), 100, "concurrent appends never tear records");
        let _ = std::fs::remove_file(&path);
    }
}
