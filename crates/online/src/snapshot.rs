//! Versioned model snapshots: the unit of publication between the
//! incremental trainer and the serving fleet.
//!
//! A [`ModelSnapshot`] is the `IntelliTag::save` artifact wrapped with
//! provenance — a monotonically increasing version, how many WAL events
//! and training increments produced it — and a checksum, so a snapshot
//! read back from disk is either bit-exact or an error. The
//! [`SnapshotRegistry`] hands out versions, keeps a bounded history for
//! rollback, and exposes the latest version as the
//! `trainer.snapshot_version` gauge.
//!
//! Snapshots convert to [`SwapPayload`]s verbatim: the serving side
//! rebuilds its replica from exactly the bytes the trainer saved, which is
//! what makes the hot-swap parity test's "byte-identical to a fresh server
//! built from the snapshot" guarantee checkable.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Mutex};

use intellitag_core::SwapPayload;
use intellitag_gateway::codec::{read_varint, write_varint};
use intellitag_obs::{Gauge, MetricsRegistry, SNAPSHOT_VERSION_METRIC};

use crate::wal::crc32;

/// First 8 bytes of a serialized snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ITAGVSN1";

/// A published model version: serialized parameters plus provenance.
#[derive(Debug, Clone)]
pub struct ModelSnapshot {
    /// Monotonic version id (the registry starts at 1; 0 means "the base
    /// model a server booted with").
    pub version: u64,
    /// The `IntelliTag::save` byte image, shared with swap payloads.
    pub bytes: Arc<Vec<u8>>,
    /// Total WAL events folded into the model up to this snapshot.
    pub events_consumed: u64,
    /// Training increments run up to this snapshot.
    pub increments: u64,
    /// WAL byte offset up to which every record is folded into this
    /// snapshot — the trainer's complete resume token. A restarted
    /// `OnlineTrainer` seeks here instead of refolding the whole log.
    pub wal_cursor: u64,
}

impl ModelSnapshot {
    /// Serializes the snapshot: magic, varint metadata, model bytes, and a
    /// trailing CRC32 covering everything after the magic — header
    /// corruption (a flipped version byte) must fail as loudly as body
    /// corruption.
    pub fn write_to<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut header = Vec::with_capacity(32);
        write_varint(&mut header, self.version);
        write_varint(&mut header, self.events_consumed);
        write_varint(&mut header, self.increments);
        write_varint(&mut header, self.wal_cursor);
        write_varint(&mut header, self.bytes.len() as u64);
        let mut crc = 0xFFFF_FFFFu32;
        for chunk in [header.as_slice(), &self.bytes] {
            for &b in chunk {
                crc = crate::wal::crc32_update(crc, b);
            }
        }
        w.write_all(SNAPSHOT_MAGIC)?;
        w.write_all(&header)?;
        w.write_all(&self.bytes)?;
        w.write_all(&(!crc).to_le_bytes())
    }

    /// Reads a snapshot written by [`ModelSnapshot::write_to`], verifying
    /// the magic, framing and checksum.
    pub fn read_from<R: Read>(r: &mut R) -> io::Result<ModelSnapshot> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if buf.len() < SNAPSHOT_MAGIC.len() || &buf[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(bad("not a snapshot: bad magic"));
        }
        let mut pos = SNAPSHOT_MAGIC.len();
        let varint = |buf: &[u8], pos: &mut usize| {
            read_varint(buf, pos).map_err(|_| bad("truncated header"))
        };
        let version = varint(&buf, &mut pos)?;
        let events_consumed = varint(&buf, &mut pos)?;
        let increments = varint(&buf, &mut pos)?;
        let wal_cursor = varint(&buf, &mut pos)?;
        let len = varint(&buf, &mut pos)? as usize;
        let end = pos.checked_add(len).ok_or_else(|| bad("length overflow"))?;
        if buf.len() != end + 4 {
            return Err(bad("snapshot length mismatch"));
        }
        let stored = u32::from_le_bytes(buf[end..].try_into().expect("4 crc bytes"));
        if crc32(&buf[SNAPSHOT_MAGIC.len()..end]) != stored {
            return Err(bad("snapshot checksum mismatch"));
        }
        let bytes = buf[pos..end].to_vec();
        Ok(ModelSnapshot {
            version,
            bytes: Arc::new(bytes),
            events_consumed,
            increments,
            wal_cursor,
        })
    }

    /// The hot-swap payload for this snapshot — same version, same bytes.
    pub fn to_swap_payload(&self) -> SwapPayload {
        SwapPayload { version: self.version, bytes: Arc::clone(&self.bytes) }
    }
}

struct RegistryInner {
    next_version: u64,
    history: VecDeque<ModelSnapshot>,
}

/// Hands out monotonic versions and keeps the last `capacity` snapshots
/// for inspection or rollback.
pub struct SnapshotRegistry {
    inner: Mutex<RegistryInner>,
    version_gauge: Arc<Gauge>,
    capacity: usize,
}

impl SnapshotRegistry {
    /// A registry retaining at most `capacity` snapshots (oldest evicted
    /// first), publishing `trainer.snapshot_version` into `registry`.
    pub fn new(capacity: usize, registry: &MetricsRegistry) -> SnapshotRegistry {
        assert!(capacity >= 1, "capacity must be at least 1");
        SnapshotRegistry {
            inner: Mutex::new(RegistryInner { next_version: 1, history: VecDeque::new() }),
            version_gauge: registry.gauge(SNAPSHOT_VERSION_METRIC),
            capacity,
        }
    }

    /// Raises the next version to at least `version + 1`, so a registry in
    /// a restarted process continues the version line of the snapshot the
    /// trainer resumed from (serving replicas reject republished stale
    /// versions, so a resumed trainer must never reuse one).
    pub fn advance_to(&self, version: u64) {
        let mut inner = self.inner.lock().expect("snapshot registry poisoned");
        inner.next_version = inner.next_version.max(version + 1);
    }

    /// Registers a new model image under the next version and returns the
    /// snapshot (the caller publishes its payload to the swap mailbox).
    /// `wal_cursor` is the WAL byte offset the image covers — the resume
    /// token a restarted trainer seeks to.
    pub fn publish(
        &self,
        bytes: Vec<u8>,
        events_consumed: u64,
        increments: u64,
        wal_cursor: u64,
    ) -> ModelSnapshot {
        let mut inner = self.inner.lock().expect("snapshot registry poisoned");
        let snap = ModelSnapshot {
            version: inner.next_version,
            bytes: Arc::new(bytes),
            events_consumed,
            increments,
            wal_cursor,
        };
        inner.next_version += 1;
        inner.history.push_back(snap.clone());
        while inner.history.len() > self.capacity {
            inner.history.pop_front();
        }
        self.version_gauge.set(snap.version as f64);
        snap
    }

    /// The most recently published snapshot, if any.
    pub fn latest(&self) -> Option<ModelSnapshot> {
        self.inner.lock().expect("snapshot registry poisoned").history.back().cloned()
    }

    /// A still-retained snapshot by version.
    pub fn get(&self, version: u64) -> Option<ModelSnapshot> {
        let inner = self.inner.lock().expect("snapshot registry poisoned");
        inner.history.iter().find(|s| s.version == version).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_and_rejects_corruption() {
        let snap = ModelSnapshot {
            version: 300,
            bytes: Arc::new(vec![1, 2, 3, 4, 5, 6, 7]),
            events_consumed: 41,
            increments: 6,
            wal_cursor: 513,
        };
        let mut buf = Vec::new();
        snap.write_to(&mut buf).unwrap();
        let back = ModelSnapshot::read_from(&mut &buf[..]).unwrap();
        assert_eq!(back.version, 300);
        assert_eq!(back.events_consumed, 41);
        assert_eq!(back.increments, 6);
        assert_eq!(back.wal_cursor, 513);
        assert_eq!(*back.bytes, *snap.bytes);

        // Any flipped byte — header, body or checksum — must be rejected.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x40;
            assert!(
                ModelSnapshot::read_from(&mut &bad[..]).is_err(),
                "flip at byte {i} must not read back cleanly"
            );
        }
        // So must truncation.
        assert!(ModelSnapshot::read_from(&mut &buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn registry_versions_monotonically_and_bounds_history() {
        let metrics = MetricsRegistry::new();
        let reg = SnapshotRegistry::new(2, &metrics);
        assert!(reg.latest().is_none());
        let a = reg.publish(vec![1], 10, 1, 100);
        let b = reg.publish(vec![2], 20, 2, 200);
        let c = reg.publish(vec![3], 30, 3, 300);
        assert_eq!((a.version, b.version, c.version), (1, 2, 3));
        assert_eq!(reg.latest().unwrap().version, 3);
        assert_eq!(metrics.gauge(SNAPSHOT_VERSION_METRIC).get(), 3.0);
        assert!(reg.get(1).is_none(), "evicted by capacity");
        assert_eq!(*reg.get(2).unwrap().bytes, vec![2]);
        assert_eq!(reg.get(3).unwrap().events_consumed, 30);
        assert_eq!(reg.get(3).unwrap().wal_cursor, 300);

        // A resumed registry continues the version line, never rewinds it.
        reg.advance_to(10);
        assert_eq!(reg.publish(vec![4], 40, 4, 400).version, 11);
        reg.advance_to(5);
        assert_eq!(reg.publish(vec![5], 50, 5, 500).version, 12);
    }

    #[test]
    fn swap_payload_shares_version_and_bytes() {
        let metrics = MetricsRegistry::new();
        let reg = SnapshotRegistry::new(4, &metrics);
        let snap = reg.publish(vec![9, 9], 5, 1, 64);
        let payload = snap.to_swap_payload();
        assert_eq!(payload.version, snap.version);
        assert!(Arc::ptr_eq(&payload.bytes, &snap.bytes));
    }
}
