//! # intellitag-online
//!
//! The continuous-training subsystem: the loop that closes
//! simulator → gateway → event log → trainer → serving, so the model a
//! tenant talks to this minute was trained on clicks from the last one —
//! the "online learning" half of the paper's deployment story that the
//! offline T+1 pipeline (`tests/t_plus_one.rs`) leaves open.
//!
//! Four pieces, one per module:
//!
//! * [`wal`] — an append-only, checksummed click/question event log
//!   ([`WalWriter`] / [`recover`]). Records reuse the gateway wire
//!   protocol's LEB128 varints; appends are fsync-batched; recovery
//!   truncates torn tails to the longest valid prefix (pinned at every
//!   byte offset by `tests/wal_recovery.rs`). [`SegmentedWal`] spreads
//!   the same format over size-bounded segment files, rolled as they
//!   fill and deleted by [`SegmentedWal::compact`] once every record
//!   they hold is behind the latest snapshot's persisted cursor.
//! * [`sink`] — [`WalSink`], the gateway [`EventSink`] that feeds the log
//!   from the serving path, best-effort and non-blocking.
//! * [`trainer`] — [`OnlineTrainer`], which tails the WAL in batches and
//!   folds them into the model with deterministic increments.
//! * [`snapshot`] — versioned, checksummed model snapshots
//!   ([`ModelSnapshot`]) and the [`SnapshotRegistry`] that assigns
//!   monotonic versions; each snapshot converts to a
//!   [`SwapPayload`](intellitag_core::SwapPayload) published to the
//!   sharded front's epoch-fenced [`ModelSwap`](intellitag_core::ModelSwap)
//!   mailbox for zero-downtime hot-swap (pinned by
//!   `tests/hot_swap_parity.rs`).
//!
//! Everything publishes into the shared `MetricsRegistry`: `wal.*`
//! (appends, bytes, fsyncs, truncated bytes, append errors), `trainer.*`
//! (increments, events consumed, snapshot version) and the serving side's
//! `serving.model_version` / `serving.swaps`.
//!
//! [`EventSink`]: intellitag_gateway::EventSink

#![warn(missing_docs)]

pub mod sink;
pub mod snapshot;
pub mod trainer;
pub mod wal;

pub use sink::WalSink;
pub use snapshot::{ModelSnapshot, SnapshotRegistry, SNAPSHOT_MAGIC};
pub use trainer::{OnlineTrainer, TrainerConfig};
pub use wal::{
    click_sessions, crc32, decode_all, decode_records, list_segments, read_segments, recover,
    Recovered, SegmentedWal, WalEvent, WalWriter, MAX_RECORD_BYTES, WAL_MAGIC,
};
