//! Property tests for the BM25 inverted index and KB warehouse.

use intellitag_search::{InvertedIndex, KbWarehouse};
use proptest::prelude::*;

fn word() -> impl Strategy<Value = String> {
    "[a-e]{1,3}".prop_map(|s| s)
}

fn doc() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec(word(), 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn results_are_sorted_and_bounded(docs in proptest::collection::vec(doc(), 1..20),
                                      query in doc(), k in 0usize..10) {
        let mut ix = InvertedIndex::new();
        for d in &docs {
            ix.add_document(d);
        }
        let hits = ix.search(&query, k);
        prop_assert!(hits.len() <= k);
        for w in hits.windows(2) {
            prop_assert!(
                w[0].score > w[1].score
                    || (w[0].score == w[1].score && w[0].doc < w[1].doc)
            );
        }
        prop_assert!(hits.iter().all(|h| h.doc < docs.len()));
        prop_assert!(hits.iter().all(|h| h.score.is_finite() && h.score > 0.0));
    }

    #[test]
    fn self_query_retrieves_the_document(docs in proptest::collection::vec(doc(), 1..15)) {
        let mut ix = InvertedIndex::new();
        for d in &docs {
            ix.add_document(d);
        }
        // Querying with a document's full token list must retrieve it.
        for (i, d) in docs.iter().enumerate() {
            let hits = ix.search(d, docs.len());
            prop_assert!(
                hits.iter().any(|h| h.doc == i),
                "doc {i} not found by its own text"
            );
        }
    }

    #[test]
    fn idf_is_monotone_in_rarity(docs in proptest::collection::vec(doc(), 2..15)) {
        let mut ix = InvertedIndex::new();
        for d in &docs {
            ix.add_document(d);
        }
        // A term in every document has minimal idf among observed terms.
        use std::collections::HashMap;
        let mut df: HashMap<&String, usize> = HashMap::new();
        for d in &docs {
            let mut seen: Vec<&String> = d.iter().collect();
            seen.sort();
            seen.dedup();
            for t in seen {
                *df.entry(t).or_default() += 1;
            }
        }
        let mut terms: Vec<(&&String, &usize)> = df.iter().collect();
        terms.sort_by_key(|&(_, c)| *c);
        for w in terms.windows(2) {
            let (rare, rc) = w[0];
            let (common, cc) = w[1];
            if rc < cc {
                prop_assert!(ix.idf(rare) >= ix.idf(common));
            }
        }
    }

    #[test]
    fn warehouse_tenant_filter_never_leaks(
        pairs in proptest::collection::vec((doc(), 0usize..3), 1..15),
        query in doc(),
        tenant in 0usize..3,
    ) {
        let mut kb = KbWarehouse::new();
        for (tokens, t) in &pairs {
            kb.add_pair(tokens.join(" "), "answer", *t);
        }
        for h in kb.recall_for_tenant(&query.join(" "), tenant, 10) {
            prop_assert_eq!(kb.pair(h.doc).tenant, tenant);
        }
    }

    #[test]
    fn recall_is_subset_of_corpus(pairs in proptest::collection::vec(doc(), 1..10), q in doc()) {
        let mut kb = KbWarehouse::new();
        for tokens in &pairs {
            kb.add_pair(tokens.join(" "), "a", 0);
        }
        let hits = kb.recall(&q.join(" "), 100);
        prop_assert!(hits.len() <= pairs.len());
        prop_assert!(hits.iter().all(|h| h.doc < pairs.len()));
    }
}
