//! In-memory inverted index with BM25 ranking.
//!
//! This is the reproduction's stand-in for the ElasticSearch recall layer in
//! the deployed system (paper §V-A): the model server sends a query (the
//! user's question, or the concatenated clicked tags) and receives a ranked
//! recall set of representative questions.

use std::collections::{BTreeMap, HashMap};

/// A scored search hit.
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Document id as supplied at [`InvertedIndex::add_document`] time.
    pub doc: usize,
    /// BM25 relevance score (higher is better).
    pub score: f32,
}

/// Posting: document id and term frequency within it.
#[derive(Debug, Clone, Copy)]
struct Posting {
    doc: usize,
    tf: u32,
}

/// BM25 parameters. The defaults (`k1 = 1.2`, `b = 0.75`) are ElasticSearch's
/// defaults, matching the behaviour of the substituted component.
#[derive(Debug, Clone, Copy)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f32,
    /// Length normalization strength.
    pub b: f32,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// An append-only inverted index over tokenized documents.
///
/// `Clone` supports replica-per-shard serving: each worker of the sharded
/// front owns a full copy of the index.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    doc_len: Vec<u32>,
    total_len: u64,
    params: Bm25Params,
}

impl InvertedIndex {
    /// Creates an empty index with default BM25 parameters.
    pub fn new() -> Self {
        InvertedIndex::default()
    }

    /// Creates an empty index with custom BM25 parameters.
    pub fn with_params(params: Bm25Params) -> Self {
        InvertedIndex { params, ..Default::default() }
    }

    /// Adds a tokenized document and returns its id (dense, insertion order).
    pub fn add_document(&mut self, tokens: &[String]) -> usize {
        let doc = self.doc_len.len();
        self.doc_len.push(tokens.len() as u32);
        self.total_len += tokens.len() as u64;
        let mut counts: HashMap<&str, u32> = HashMap::new();
        for t in tokens {
            *counts.entry(t.as_str()).or_default() += 1;
        }
        for (term, tf) in counts {
            self.postings.entry(term.to_string()).or_default().push(Posting { doc, tf });
        }
        doc
    }

    /// Number of indexed documents.
    pub fn num_documents(&self) -> usize {
        self.doc_len.len()
    }

    /// Number of distinct terms.
    pub fn num_terms(&self) -> usize {
        self.postings.len()
    }

    /// Mean document length in tokens (0 when empty).
    pub fn avg_doc_len(&self) -> f32 {
        if self.doc_len.is_empty() {
            0.0
        } else {
            self.total_len as f32 / self.doc_len.len() as f32
        }
    }

    /// Lucene-style BM25 IDF: `ln(1 + (N - df + 0.5) / (df + 0.5))`.
    pub fn idf(&self, term: &str) -> f32 {
        let n = self.num_documents() as f32;
        let df = self.postings.get(term).map_or(0, Vec::len) as f32;
        (1.0 + (n - df + 0.5) / (df + 0.5)).ln()
    }

    /// Top-`k` documents for a tokenized query, by BM25, descending.
    /// Ties break toward the lower document id for determinism.
    pub fn search(&self, query: &[String], k: usize) -> Vec<Hit> {
        if self.doc_len.is_empty() || query.is_empty() || k == 0 {
            return Vec::new();
        }
        let avg = self.avg_doc_len().max(1e-6);
        let mut scores: HashMap<usize, f32> = HashMap::new();
        // Deduplicate query terms but keep multiplicity as a weight, which is
        // what ES does for repeated terms in a bool/match query. Terms must
        // accumulate in a deterministic order: summing f32 contributions in
        // HashMap order (which varies per thread via RandomState) shifts
        // scores by an ulp and flips near-ties, breaking response parity
        // between single-process servers and worker-thread replicas.
        let mut q_counts: BTreeMap<&str, f32> = BTreeMap::new();
        for t in query {
            *q_counts.entry(t.as_str()).or_default() += 1.0;
        }
        for (term, q_weight) in q_counts {
            let Some(posts) = self.postings.get(term) else { continue };
            let idf = self.idf(term);
            for p in posts {
                let tf = p.tf as f32;
                let len_norm =
                    1.0 - self.params.b + self.params.b * self.doc_len[p.doc] as f32 / avg;
                let s = idf * tf * (self.params.k1 + 1.0) / (tf + self.params.k1 * len_norm);
                *scores.entry(p.doc).or_default() += q_weight * s;
            }
        }
        let mut hits: Vec<Hit> =
            scores.into_iter().map(|(doc, score)| Hit { doc, score }).collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    fn index(docs: &[&str]) -> InvertedIndex {
        let mut ix = InvertedIndex::new();
        for d in docs {
            ix.add_document(&toks(d));
        }
        ix
    }

    #[test]
    fn exact_match_ranks_first() {
        let ix = index(&[
            "how to change password",
            "how to apply for etc card",
            "where to cancel the order",
        ]);
        let hits = ix.search(&toks("change password"), 3);
        assert_eq!(hits[0].doc, 0);
        assert!(hits[0].score > 0.0);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let ix = index(&["the the the password", "the account", "the order", "the refund"]);
        // "password" is rare; "the" occurs everywhere.
        assert!(ix.idf("password") > ix.idf("the"));
    }

    #[test]
    fn missing_terms_yield_empty() {
        let ix = index(&["alpha beta"]);
        assert!(ix.search(&toks("gamma"), 5).is_empty());
        assert!(ix.search(&[], 5).is_empty());
    }

    #[test]
    fn k_truncates_results() {
        let ix = index(&["a b", "a c", "a d", "a e"]);
        assert_eq!(ix.search(&toks("a"), 2).len(), 2);
    }

    #[test]
    fn shorter_docs_win_on_equal_tf() {
        let ix = index(&["refund", "refund and many extra words here"]);
        let hits = ix.search(&toks("refund"), 2);
        assert_eq!(hits[0].doc, 0, "length normalization should favor the short doc");
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn deterministic_tie_break_by_doc_id() {
        let ix = index(&["x y", "x y"]);
        let hits = ix.search(&toks("x"), 2);
        assert_eq!(hits[0].doc, 0);
        assert_eq!(hits[1].doc, 1);
    }

    #[test]
    fn scores_are_bitwise_identical_across_threads_and_clones() {
        // Replica-per-shard serving searches cloned indexes from worker
        // threads; scores must not depend on which thread computes them
        // (per-thread hash seeds must never reorder f32 accumulation).
        let ix = index(&[
            "reset my account password please",
            "reset password for my account now",
            "cancel my order please",
            "account password reset steps",
        ]);
        let query = toks("please reset my account password now");
        let baseline = ix.search(&query, 4);
        assert_eq!(baseline.len(), 4);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (ix, query, baseline) = (ix.clone(), &query, &baseline);
                scope.spawn(move || {
                    let hits = ix.search(query, 4);
                    assert_eq!(&hits, baseline, "BM25 ranking diverged across threads");
                    for (a, b) in hits.iter().zip(baseline) {
                        assert_eq!(a.score.to_bits(), b.score.to_bits());
                    }
                });
            }
        });
    }

    #[test]
    fn stats_track_additions() {
        let mut ix = InvertedIndex::new();
        assert_eq!(ix.avg_doc_len(), 0.0);
        ix.add_document(&toks("a b c"));
        ix.add_document(&toks("a"));
        assert_eq!(ix.num_documents(), 2);
        assert_eq!(ix.num_terms(), 3);
        assert_eq!(ix.avg_doc_len(), 2.0);
    }
}
