//! # intellitag-search
//!
//! The retrieval substrate of the IntelliTag reproduction — the offline
//! stand-in for ElasticSearch and the KB document warehouse of the deployed
//! system (paper §V-A):
//!
//! * [`InvertedIndex`] — an in-memory inverted index with BM25 ranking
//!   (ES-default `k1 = 1.2`, `b = 0.75`).
//! * [`KbWarehouse`] — the Q&A pair store with tenant-scoped recall, used by
//!   the model server for both the Q&A dialogue path and the predicted-
//!   question path after tag clicks.

#![warn(missing_docs)]

mod index;
mod warehouse;

pub use index::{Bm25Params, Hit, InvertedIndex};
pub use warehouse::{KbWarehouse, QaPair};
