//! The KB (knowledge base) document warehouse: Q&A pairs plus a searchable
//! index over their representative questions (paper §III-A and §V-A).

use intellitag_text::tokenize;

use crate::index::{Hit, InvertedIndex};

/// One Q&A pair: a representative question, its answer, and the owning
/// tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QaPair {
    /// Representative question text.
    pub question: String,
    /// Canonical answer text.
    pub answer: String,
    /// Owning tenant id.
    pub tenant: usize,
}

/// An append-only store of Q&A pairs with BM25 recall over the questions.
///
/// Mirrors the deployed pipeline: tenants upload pairs (or the automatic
/// collection pipeline generates them), the warehouse indexes the RQ text,
/// and online requests retrieve a recall set to be re-ranked by the model
/// server.
///
/// `Clone` supports replica-per-shard serving: each worker of the sharded
/// front owns a full copy of the warehouse.
#[derive(Debug, Clone, Default)]
pub struct KbWarehouse {
    pairs: Vec<QaPair>,
    index: InvertedIndex,
}

impl KbWarehouse {
    /// Creates an empty warehouse.
    pub fn new() -> Self {
        KbWarehouse::default()
    }

    /// Adds a Q&A pair and returns its RQ id (dense, insertion order).
    pub fn add_pair(
        &mut self,
        question: impl Into<String>,
        answer: impl Into<String>,
        tenant: usize,
    ) -> usize {
        let question = question.into();
        let tokens = tokenize(&question);
        let id = self.index.add_document(&tokens);
        debug_assert_eq!(id, self.pairs.len());
        self.pairs.push(QaPair { question, answer: answer.into(), tenant });
        id
    }

    /// Number of stored pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pair for an RQ id.
    pub fn pair(&self, rq: usize) -> &QaPair {
        &self.pairs[rq]
    }

    /// Iterator over all pairs with their RQ ids.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &QaPair)> {
        self.pairs.iter().enumerate()
    }

    /// BM25 recall over all tenants.
    pub fn recall(&self, query: &str, k: usize) -> Vec<Hit> {
        self.index.search(&tokenize(query), k)
    }

    /// BM25 recall restricted to one tenant (the cloud service never mixes
    /// tenants in user-facing results). Over-fetches internally and filters.
    pub fn recall_for_tenant(&self, query: &str, tenant: usize, k: usize) -> Vec<Hit> {
        let mut out = Vec::with_capacity(k);
        // Over-fetch enough to survive filtering; bounded by corpus size.
        let fetch = (k * 8).min(self.pairs.len().max(1));
        for h in self.index.search(&tokenize(query), fetch) {
            if self.pairs[h.doc].tenant == tenant {
                out.push(h);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }

    /// Best-matching RQ for a question within a tenant, if any
    /// (the Q&A dialogue path: question in, answer out).
    pub fn best_match(&self, query: &str, tenant: usize) -> Option<(usize, &QaPair)> {
        self.recall_for_tenant(query, tenant, 1).first().map(|h| (h.doc, &self.pairs[h.doc]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KbWarehouse {
        let mut kb = KbWarehouse::new();
        kb.add_pair("How to change password", "Go to settings, tap security.", 0);
        kb.add_pair("How can I apply for ETC card", "Apply in the ETC menu.", 0);
        kb.add_pair("Where to cancel the order", "Open orders, tap cancel.", 1);
        kb
    }

    #[test]
    fn add_and_get_roundtrip() {
        let kb = kb();
        assert_eq!(kb.len(), 3);
        assert_eq!(kb.pair(1).tenant, 0);
        assert!(kb.pair(1).question.contains("ETC"));
    }

    #[test]
    fn recall_ranks_relevant_question_first() {
        let kb = kb();
        let hits = kb.recall("cancel my order", 3);
        assert_eq!(hits[0].doc, 2);
    }

    #[test]
    fn tenant_filter_excludes_other_tenants() {
        let kb = kb();
        let hits = kb.recall_for_tenant("cancel my order", 0, 3);
        assert!(hits.iter().all(|h| kb.pair(h.doc).tenant == 0));
    }

    #[test]
    fn best_match_returns_answer() {
        let kb = kb();
        let (rq, pair) = kb.best_match("how do i change my password", 0).unwrap();
        assert_eq!(rq, 0);
        assert!(pair.answer.contains("settings"));
        assert!(kb.best_match("completely unrelated gibberish", 0).is_none());
    }

    #[test]
    fn empty_warehouse_is_safe() {
        let kb = KbWarehouse::new();
        assert!(kb.is_empty());
        assert!(kb.recall("anything", 5).is_empty());
        assert!(kb.best_match("anything", 0).is_none());
    }
}
