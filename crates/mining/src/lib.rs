//! # intellitag-mining
//!
//! The tag-mining side of IntelliTag (paper §III):
//!
//! * [`TagMiner`] — the BERT-style multi-task model (tag segmentation +
//!   word weighting, Fig. 2), its single-task "ST" baselines, and knowledge
//!   distillation into a shallow student for fast daily inference.
//! * [`RuleFilter`] — the post-processing rules (weight, frequency, IDF,
//!   averaged PMI) with equal weighting.
//! * [`Extractor`] — the extraction pipeline with the Table III evaluation
//!   helpers ([`evaluate_extractor`], [`inference_time`],
//!   [`mine_tag_inventory`]).
//! * [`collect_qa_pairs`] — the automatic Q&A collection pipeline
//!   (DBSCAN clustering + answer selection, §III-A).

#![warn(missing_docs)]

mod extract;
mod model;
mod qa_collect;
mod rules;

pub use extract::{evaluate_extractor, inference_time, mine_tag_inventory, Extractor, MinedTag};
pub use model::{MinerConfig, MiningTask, TagMiner, TrainConfig, MAX_SENT_LEN};
pub use qa_collect::{collect_qa_pairs, CollectConfig, CollectedPair, UserQuestion};
pub use rules::{RuleFilter, RuleScore};
