//! The end-to-end tag-extraction pipeline and its Table III evaluation:
//! segmentation decodes spans, word weights average into tag weights,
//! thresholds and (optionally) corpus rules filter the candidates.

use std::time::{Duration, Instant};

use intellitag_datagen::{spans_from_seg, LabeledSentence};
use intellitag_eval::{PrfAccumulator, PrfReport};

use crate::model::TagMiner;
use crate::rules::RuleFilter;

/// A mined tag candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct MinedTag {
    /// The tag's words.
    pub words: Vec<String>,
    /// Mean predicted word weight over the span (the paper's tag weight).
    pub weight: f32,
}

impl MinedTag {
    /// Space-joined surface form.
    pub fn text(&self) -> String {
        self.words.join(" ")
    }
}

/// A configured extraction pipeline.
///
/// * MT mode: one multi-task miner provides both heads (`weight_model`
///   = `None`).
/// * ST mode: a segmentation-only miner plus a weighting-only miner — the
///   Table III "ST model" baseline.
pub struct Extractor<'a> {
    seg_model: &'a TagMiner,
    weight_model: Option<&'a TagMiner>,
    /// Minimum tag weight to keep a span (paper: "tags with a weight greater
    /// than the preset threshold are retained").
    pub weight_threshold: f32,
    /// Optional rule-based post-filter (Table III "+ r").
    pub rules: Option<&'a RuleFilter>,
}

impl<'a> Extractor<'a> {
    /// Pipeline around one multi-task miner.
    pub fn multi_task(model: &'a TagMiner) -> Self {
        Extractor { seg_model: model, weight_model: None, weight_threshold: 0.5, rules: None }
    }

    /// Pipeline around two single-task miners.
    pub fn single_task(seg: &'a TagMiner, weight: &'a TagMiner) -> Self {
        Extractor { seg_model: seg, weight_model: Some(weight), weight_threshold: 0.5, rules: None }
    }

    /// Attaches the rule filter.
    pub fn with_rules(mut self, rules: &'a RuleFilter) -> Self {
        self.rules = Some(rules);
        self
    }

    /// Extracts tag candidates (with spans) from one tokenized sentence.
    pub fn extract(&self, tokens: &[String]) -> Vec<(MinedTag, (usize, usize))> {
        let seg_pred = self.seg_model.predict_tokens(tokens);
        let weights = match self.weight_model {
            Some(m) => m.predict_tokens(tokens).weights,
            None => seg_pred.weights.clone(),
        };
        let mut out = Vec::new();
        for (start, end) in spans_from_seg(&seg_pred.seg) {
            let w: f32 = weights[start..end].iter().sum::<f32>() / (end - start) as f32;
            if w < self.weight_threshold {
                continue;
            }
            let words: Vec<String> = tokens[start..end].to_vec();
            if let Some(rules) = self.rules {
                if !rules.accepts(&words, w as f64) {
                    continue;
                }
            }
            out.push((MinedTag { words, weight: w }, (start, end)));
        }
        out
    }

    /// Predicted spans only (for span-level P/R/F1).
    pub fn predict_spans(&self, tokens: &[String]) -> Vec<(usize, usize)> {
        self.extract(tokens).into_iter().map(|(_, span)| span).collect()
    }
}

/// Span-level precision/recall/F1 over a labeled test set (Table III).
pub fn evaluate_extractor(ex: &Extractor<'_>, test: &[LabeledSentence]) -> PrfReport {
    let mut acc = PrfAccumulator::new();
    for s in test {
        let predicted = ex.predict_spans(&s.tokens);
        acc.push(&predicted, &s.gold_spans);
    }
    acc.report()
}

/// Wall-clock inference time over a sentence set (Table III's last column;
/// the paper compares full-KB daily inference of teacher vs distilled
/// student).
pub fn inference_time(ex: &Extractor<'_>, sentences: &[LabeledSentence]) -> Duration {
    let start = Instant::now();
    for s in sentences {
        let _ = ex.predict_spans(&s.tokens);
    }
    start.elapsed()
}

/// Deduplicated corpus-level tag inventory mined from sentences, with each
/// tag's maximum observed weight (what the paper's tag deposit stores).
pub fn mine_tag_inventory(ex: &Extractor<'_>, sentences: &[LabeledSentence]) -> Vec<MinedTag> {
    use std::collections::HashMap;
    let mut best: HashMap<String, MinedTag> = HashMap::new();
    for s in sentences {
        for (tag, _) in ex.extract(&s.tokens) {
            let key = tag.text();
            best.entry(key)
                .and_modify(|t| {
                    if tag.weight > t.weight {
                        t.weight = tag.weight;
                    }
                })
                .or_insert(tag);
        }
    }
    let mut out: Vec<MinedTag> = best.into_values().collect();
    out.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.words.cmp(&b.words))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{MinerConfig, MiningTask, TagMiner, TrainConfig};
    use intellitag_datagen::{labeled_sentences, World, WorldConfig};

    fn world_data() -> Vec<LabeledSentence> {
        labeled_sentences(&World::generate(WorldConfig::tiny(31)))
    }

    fn trained_miner(data: &[LabeledSentence]) -> TagMiner {
        TagMiner::train(
            data,
            MinerConfig {
                dim: 24,
                layers: 1,
                heads: 2,
                task: MiningTask::MultiTask,
                train: TrainConfig { epochs: 4, lr: 5e-3, seed: 9, ..Default::default() },
            },
        )
    }

    #[test]
    fn extraction_reaches_reasonable_f1() {
        let data = world_data();
        let (train, test) = data.split_at(160);
        let m = trained_miner(train);
        let ex = Extractor::multi_task(&m);
        let r = evaluate_extractor(&ex, &test[..40]);
        assert!(r.f1() > 0.5, "F1 {:.3} too low", r.f1());
    }

    #[test]
    fn rules_trade_recall_for_precision() {
        let data = world_data();
        let (train, test) = data.split_at(160);
        let m = trained_miner(train);
        let base = Extractor::multi_task(&m);
        let r_base = evaluate_extractor(&base, &test[..40]);

        let corpus: Vec<&[String]> = train.iter().map(|s| s.tokens.as_slice()).collect();
        let mut rules = RuleFilter::from_corpus(corpus);
        rules.min_score = 0.55;
        let filtered = Extractor::multi_task(&m).with_rules(&rules);
        let r_rules = evaluate_extractor(&filtered, &test[..40]);

        assert!(r_rules.recall() <= r_base.recall() + 1e-9, "rules must not raise recall");
    }

    #[test]
    fn weight_threshold_one_drops_everything_uncertain() {
        let data = world_data();
        let m = trained_miner(&data[..100]);
        let mut ex = Extractor::multi_task(&m);
        ex.weight_threshold = 1.1; // sigmoid output can never reach this
        assert!(ex.predict_spans(&data[120].tokens).is_empty());
    }

    #[test]
    fn inventory_is_deduplicated_and_sorted() {
        let data = world_data();
        let (train, test) = data.split_at(160);
        let m = trained_miner(train);
        let ex = Extractor::multi_task(&m);
        let inv = mine_tag_inventory(&ex, &test[..40]);
        let mut texts: Vec<String> = inv.iter().map(MinedTag::text).collect();
        let before = texts.len();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), before, "inventory must be deduplicated");
        for w in inv.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }

    #[test]
    fn inference_time_is_positive_and_scales() {
        let data = world_data();
        let m = trained_miner(&data[..80]);
        let ex = Extractor::multi_task(&m);
        let t_small = inference_time(&ex, &data[..20]);
        let t_large = inference_time(&ex, &data[..120]);
        assert!(t_large > t_small);
    }
}
