//! The BERT-based tag miner (paper §III-B, Fig. 2): a Transformer encoder
//! over RQ sentences with two token-level heads — tag segmentation (O/B/M)
//! and word weighting — trained jointly (multi-task) or separately
//! (single-task, the Table III "ST model" baseline).

use intellitag_datagen::{LabeledSentence, SegLabel};
use intellitag_nn::{Embedding, Linear, PositionEmbedding, TransformerEncoder};
use intellitag_tensor::{Matrix, ParamSet, Tape, Tensor};
use intellitag_text::Vocab;
use rand::prelude::*;
use rand::rngs::StdRng;

pub use intellitag_baselines::TrainConfig;

/// Maximum sentence length in tokens (the paper truncates at 512 for BERT;
/// synthetic RQs are short).
pub const MAX_SENT_LEN: usize = 32;

/// Which heads a miner trains (the MT/ST distinction of Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiningTask {
    /// Joint segmentation + weighting (the proposed "MT model").
    MultiTask,
    /// Segmentation only.
    SegmentationOnly,
    /// Word weighting only.
    WeightingOnly,
}

/// Architecture/training configuration for a miner.
#[derive(Debug, Clone, Copy)]
pub struct MinerConfig {
    /// Hidden width (the paper's teacher uses 768; scaled down here).
    pub dim: usize,
    /// Transformer layers (teacher 12 → here 4; student 2 → here 1).
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Which heads to train.
    pub task: MiningTask,
    /// Optimizer settings.
    pub train: TrainConfig,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            dim: 48,
            layers: 4,
            heads: 4,
            task: MiningTask::MultiTask,
            train: TrainConfig { epochs: 3, lr: 3e-3, ..Default::default() },
        }
    }
}

impl MinerConfig {
    /// The distilled-student architecture (paper: 2-layer student BERT).
    pub fn student(mut self) -> Self {
        self.layers = 1;
        self
    }
}

/// Per-token predictions for one sentence.
#[derive(Debug, Clone)]
pub struct TokenPredictions {
    /// Predicted segmentation label per token.
    pub seg: Vec<SegLabel>,
    /// Segmentation class probabilities per token (`n x 3`, for distillation).
    pub seg_probs: Matrix,
    /// Predicted word weight per token (sigmoid output in `(0, 1)`).
    pub weights: Vec<f32>,
}

/// A trained tag-mining model.
pub struct TagMiner {
    cfg: MinerConfig,
    vocab: Vocab,
    emb: Embedding,
    pos: PositionEmbedding,
    enc: TransformerEncoder,
    seg_head: Linear,
    weight_head: Linear,
}

impl TagMiner {
    /// Trains a miner on labeled sentences with hard labels.
    pub fn train(sentences: &[LabeledSentence], cfg: MinerConfig) -> Self {
        Self::train_inner(sentences, cfg, None)
    }

    /// Trains a student against a teacher's soft targets (knowledge
    /// distillation, §III-B): the loss blends hard labels with the teacher's
    /// segmentation distribution and weight outputs 50/50.
    pub fn distill(teacher: &TagMiner, sentences: &[LabeledSentence], cfg: MinerConfig) -> Self {
        Self::train_inner(sentences, cfg, Some(teacher))
    }

    fn train_inner(
        sentences: &[LabeledSentence],
        cfg: MinerConfig,
        teacher: Option<&TagMiner>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.train.seed);
        let texts: Vec<String> = sentences.iter().map(|s| s.tokens.join(" ")).collect();
        let vocab = Vocab::from_texts(&texts, 1);

        let mut params = ParamSet::new(cfg.train.lr);
        let emb = Embedding::new("miner.emb", vocab.len(), cfg.dim, &mut params, &mut rng);
        let pos = PositionEmbedding::new("miner.pos", MAX_SENT_LEN, cfg.dim, &mut params, &mut rng);
        let enc = TransformerEncoder::new(
            "miner.enc",
            cfg.layers,
            cfg.dim,
            cfg.heads,
            &mut params,
            &mut rng,
        );
        let seg_head = Linear::new("miner.seg", cfg.dim, 3, true, &mut params, &mut rng);
        let weight_head = Linear::new("miner.w", cfg.dim, 1, true, &mut params, &mut rng);
        let model = TagMiner { cfg, vocab, emb, pos, enc, seg_head, weight_head };

        // Pre-fetch teacher targets once (teacher runs in inference mode).
        let teacher_preds: Option<Vec<TokenPredictions>> =
            teacher.map(|t| sentences.iter().map(|s| t.predict_tokens(&s.tokens)).collect());

        let tc = &model.cfg.train;
        params.total_steps =
            Some((sentences.len() * tc.epochs).div_ceil(tc.batch_size.max(1)).max(1));
        let mut order: Vec<usize> = (0..sentences.len()).collect();
        for epoch in 0..tc.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0f64;
            let mut in_batch = 0;
            for (i, &si) in order.iter().enumerate() {
                let s = &sentences[si];
                let n = s.tokens.len().min(MAX_SENT_LEN);
                if n == 0 {
                    continue;
                }
                let tape = Tape::training(tc.seed ^ (epoch as u64) << 32 ^ si as u64);
                let h = model.encode(&tape, &s.tokens[..n]);
                let mut loss: Option<Tensor> = None;
                let mut add = |l: Tensor| {
                    loss = Some(match loss.take() {
                        Some(acc) => acc.add(&l),
                        None => l,
                    })
                };

                if model.cfg.task != MiningTask::WeightingOnly {
                    let logits = model.seg_head.forward(&tape, &h); // n x 3
                    let gold: Vec<usize> = s.seg[..n].iter().map(|l| l.class()).collect();
                    add(logits.cross_entropy_logits(&gold));
                    if let Some(tp) = &teacher_preds {
                        add(logits.soft_cross_entropy(&tp[si].seg_probs.slice_rows(0, n)));
                    }
                }
                if model.cfg.task != MiningTask::SegmentationOnly {
                    let logits = model.weight_head.forward(&tape, &h); // n x 1
                    let gold = Matrix::from_vec(n, 1, s.weight[..n].to_vec());
                    add(logits.bce_with_logits(&gold));
                    if let Some(tp) = &teacher_preds {
                        let soft = Matrix::from_vec(n, 1, tp[si].weights[..n].to_vec());
                        add(logits.bce_with_logits(&soft));
                    }
                }

                let loss = loss.expect("at least one task active");
                epoch_loss += loss.scalar() as f64;
                loss.backward();
                in_batch += 1;
                if in_batch == tc.batch_size || i + 1 == order.len() {
                    params.step(1.0 / in_batch as f32);
                    in_batch = 0;
                }
            }
            if tc.verbose {
                println!(
                    "miner({:?}, L={}) epoch {epoch}: loss {:.4}",
                    model.cfg.task,
                    model.cfg.layers,
                    epoch_loss / sentences.len().max(1) as f64
                );
            }
        }
        model
    }

    fn encode(&self, tape: &Tape, tokens: &[String]) -> Tensor {
        let ids: Vec<usize> = tokens.iter().map(|t| self.vocab.id(t)).collect();
        let x = self.emb.forward(tape, &ids);
        let p = self.pos.forward(tape, ids.len());
        self.enc.forward(tape, &x.add(&p))
    }

    /// Runs inference on one tokenized sentence.
    pub fn predict_tokens(&self, tokens: &[String]) -> TokenPredictions {
        let n = tokens.len().min(MAX_SENT_LEN);
        if n == 0 {
            return TokenPredictions {
                seg: Vec::new(),
                seg_probs: Matrix::zeros(0, 3),
                weights: Vec::new(),
            };
        }
        let tape = Tape::new();
        let h = self.encode(&tape, &tokens[..n]);
        let seg_probs = self.seg_head.forward(&tape, &h).value().softmax_rows();
        let seg = (0..n).map(|r| SegLabel::from_class(seg_probs.argmax_row(r))).collect();
        let weights = self
            .weight_head
            .forward(&tape, &h)
            .value()
            .into_vec()
            .into_iter()
            .map(|x| 1.0 / (1.0 + (-x).exp()))
            .collect();
        TokenPredictions { seg, seg_probs, weights }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.cfg
    }

    /// Number of Transformer layers (teacher vs student check).
    pub fn num_layers(&self) -> usize {
        self.cfg.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_datagen::{labeled_sentences, World, WorldConfig};

    fn data() -> Vec<LabeledSentence> {
        let world = World::generate(WorldConfig::tiny(21));
        labeled_sentences(&world)
    }

    fn quick_cfg(task: MiningTask) -> MinerConfig {
        MinerConfig {
            dim: 24,
            layers: 1,
            heads: 2,
            task,
            train: TrainConfig { epochs: 3, lr: 5e-3, seed: 4, ..Default::default() },
        }
    }

    #[test]
    fn multitask_learns_to_segment() {
        let data = data();
        let (train, test) = data.split_at(160);
        let m = TagMiner::train(train, quick_cfg(MiningTask::MultiTask));
        let mut correct = 0usize;
        let mut total = 0usize;
        for s in test.iter().take(40) {
            let p = m.predict_tokens(&s.tokens);
            for (pred, gold) in p.seg.iter().zip(&s.seg) {
                total += 1;
                if pred == gold {
                    correct += 1;
                }
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.7, "token segmentation accuracy {acc}");
    }

    #[test]
    fn weights_separate_tag_tokens() {
        let data = data();
        let (train, test) = data.split_at(160);
        let m = TagMiner::train(train, quick_cfg(MiningTask::MultiTask));
        let mut tag_w = 0.0f64;
        let mut other_w = 0.0f64;
        let (mut nt, mut no) = (0, 0);
        for s in test.iter().take(40) {
            let p = m.predict_tokens(&s.tokens);
            for (i, &w) in p.weights.iter().enumerate() {
                if s.weight[i] > 0.5 {
                    tag_w += w as f64;
                    nt += 1;
                } else {
                    other_w += w as f64;
                    no += 1;
                }
            }
        }
        assert!(tag_w / nt as f64 > other_w / no.max(1) as f64 + 0.2);
    }

    #[test]
    fn single_task_variants_train() {
        let data = data();
        let seg = TagMiner::train(&data[..80], quick_cfg(MiningTask::SegmentationOnly));
        let w = TagMiner::train(&data[..80], quick_cfg(MiningTask::WeightingOnly));
        let p1 = seg.predict_tokens(&data[100].tokens);
        let p2 = w.predict_tokens(&data[100].tokens);
        assert_eq!(p1.seg.len(), data[100].tokens.len());
        assert_eq!(p2.weights.len(), data[100].tokens.len());
    }

    #[test]
    fn distilled_student_is_shallower_and_usable() {
        let data = data();
        let teacher_cfg = MinerConfig { layers: 2, ..quick_cfg(MiningTask::MultiTask) };
        let teacher = TagMiner::train(&data[..120], teacher_cfg);
        let student = TagMiner::distill(&teacher, &data[..120], teacher_cfg.student());
        assert_eq!(student.num_layers(), 1);
        let p = student.predict_tokens(&data[130].tokens);
        assert_eq!(p.seg.len(), data[130].tokens.len());
        assert!(p.weights.iter().all(|w| (0.0..=1.0).contains(w)));
    }

    #[test]
    fn empty_sentence_is_safe() {
        let data = data();
        let m = TagMiner::train(&data[..40], quick_cfg(MiningTask::MultiTask));
        let p = m.predict_tokens(&[]);
        assert!(p.seg.is_empty() && p.weights.is_empty());
    }
}
