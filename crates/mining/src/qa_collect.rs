//! Automatic Q&A pair collection (paper §III-A): cluster user questions
//! together with existing RQs (DBSCAN over sentence embeddings), promote a
//! representative question for clusters that lack an RQ, and select an
//! answer from high-rated manual-service replies.
//!
//! The paper uses Transformer sentence embeddings and a machine-reading-
//! comprehension model for answer extraction; offline substitutes are
//! hashed sentence embeddings and BM25-based answer selection (see
//! DESIGN.md §2).

use intellitag_search::InvertedIndex;
use intellitag_text::{dbscan_points, HashedEmbedder};

/// A user-proposed question observed in the online logs.
#[derive(Debug, Clone)]
pub struct UserQuestion {
    /// The question text.
    pub text: String,
    /// A high-rated manual-service reply, when one exists.
    pub reply: Option<String>,
}

/// Collection parameters.
#[derive(Debug, Clone, Copy)]
pub struct CollectConfig {
    /// Embedding width for clustering.
    pub embed_dim: usize,
    /// DBSCAN neighborhood radius (embeddings are unit vectors, so
    /// distances live in `[0, 2]`).
    pub eps: f64,
    /// DBSCAN core-point threshold.
    pub min_pts: usize,
}

impl Default for CollectConfig {
    fn default() -> Self {
        CollectConfig { embed_dim: 128, eps: 0.75, min_pts: 3 }
    }
}

/// A newly collected Q&A pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectedPair {
    /// The promoted representative question.
    pub question: String,
    /// The selected answer.
    pub answer: String,
    /// How many user questions the cluster contained.
    pub cluster_size: usize,
}

/// Runs the collection pipeline. `existing_rqs` are the KB's current
/// representative questions; clusters containing any of them are skipped
/// (they are already covered). Clusters without replies are skipped too —
/// there is nothing to answer with.
pub fn collect_qa_pairs(
    questions: &[UserQuestion],
    existing_rqs: &[String],
    cfg: &CollectConfig,
) -> Vec<CollectedPair> {
    if questions.is_empty() {
        return Vec::new();
    }
    let embedder = HashedEmbedder::new(cfg.embed_dim);
    // Mix user questions and RQs into one point set (paper: "we mix user's
    // frequently proposed questions and RQs").
    let mut points: Vec<Vec<f32>> = Vec::with_capacity(questions.len() + existing_rqs.len());
    for q in questions {
        points.push(embedder.embed(&q.text));
    }
    for rq in existing_rqs {
        points.push(embedder.embed(rq));
    }
    let assignment = dbscan_points(&points, cfg.eps, cfg.min_pts);

    // Group user-question indices per cluster; note clusters that contain an RQ.
    let num_clusters = assignment.iter().filter_map(|a| a.cluster()).max().map_or(0, |m| m + 1);
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); num_clusters];
    let mut has_rq = vec![false; num_clusters];
    for (i, a) in assignment.iter().enumerate() {
        let Some(c) = a.cluster() else { continue };
        if i < questions.len() {
            members[c].push(i);
        } else {
            has_rq[c] = true;
        }
    }

    let mut out = Vec::new();
    for (c, qs) in members.iter().enumerate() {
        if has_rq[c] || qs.is_empty() {
            continue;
        }
        // Representative question: the medoid (minimum total distance to the
        // other cluster members) — the stand-in for "randomly choose a
        // user's question" that keeps the choice deterministic.
        let medoid = *qs
            .iter()
            .min_by(|&&a, &&b| {
                let da: f64 = qs.iter().map(|&o| dist(&points[a], &points[o])).sum();
                let db: f64 = qs.iter().map(|&o| dist(&points[b], &points[o])).sum();
                da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("non-empty cluster");
        let question = questions[medoid].text.clone();

        // Answer selection: BM25 over the cluster's high-rated replies
        // against the representative question (the MRC substitute).
        let replies: Vec<&String> =
            qs.iter().filter_map(|&i| questions[i].reply.as_ref()).collect();
        if replies.is_empty() {
            continue;
        }
        let mut index = InvertedIndex::new();
        for r in &replies {
            index.add_document(&intellitag_text::tokenize(r));
        }
        let query = intellitag_text::tokenize(&question);
        let answer = match index.search(&query, 1).first() {
            Some(hit) => replies[hit.doc].clone(),
            None => replies[0].clone(), // no lexical overlap: fall back to any reply
        };

        out.push(CollectedPair { question, answer, cluster_size: qs.len() });
    }
    out
}

fn dist(a: &[f32], b: &[f32]) -> f64 {
    intellitag_text::euclidean(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(text: &str, reply: Option<&str>) -> UserQuestion {
        UserQuestion { text: text.into(), reply: reply.map(str::to_string) }
    }

    fn paraphrase_cluster() -> Vec<UserQuestion> {
        vec![
            q(
                "how do i reset my vpn password",
                Some("Open the VPN client and click reset password."),
            ),
            q("reset vpn password how", None),
            q("i want to reset the vpn password please", Some("Use the VPN reset menu.")),
            q("how to reset vpn password quickly", None),
        ]
    }

    #[test]
    fn uncovered_cluster_yields_a_new_pair() {
        let questions = paraphrase_cluster();
        let pairs = collect_qa_pairs(&questions, &[], &CollectConfig::default());
        assert_eq!(pairs.len(), 1);
        assert!(pairs[0].question.contains("vpn password"));
        assert!(pairs[0].answer.to_lowercase().contains("reset"));
        assert_eq!(pairs[0].cluster_size, 4);
    }

    #[test]
    fn covered_cluster_is_skipped() {
        let questions = paraphrase_cluster();
        let existing = vec!["how to reset the vpn password".to_string()];
        let pairs = collect_qa_pairs(&questions, &existing, &CollectConfig::default());
        assert!(pairs.is_empty(), "an existing RQ already covers the cluster");
    }

    #[test]
    fn clusters_without_replies_are_skipped() {
        let questions = vec![
            q("how to freeze my credit card", None),
            q("freeze credit card how", None),
            q("please freeze the credit card now", None),
        ];
        let pairs = collect_qa_pairs(&questions, &[], &CollectConfig::default());
        assert!(pairs.is_empty());
    }

    #[test]
    fn noise_questions_do_not_form_pairs() {
        let questions = vec![
            q("completely unique gibberish alpha", Some("reply a")),
            q("another unrelated thing beta", Some("reply b")),
        ];
        let pairs = collect_qa_pairs(&questions, &[], &CollectConfig::default());
        assert!(pairs.is_empty(), "sparse points are DBSCAN noise");
    }

    #[test]
    fn two_distinct_clusters_yield_two_pairs() {
        let mut questions = paraphrase_cluster();
        questions.extend([
            q("how to cancel my food order", Some("Open orders and tap cancel.")),
            q("how to cancel the food order", None),
            q("how to cancel food order today", Some("Go to my orders, cancel.")),
            q("cancel the food order how", None),
        ]);
        let pairs = collect_qa_pairs(&questions, &[], &CollectConfig::default());
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn empty_input_is_safe() {
        assert!(collect_qa_pairs(&[], &[], &CollectConfig::default()).is_empty());
    }
}
