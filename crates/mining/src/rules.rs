//! Rule-based post-processing of mined tags (paper §III-B): an
//! equal-weighted combination of (1) model tag weight, (2) tag frequency,
//! (3) tag IDF and (4) averaged intra-tag PMI. Tags below a threshold are
//! discarded, trading recall for precision (Table III, "MT model + r").

use intellitag_text::CorpusStats;

/// The four rule components for one candidate tag, each normalized to
/// `[0, 1]` before the equal-weight average (the paper sets "the same weight
/// for each rule").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuleScore {
    /// Model-predicted tag weight (mean word weight over the span).
    pub weight: f64,
    /// Corpus-frequency component.
    pub frequency: f64,
    /// Inverse-document-frequency component.
    pub idf: f64,
    /// Intra-tag semantic-consistency component (averaged PMI).
    pub pmi: f64,
}

impl RuleScore {
    /// The equal-weighted combination.
    pub fn combined(&self) -> f64 {
        (self.weight + self.frequency + self.idf + self.pmi) / 4.0
    }
}

/// Corpus-level rule filter.
pub struct RuleFilter {
    stats: CorpusStats,
    /// Acceptance threshold on the combined score.
    pub min_score: f64,
}

impl RuleFilter {
    /// Builds corpus statistics from the whole KB document (tokenized RQ
    /// sentences) — the paper computes frequency/IDF "based on the whole KB
    /// document".
    pub fn from_corpus<'a, I>(sentences: I) -> Self
    where
        I: IntoIterator<Item = &'a [String]>,
    {
        let mut stats = CorpusStats::new(4);
        for s in sentences {
            stats.add_document(s);
        }
        RuleFilter { stats, min_score: 0.5 }
    }

    /// Scores one candidate tag.
    pub fn score(&self, words: &[String], model_weight: f64) -> RuleScore {
        // Frequency: log-saturating in the rarest constituent word (a tag is
        // only as frequent as its rarest word).
        let min_tf = words.iter().map(|w| self.stats.term_frequency(w)).min().unwrap_or(0);
        let frequency = ((1 + min_tf) as f64).ln() / ((1 + 200) as f64).ln();
        // IDF: the smoothed IDF of the most informative word, squashed.
        let max_idf = words.iter().map(|w| self.stats.idf(w)).fold(0.0f64, f64::max);
        let idf = (max_idf / 6.0).clamp(0.0, 1.0);
        // PMI: logistic squash of the averaged PMI; single-word tags sit at
        // the neutral 0.5.
        let pmi = 1.0 / (1.0 + (-self.stats.avg_pmi(words)).exp());
        RuleScore {
            weight: model_weight.clamp(0.0, 1.0),
            frequency: frequency.clamp(0.0, 1.0),
            idf,
            pmi,
        }
    }

    /// Whether a candidate passes the filter.
    pub fn accepts(&self, words: &[String], model_weight: f64) -> bool {
        self.score(words, model_weight).combined() >= self.min_score
    }

    /// The underlying corpus statistics.
    pub fn stats(&self) -> &CorpusStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intellitag_text::tokenize;

    fn filter() -> RuleFilter {
        let docs: Vec<Vec<String>> = [
            "how to change password",
            "how to change password quickly",
            "where to change my password",
            "how can i apply for etc card",
            "apply for etc card on highway",
            "random blargh unique gibberish",
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        RuleFilter::from_corpus(docs.iter().map(|d| d.as_slice()))
    }

    fn words(s: &str) -> Vec<String> {
        tokenize(s)
    }

    #[test]
    fn collocations_outscore_random_pairs() {
        let f = filter();
        let good = f.score(&words("change password"), 0.9);
        let bad = f.score(&words("password highway"), 0.9);
        assert!(good.pmi > bad.pmi, "{good:?} vs {bad:?}");
        assert!(good.combined() > bad.combined());
    }

    #[test]
    fn frequent_tags_outscore_hapaxes() {
        let f = filter();
        let frequent = f.score(&words("password"), 0.8);
        let rare = f.score(&words("blargh"), 0.8);
        assert!(frequent.frequency > rare.frequency);
    }

    #[test]
    fn model_weight_contributes() {
        let f = filter();
        let hi = f.score(&words("change password"), 0.95);
        let lo = f.score(&words("change password"), 0.05);
        assert!(hi.combined() > lo.combined());
        assert!((hi.combined() - lo.combined() - 0.9 / 4.0).abs() < 1e-9);
    }

    #[test]
    fn components_are_bounded() {
        let f = filter();
        for tag in ["change password", "blargh", "etc card", "password highway blargh"] {
            let s = f.score(&words(tag), 0.5);
            for v in [s.weight, s.frequency, s.idf, s.pmi] {
                assert!((0.0..=1.0).contains(&v), "{tag}: {s:?}");
            }
        }
    }

    #[test]
    fn threshold_gates_acceptance() {
        let mut f = filter();
        f.min_score = 0.0;
        assert!(f.accepts(&words("anything at all"), 0.0));
        f.min_score = 1.01;
        assert!(!f.accepts(&words("change password"), 1.0));
    }

    #[test]
    fn unseen_word_tag_is_penalized_on_frequency() {
        let f = filter();
        let s = f.score(&words("zzzz"), 1.0);
        assert_eq!(s.frequency, 0.0);
    }
}
