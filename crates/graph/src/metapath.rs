//! TagRec metapaths (paper Definition 2 and §IV-A).
//!
//! Every metapath starts and ends at a tag:
//!
//! * `TT`     — co-clicked in a session (`T —clk— T`),
//! * `TQT`    — share an RQ (`T —asc— Q —asc— T`),
//! * `TQQT`   — RQs co-consulted (`T —asc— Q —cst— Q —asc— T`),
//! * `TQEQT`  — same tenant (`T —asc— Q —crl— E —crl— Q —asc— T`).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::het::{HetGraph, TagId};

/// A TagRec metapath (tag-to-tag information transmission path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metapath {
    /// Co-click: `T -> T`.
    TT,
    /// Shared RQ: `T -> Q -> T`.
    TQT,
    /// Co-consulted RQs: `T -> Q -> Q -> T`.
    TQQT,
    /// Same tenant: `T -> Q -> E -> Q -> T`.
    TQEQT,
}

/// The paper's metapath set `P = {TT, TQT, TQQT, TQEQT}`.
pub const ALL_METAPATHS: [Metapath; 4] =
    [Metapath::TT, Metapath::TQT, Metapath::TQQT, Metapath::TQEQT];

impl Metapath {
    /// Short name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            Metapath::TT => "TT",
            Metapath::TQT => "TQT",
            Metapath::TQQT => "TQQT",
            Metapath::TQEQT => "TQEQT",
        }
    }

    /// Index within [`ALL_METAPATHS`].
    pub fn index(self) -> usize {
        match self {
            Metapath::TT => 0,
            Metapath::TQT => 1,
            Metapath::TQQT => 2,
            Metapath::TQEQT => 3,
        }
    }
}

impl std::fmt::Display for Metapath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Exhaustive metapath neighborhood of `t`, excluding `t` itself,
/// deduplicated, truncated at `cap` entries (in discovery order).
///
/// `TQEQT` neighborhoods can span a whole tenant; the cap keeps the
/// expansion bounded (the model additionally samples, see
/// [`sample_metapath_neighbors`]).
pub fn metapath_neighbors(g: &HetGraph, t: TagId, mp: Metapath, cap: usize) -> Vec<TagId> {
    let mut out: Vec<TagId> = Vec::new();
    let mut seen = vec![false; g.num_tags()];
    seen[t] = true;
    let push = |out: &mut Vec<TagId>, seen: &mut Vec<bool>, x: TagId| -> bool {
        if !seen[x] {
            seen[x] = true;
            out.push(x);
        }
        out.len() >= cap
    };
    match mp {
        Metapath::TT => {
            for &n in g.clk_neighbors(t) {
                if push(&mut out, &mut seen, n) {
                    break;
                }
            }
        }
        Metapath::TQT => {
            'outer: for &q in g.rqs_of_tag(t) {
                for &n in g.tags_of_rq(q) {
                    if push(&mut out, &mut seen, n) {
                        break 'outer;
                    }
                }
            }
        }
        Metapath::TQQT => {
            'outer: for &q in g.rqs_of_tag(t) {
                for &q2 in g.cst_neighbors(q) {
                    for &n in g.tags_of_rq(q2) {
                        if push(&mut out, &mut seen, n) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        Metapath::TQEQT => {
            'outer: for &q in g.rqs_of_tag(t) {
                let Some(e) = g.tenant_of_rq(q) else { continue };
                for &q2 in g.rqs_of_tenant(e) {
                    if q2 == q {
                        continue;
                    }
                    for &n in g.tags_of_rq(q2) {
                        if push(&mut out, &mut seen, n) {
                            break 'outer;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Samples up to `k` metapath neighbors of `t` without replacement.
///
/// Exhausts the capped expansion first, then subsamples, which keeps the
/// distribution uniform over the (capped) neighborhood.
pub fn sample_metapath_neighbors<R: Rng>(
    g: &HetGraph,
    t: TagId,
    mp: Metapath,
    k: usize,
    rng: &mut R,
) -> Vec<TagId> {
    // Expand up to 4x the requested amount before sampling so the subsample
    // is not biased toward the first-discovered neighbors.
    let mut pool = metapath_neighbors(g, t, mp, k.saturating_mul(4).max(16));
    if pool.len() <= k {
        return pool;
    }
    pool.shuffle(rng);
    pool.truncate(k);
    pool
}

/// One step of a metapath-guided random walk: a uniformly random tag
/// reachable from `t` via `mp`, or `None` when the neighborhood is empty.
pub fn random_metapath_step<R: Rng>(
    g: &HetGraph,
    t: TagId,
    mp: Metapath,
    rng: &mut R,
) -> Option<TagId> {
    match mp {
        Metapath::TT => g.clk_neighbors(t).choose(rng).copied(),
        Metapath::TQT => {
            let q = *g.rqs_of_tag(t).choose(rng)?;
            g.tags_of_rq(q).choose(rng).copied()
        }
        Metapath::TQQT => {
            let q = *g.rqs_of_tag(t).choose(rng)?;
            let q2 = *g.cst_neighbors(q).choose(rng)?;
            g.tags_of_rq(q2).choose(rng).copied()
        }
        Metapath::TQEQT => {
            let q = *g.rqs_of_tag(t).choose(rng)?;
            let e = g.tenant_of_rq(q)?;
            let q2 = *g.rqs_of_tenant(e).choose(rng)?;
            g.tags_of_rq(q2).choose(rng).copied()
        }
    }
}

/// A metapath-guided random walk over tags (used by metapath2vec).
///
/// At each step a metapath is drawn from `scheme` round-robin and followed;
/// steps with empty neighborhoods are skipped (the walk stays in place). The
/// returned walk includes the start node and has at most `len` nodes.
pub fn metapath_walk<R: Rng>(
    g: &HetGraph,
    start: TagId,
    scheme: &[Metapath],
    len: usize,
    rng: &mut R,
) -> Vec<TagId> {
    assert!(!scheme.is_empty(), "empty metapath scheme");
    let mut walk = Vec::with_capacity(len);
    walk.push(start);
    let mut cur = start;
    let mut stuck = 0;
    while walk.len() < len && stuck < scheme.len() {
        let mp = scheme[(walk.len() - 1) % scheme.len()];
        match random_metapath_step(g, cur, mp, rng) {
            Some(next) => {
                stuck = 0;
                cur = next;
                walk.push(next);
            }
            None => stuck += 1,
        }
    }
    walk
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::het::HetGraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// tags 0..4, rqs 0..4, tenants 0..2
    ///   asc: t0-q0, t1-q0, t1-q1, t2-q2, t3-q3
    ///   clk: t0-t1
    ///   cst: q0-q2
    ///   tenants: q0,q1 -> e0; q2,q3 -> e1
    fn g() -> HetGraph {
        let mut b = HetGraphBuilder::new(4, 4, 2);
        b.add_asc(0, 0).add_asc(1, 0).add_asc(1, 1).add_asc(2, 2).add_asc(3, 3);
        b.add_clk(0, 1);
        b.add_cst(0, 2);
        b.set_tenant(0, 0).set_tenant(1, 0).set_tenant(2, 1).set_tenant(3, 1);
        b.build()
    }

    #[test]
    fn tt_neighbors_are_clk() {
        let g = g();
        assert_eq!(metapath_neighbors(&g, 0, Metapath::TT, 10), vec![1]);
        assert!(metapath_neighbors(&g, 2, Metapath::TT, 10).is_empty());
    }

    #[test]
    fn tqt_neighbors_share_an_rq() {
        let g = g();
        assert_eq!(metapath_neighbors(&g, 0, Metapath::TQT, 10), vec![1]);
        // t1 reaches t0 through q0 (q1 has only t1 itself)
        assert_eq!(metapath_neighbors(&g, 1, Metapath::TQT, 10), vec![0]);
    }

    #[test]
    fn tqqt_follows_co_consult() {
        let g = g();
        // t0 -asc- q0 -cst- q2 -asc- t2
        assert_eq!(metapath_neighbors(&g, 0, Metapath::TQQT, 10), vec![2]);
        // symmetric direction
        assert_eq!(metapath_neighbors(&g, 2, Metapath::TQQT, 10), vec![0, 1]);
    }

    #[test]
    fn tqeqt_spans_the_tenant() {
        let g = g();
        // t2 (tenant e1 via q2) reaches t3 via q3
        assert_eq!(metapath_neighbors(&g, 2, Metapath::TQEQT, 10), vec![3]);
        // t0's tenant e0 contains q1 with tag t1 only (q0 skipped as source)
        assert_eq!(metapath_neighbors(&g, 0, Metapath::TQEQT, 10), vec![1]);
    }

    #[test]
    fn cap_truncates() {
        let g = g();
        let n = metapath_neighbors(&g, 2, Metapath::TQQT, 1);
        assert_eq!(n.len(), 1);
    }

    #[test]
    fn neighbors_never_include_self() {
        let g = g();
        for t in 0..g.num_tags() {
            for mp in ALL_METAPATHS {
                assert!(
                    !metapath_neighbors(&g, t, mp, 100).contains(&t),
                    "tag {t} found itself via {mp}"
                );
            }
        }
    }

    #[test]
    fn sampling_respects_k_and_membership() {
        let g = g();
        let mut rng = StdRng::seed_from_u64(0);
        let full = metapath_neighbors(&g, 2, Metapath::TQQT, 100);
        let s = sample_metapath_neighbors(&g, 2, Metapath::TQQT, 1, &mut rng);
        assert_eq!(s.len(), 1);
        assert!(full.contains(&s[0]));
    }

    #[test]
    fn walks_start_at_start_and_stay_in_range() {
        let g = g();
        let mut rng = StdRng::seed_from_u64(1);
        let w = metapath_walk(&g, 0, &[Metapath::TQT, Metapath::TT], 8, &mut rng);
        assert_eq!(w[0], 0);
        assert!(w.len() <= 8);
        assert!(w.iter().all(|&t| t < g.num_tags()));
    }

    #[test]
    fn walk_on_isolated_tag_terminates() {
        let mut b = HetGraphBuilder::new(2, 1, 1);
        b.add_asc(0, 0); // tag 1 fully isolated
        let g = b.build();
        let mut rng = StdRng::seed_from_u64(2);
        let w = metapath_walk(&g, 1, &[Metapath::TT], 16, &mut rng);
        assert_eq!(w, vec![1]);
    }
}
