//! # intellitag-graph
//!
//! The TagRec heterogeneous graph substrate (paper §IV-A):
//!
//! * [`HetGraph`] / [`HetGraphBuilder`] — tags, representative questions and
//!   tenants connected by the four relations `asc`, `crl`, `clk`, `cst`.
//! * [`Metapath`] — the paper's metapath set `{TT, TQT, TQQT, TQEQT}` with
//!   exhaustive expansion, uniform sampling, and metapath-guided random walks
//!   (the latter feed the metapath2vec baseline).

#![warn(missing_docs)]

mod het;
mod metapath;

pub use het::{
    HetGraph, HetGraphBuilder, NodeType, Relation, RelationCounts, RqId, TagId, TenantId,
};
pub use metapath::{
    metapath_neighbors, metapath_walk, random_metapath_step, sample_metapath_neighbors, Metapath,
    ALL_METAPATHS,
};
