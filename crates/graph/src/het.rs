//! The TagRec heterogeneous graph (paper Definition 1).
//!
//! Node types `A = {T, Q, E}` (tags, representative questions, tenants) and
//! relations `R = {asc, crl, clk, cst}`:
//!
//! * `asc` — tag ↔ RQ inclusion (from tag mining),
//! * `crl` — RQ → tenant ownership,
//! * `clk` — tag ↔ tag co-click within a session,
//! * `cst` — RQ ↔ RQ co-consult (successive questions in a session).

use std::collections::HashSet;

/// Identifier of a tag node.
pub type TagId = usize;
/// Identifier of an RQ (representative question) node.
pub type RqId = usize;
/// Identifier of a tenant node.
pub type TenantId = usize;

/// Node types of the heterogeneous graph (paper's `A = {T, Q, E}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeType {
    /// A mined tag.
    Tag,
    /// A representative question in the KB.
    Rq,
    /// A tenant (SME renting the cloud service).
    Tenant,
}

/// Edge types of the heterogeneous graph (paper's `R`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// Tag–RQ association (inclusion).
    Asc,
    /// RQ–tenant correlation (ownership).
    Crl,
    /// Tag–tag co-click.
    Clk,
    /// RQ–RQ co-consult.
    Cst,
}

/// Per-relation edge counts, printed for the Table II comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelationCounts {
    /// Tag–RQ association edges.
    pub asc: usize,
    /// RQ–tenant edges (one per RQ with an owner).
    pub crl: usize,
    /// Undirected tag–tag co-click edges.
    pub clk: usize,
    /// Undirected RQ–RQ co-consult edges.
    pub cst: usize,
}

impl RelationCounts {
    /// Total edges across all four relations.
    pub fn total(&self) -> usize {
        self.asc + self.crl + self.clk + self.cst
    }
}

/// Mutable builder for [`HetGraph`]. Duplicate edges are deduplicated at
/// [`HetGraphBuilder::build`] time.
#[derive(Debug, Default)]
pub struct HetGraphBuilder {
    num_tags: usize,
    num_rqs: usize,
    num_tenants: usize,
    asc: Vec<(TagId, RqId)>,
    clk: Vec<(TagId, TagId)>,
    cst: Vec<(RqId, RqId)>,
    rq_tenant: Vec<(RqId, TenantId)>,
}

impl HetGraphBuilder {
    /// Creates a builder for a graph with fixed node populations.
    pub fn new(num_tags: usize, num_rqs: usize, num_tenants: usize) -> Self {
        HetGraphBuilder { num_tags, num_rqs, num_tenants, ..Default::default() }
    }

    /// Adds an `asc` (tag ∈ RQ) edge.
    pub fn add_asc(&mut self, tag: TagId, rq: RqId) -> &mut Self {
        assert!(tag < self.num_tags && rq < self.num_rqs, "asc edge out of range");
        self.asc.push((tag, rq));
        self
    }

    /// Adds an undirected `clk` (co-click) edge between two tags.
    pub fn add_clk(&mut self, a: TagId, b: TagId) -> &mut Self {
        assert!(a < self.num_tags && b < self.num_tags, "clk edge out of range");
        if a != b {
            self.clk.push((a.min(b), a.max(b)));
        }
        self
    }

    /// Adds an undirected `cst` (co-consult) edge between two RQs.
    pub fn add_cst(&mut self, a: RqId, b: RqId) -> &mut Self {
        assert!(a < self.num_rqs && b < self.num_rqs, "cst edge out of range");
        if a != b {
            self.cst.push((a.min(b), a.max(b)));
        }
        self
    }

    /// Sets the owning tenant of an RQ (`crl` relation).
    pub fn set_tenant(&mut self, rq: RqId, tenant: TenantId) -> &mut Self {
        assert!(rq < self.num_rqs && tenant < self.num_tenants, "crl edge out of range");
        self.rq_tenant.push((rq, tenant));
        self
    }

    /// Freezes the builder into an immutable [`HetGraph`].
    pub fn build(self) -> HetGraph {
        let mut tag_rqs = vec![Vec::new(); self.num_tags];
        let mut rq_tags = vec![Vec::new(); self.num_rqs];
        let mut seen = HashSet::new();
        let mut asc_count = 0;
        for (t, q) in self.asc {
            if seen.insert((t, q)) {
                tag_rqs[t].push(q);
                rq_tags[q].push(t);
                asc_count += 1;
            }
        }

        let mut clk_adj = vec![Vec::new(); self.num_tags];
        seen.clear();
        let mut clk_count = 0;
        for (a, b) in self.clk {
            if seen.insert((a, b)) {
                clk_adj[a].push(b);
                clk_adj[b].push(a);
                clk_count += 1;
            }
        }

        let mut cst_adj = vec![Vec::new(); self.num_rqs];
        seen.clear();
        let mut cst_count = 0;
        for (a, b) in self.cst {
            if seen.insert((a, b)) {
                cst_adj[a].push(b);
                cst_adj[b].push(a);
                cst_count += 1;
            }
        }

        let mut rq_tenant = vec![None; self.num_rqs];
        let mut tenant_rqs = vec![Vec::new(); self.num_tenants];
        let mut crl_count = 0;
        for (q, e) in self.rq_tenant {
            if rq_tenant[q].is_none() {
                rq_tenant[q] = Some(e);
                tenant_rqs[e].push(q);
                crl_count += 1;
            }
        }

        HetGraph {
            tag_rqs,
            rq_tags,
            clk_adj,
            cst_adj,
            rq_tenant,
            tenant_rqs,
            counts: RelationCounts {
                asc: asc_count,
                crl: crl_count,
                clk: clk_count,
                cst: cst_count,
            },
        }
    }
}

/// An immutable heterogeneous graph over tags, RQs and tenants.
#[derive(Debug, Clone)]
pub struct HetGraph {
    tag_rqs: Vec<Vec<RqId>>,
    rq_tags: Vec<Vec<TagId>>,
    clk_adj: Vec<Vec<TagId>>,
    cst_adj: Vec<Vec<RqId>>,
    rq_tenant: Vec<Option<TenantId>>,
    tenant_rqs: Vec<Vec<RqId>>,
    counts: RelationCounts,
}

impl HetGraph {
    /// Number of tag nodes.
    pub fn num_tags(&self) -> usize {
        self.tag_rqs.len()
    }

    /// Number of RQ nodes.
    pub fn num_rqs(&self) -> usize {
        self.rq_tags.len()
    }

    /// Number of tenant nodes.
    pub fn num_tenants(&self) -> usize {
        self.tenant_rqs.len()
    }

    /// Per-relation edge counts.
    pub fn relation_counts(&self) -> RelationCounts {
        self.counts
    }

    /// RQs associated with a tag (`asc`, tag side).
    pub fn rqs_of_tag(&self, t: TagId) -> &[RqId] {
        &self.tag_rqs[t]
    }

    /// Tags associated with an RQ (`asc`, RQ side).
    pub fn tags_of_rq(&self, q: RqId) -> &[TagId] {
        &self.rq_tags[q]
    }

    /// Co-clicked tag neighbors (`clk`).
    pub fn clk_neighbors(&self, t: TagId) -> &[TagId] {
        &self.clk_adj[t]
    }

    /// Co-consulted RQ neighbors (`cst`).
    pub fn cst_neighbors(&self, q: RqId) -> &[RqId] {
        &self.cst_adj[q]
    }

    /// Owning tenant of an RQ (`crl`).
    pub fn tenant_of_rq(&self, q: RqId) -> Option<TenantId> {
        self.rq_tenant[q]
    }

    /// RQs owned by a tenant (`crl`, tenant side).
    pub fn rqs_of_tenant(&self, e: TenantId) -> &[RqId] {
        &self.tenant_rqs[e]
    }

    /// All tags mined from a tenant's RQs, deduplicated and sorted.
    pub fn tags_of_tenant(&self, e: TenantId) -> Vec<TagId> {
        let mut out: Vec<TagId> =
            self.tenant_rqs[e].iter().flat_map(|&q| self.rq_tags[q].iter().copied()).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> HetGraph {
        // tags: 0,1,2  rqs: 0,1,2  tenants: 0,1
        let mut b = HetGraphBuilder::new(3, 3, 2);
        b.add_asc(0, 0).add_asc(1, 0).add_asc(1, 1).add_asc(2, 2);
        b.add_clk(0, 1).add_clk(1, 2);
        b.add_cst(0, 1);
        b.set_tenant(0, 0).set_tenant(1, 0).set_tenant(2, 1);
        b.build()
    }

    #[test]
    fn counts_and_adjacency() {
        let g = small();
        let c = g.relation_counts();
        assert_eq!(c, RelationCounts { asc: 4, crl: 3, clk: 2, cst: 1 });
        assert_eq!(c.total(), 10);
        assert_eq!(g.rqs_of_tag(1), &[0, 1]);
        assert_eq!(g.tags_of_rq(0), &[0, 1]);
        assert_eq!(g.clk_neighbors(1), &[0, 2]);
        assert_eq!(g.cst_neighbors(1), &[0]);
        assert_eq!(g.tenant_of_rq(2), Some(1));
        assert_eq!(g.rqs_of_tenant(0), &[0, 1]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = HetGraphBuilder::new(2, 2, 1);
        b.add_clk(0, 1).add_clk(1, 0).add_asc(0, 0).add_asc(0, 0);
        let g = b.build();
        assert_eq!(g.relation_counts().clk, 1);
        assert_eq!(g.relation_counts().asc, 1);
    }

    #[test]
    fn self_click_ignored() {
        let mut b = HetGraphBuilder::new(1, 1, 1);
        b.add_clk(0, 0);
        assert_eq!(b.build().relation_counts().clk, 0);
    }

    #[test]
    fn clk_symmetry() {
        let g = small();
        for t in 0..g.num_tags() {
            for &n in g.clk_neighbors(t) {
                assert!(g.clk_neighbors(n).contains(&t), "clk must be symmetric");
            }
        }
    }

    #[test]
    fn first_tenant_assignment_wins() {
        let mut b = HetGraphBuilder::new(1, 1, 2);
        b.set_tenant(0, 1).set_tenant(0, 0);
        let g = b.build();
        assert_eq!(g.tenant_of_rq(0), Some(1));
        assert_eq!(g.relation_counts().crl, 1);
    }

    #[test]
    fn tags_of_tenant_deduplicates() {
        let g = small();
        assert_eq!(g.tags_of_tenant(0), vec![0, 1]);
        assert_eq!(g.tags_of_tenant(1), vec![2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = HetGraphBuilder::new(1, 1, 1);
        b.add_asc(5, 0);
    }
}
