//! Property tests for the heterogeneous graph and metapath machinery.

use intellitag_graph::{
    metapath_neighbors, metapath_walk, HetGraphBuilder, Metapath, ALL_METAPATHS,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const T: usize = 12;
const Q: usize = 16;
const E: usize = 3;

#[derive(Debug, Clone)]
struct RandomGraphSpec {
    asc: Vec<(usize, usize)>,
    clk: Vec<(usize, usize)>,
    cst: Vec<(usize, usize)>,
    tenants: Vec<usize>,
}

fn graph_spec() -> impl Strategy<Value = RandomGraphSpec> {
    (
        proptest::collection::vec((0..T, 0..Q), 0..40),
        proptest::collection::vec((0..T, 0..T), 0..30),
        proptest::collection::vec((0..Q, 0..Q), 0..30),
        proptest::collection::vec(0..E, Q..=Q),
    )
        .prop_map(|(asc, clk, cst, tenants)| RandomGraphSpec { asc, clk, cst, tenants })
}

fn build(spec: &RandomGraphSpec) -> intellitag_graph::HetGraph {
    let mut b = HetGraphBuilder::new(T, Q, E);
    for &(t, q) in &spec.asc {
        b.add_asc(t, q);
    }
    for &(a, x) in &spec.clk {
        b.add_clk(a, x);
    }
    for &(a, x) in &spec.cst {
        b.add_cst(a, x);
    }
    for (q, &e) in spec.tenants.iter().enumerate() {
        b.set_tenant(q, e);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn clk_and_cst_are_symmetric(spec in graph_spec()) {
        let g = build(&spec);
        for t in 0..T {
            for &n in g.clk_neighbors(t) {
                prop_assert!(g.clk_neighbors(n).contains(&t));
            }
        }
        for q in 0..Q {
            for &n in g.cst_neighbors(q) {
                prop_assert!(g.cst_neighbors(n).contains(&q));
            }
        }
    }

    #[test]
    fn asc_is_bidirectionally_consistent(spec in graph_spec()) {
        let g = build(&spec);
        for t in 0..T {
            for &q in g.rqs_of_tag(t) {
                prop_assert!(g.tags_of_rq(q).contains(&t));
            }
        }
        for q in 0..Q {
            for &t in g.tags_of_rq(q) {
                prop_assert!(g.rqs_of_tag(t).contains(&q));
            }
        }
    }

    #[test]
    fn crl_count_equals_assigned_rqs(spec in graph_spec()) {
        let g = build(&spec);
        // Every RQ got exactly one tenant assignment in the spec.
        prop_assert_eq!(g.relation_counts().crl, Q);
        let total: usize = (0..E).map(|e| g.rqs_of_tenant(e).len()).sum();
        prop_assert_eq!(total, Q);
    }

    #[test]
    fn metapath_neighbors_exclude_self_and_respect_cap(
        spec in graph_spec(),
        cap in 1usize..8,
        t in 0..T,
    ) {
        let g = build(&spec);
        for mp in ALL_METAPATHS {
            let n = metapath_neighbors(&g, t, mp, cap);
            prop_assert!(n.len() <= cap);
            prop_assert!(!n.contains(&t));
            // deduplicated
            let mut s = n.clone();
            s.sort_unstable();
            s.dedup();
            prop_assert_eq!(s.len(), n.len());
            prop_assert!(n.iter().all(|&x| x < T));
        }
    }

    #[test]
    fn tqt_neighborhood_is_symmetric(spec in graph_spec()) {
        // If b is reachable from a via TQT with a large cap, a is reachable
        // from b (shared RQ is symmetric).
        let g = build(&spec);
        for a in 0..T {
            for &b in &metapath_neighbors(&g, a, Metapath::TQT, 1000) {
                let back = metapath_neighbors(&g, b, Metapath::TQT, 1000);
                prop_assert!(back.contains(&a), "TQT asymmetry {a} -> {b}");
            }
        }
    }

    #[test]
    fn walks_stay_in_range_and_start_correctly(
        spec in graph_spec(),
        start in 0..T,
        len in 1usize..16,
        seed in any::<u64>(),
    ) {
        let g = build(&spec);
        let mut rng = StdRng::seed_from_u64(seed);
        let w = metapath_walk(&g, start, &ALL_METAPATHS, len, &mut rng);
        prop_assert!(!w.is_empty());
        prop_assert_eq!(w[0], start);
        prop_assert!(w.len() <= len.max(1));
        prop_assert!(w.iter().all(|&t| t < T));
    }
}
