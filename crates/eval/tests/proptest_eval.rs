//! Property tests for the evaluation metrics.

use intellitag_eval::{
    hit_at, ndcg_at, rank_of_positive, sample_negatives, CtrAccumulator, LatencyAccumulator,
    RankingAccumulator,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn rank_is_within_bounds(pos in -10.0f32..10.0,
                             negs in proptest::collection::vec(-10.0f32..10.0, 0..50)) {
        let r = rank_of_positive(pos, &negs);
        prop_assert!(r >= 1 && r <= negs.len() + 1);
    }

    #[test]
    fn rank_is_monotone_in_score(negs in proptest::collection::vec(-10.0f32..10.0, 1..30),
                                 lo in -10.0f32..0.0, delta in 0.1f32..10.0) {
        let hi = lo + delta;
        prop_assert!(rank_of_positive(hi, &negs) <= rank_of_positive(lo, &negs));
    }

    #[test]
    fn report_fields_are_probabilities(ranks in proptest::collection::vec(1usize..100, 1..50)) {
        let mut acc = RankingAccumulator::new();
        for r in &ranks {
            acc.push_rank(*r);
        }
        let rep = acc.report();
        for v in [rep.mrr, rep.ndcg1, rep.ndcg5, rep.ndcg10, rep.hr5, rep.hr10] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        prop_assert_eq!(rep.queries, ranks.len());
        // NDCG and HR are monotone in K.
        prop_assert!(rep.ndcg1 <= rep.ndcg5 + 1e-12);
        prop_assert!(rep.ndcg5 <= rep.ndcg10 + 1e-12);
        prop_assert!(rep.hr5 <= rep.hr10 + 1e-12);
        // NDCG@K <= HR@K (each query contributes at most its hit).
        prop_assert!(rep.ndcg5 <= rep.hr5 + 1e-12);
        prop_assert!(rep.ndcg10 <= rep.hr10 + 1e-12);
        // MRR <= HR@anything-large... specifically mrr <= 1.
        prop_assert!(rep.mrr <= 1.0);
    }

    #[test]
    fn ndcg_hit_consistency(rank in 1usize..60, k in 1usize..20) {
        let h = hit_at(rank, k);
        let n = ndcg_at(rank, k);
        prop_assert!(n <= h, "ndcg {n} must not exceed hit {h}");
        if h == 0.0 {
            prop_assert_eq!(n, 0.0);
        } else {
            prop_assert!(n > 0.0);
        }
    }

    #[test]
    fn negatives_are_valid(
        positive in 0usize..20,
        n in 1usize..30,
        seed in any::<u64>(),
    ) {
        let tenant_pool: Vec<usize> = (0..20).collect();
        let global: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let negs = sample_negatives(positive, &tenant_pool, &global, n, &mut rng);
        prop_assert_eq!(negs.len(), n.min(99));
        prop_assert!(!negs.contains(&positive));
        let mut s = negs.clone();
        s.sort_unstable();
        s.dedup();
        prop_assert_eq!(s.len(), negs.len(), "duplicates in negatives");
    }

    #[test]
    fn ctr_bounds_and_ordering(events in proptest::collection::vec((0usize..5, any::<bool>()), 1..100)) {
        let mut acc = CtrAccumulator::new();
        for (t, c) in &events {
            acc.record(*t, *c);
        }
        let micro = acc.micro_ctr();
        let mac = acc.macro_ctr();
        prop_assert!((0.0..=1.0).contains(&micro));
        prop_assert!((0.0..=1.0).contains(&mac));
        prop_assert!(acc.tenant_variance() >= 0.0);
        prop_assert!(acc.num_tenants() >= 1);
    }

    #[test]
    fn latency_percentiles_are_ordered(samples in proptest::collection::vec(1u64..1_000_000, 1..60)) {
        let mut acc = LatencyAccumulator::new();
        for s in &samples {
            acc.record_us(*s);
        }
        let p50 = acc.percentile_ms(50.0);
        let p99 = acc.percentile_ms(99.0);
        let p0 = acc.percentile_ms(0.0);
        prop_assert!(p0 <= p50 && p50 <= p99);
        let mean = acc.mean_ms();
        prop_assert!(mean >= p0 && mean <= acc.percentile_ms(100.0));
    }
}
