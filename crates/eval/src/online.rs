//! Online-style metrics: CTR (Fig. 7) and HIR (Table VI).
//!
//! The paper macro-averages CTR over tenants because small tenants are the
//! business focus; the same convention is implemented here. Accumulators
//! can publish their current readings as gauges into a shared
//! [`MetricsRegistry`], which is how the online simulator exposes rolling
//! CTR/HIR series for scraping.

use std::collections::BTreeMap;

use intellitag_obs::MetricsRegistry;

/// Click-through-rate accumulator with per-tenant bookkeeping.
#[derive(Debug, Default, Clone)]
pub struct CtrAccumulator {
    per_tenant: BTreeMap<usize, (u64, u64)>, // (clicks, impressions)
}

impl CtrAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one tag impression for a tenant and whether it was clicked.
    pub fn record(&mut self, tenant: usize, clicked: bool) {
        let e = self.per_tenant.entry(tenant).or_insert((0, 0));
        e.1 += 1;
        if clicked {
            e.0 += 1;
        }
    }

    /// Micro-averaged CTR: total clicks / total impressions.
    pub fn micro_ctr(&self) -> f64 {
        let (c, i) =
            self.per_tenant.values().fold((0u64, 0u64), |acc, &(c, i)| (acc.0 + c, acc.1 + i));
        if i == 0 {
            0.0
        } else {
            c as f64 / i as f64
        }
    }

    /// Macro-averaged CTR: mean of per-tenant CTRs (the paper's convention —
    /// every SME counts equally regardless of traffic).
    pub fn macro_ctr(&self) -> f64 {
        let rates: Vec<f64> = self
            .per_tenant
            .values()
            .filter(|&&(_, i)| i > 0)
            .map(|&(c, i)| c as f64 / i as f64)
            .collect();
        if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        }
    }

    /// Number of tenants with at least one impression.
    pub fn num_tenants(&self) -> usize {
        self.per_tenant.values().filter(|&&(_, i)| i > 0).count()
    }

    /// Publishes the current readings as `{prefix}.macro_ctr`,
    /// `{prefix}.micro_ctr` and `{prefix}.tenants` gauges.
    pub fn publish(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.gauge(&format!("{prefix}.macro_ctr")).set(self.macro_ctr());
        registry.gauge(&format!("{prefix}.micro_ctr")).set(self.micro_ctr());
        registry.gauge(&format!("{prefix}.tenants")).set(self.num_tenants() as f64);
    }

    /// Population variance of per-tenant CTRs (the paper attributes
    /// BERT4Rec's weak online showing to high cross-tenant variance).
    pub fn tenant_variance(&self) -> f64 {
        let rates: Vec<f64> = self
            .per_tenant
            .values()
            .filter(|&&(_, i)| i > 0)
            .map(|&(c, i)| c as f64 / i as f64)
            .collect();
        if rates.len() < 2 {
            return 0.0;
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        rates.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / rates.len() as f64
    }
}

/// Human-intervention-rate accumulator: the fraction of sessions that end
/// with a human takeover because the system failed to solve the question.
#[derive(Debug, Default, Clone, Copy)]
pub struct HirAccumulator {
    sessions: u64,
    interventions: u64,
}

impl HirAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a completed session and whether a human had to intervene.
    pub fn record(&mut self, intervened: bool) {
        self.sessions += 1;
        if intervened {
            self.interventions += 1;
        }
    }

    /// Sessions recorded.
    pub fn sessions(&self) -> u64 {
        self.sessions
    }

    /// Human intervention rate; 0 when nothing was recorded.
    pub fn hir(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.interventions as f64 / self.sessions as f64
        }
    }

    /// Publishes the current readings as `{prefix}.hir` and
    /// `{prefix}.sessions` gauges.
    pub fn publish(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.gauge(&format!("{prefix}.hir")).set(self.hir());
        registry.gauge(&format!("{prefix}.sessions")).set(self.sessions() as f64);
    }
}

/// Latency summary over per-request wall-clock samples (Table VI reports a
/// mean response latency per model).
#[derive(Debug, Default, Clone)]
pub struct LatencyAccumulator {
    samples_us: Vec<u64>,
}

impl LatencyAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one request latency in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.samples_us.push(us);
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    /// Mean latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        self.samples_us.iter().sum::<u64>() as f64 / self.samples_us.len() as f64 / 1000.0
    }

    /// Latency percentile in milliseconds (`p` in `[0, 100]`).
    pub fn percentile_ms(&self, p: f64) -> f64 {
        if self.samples_us.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples_us.clone();
        sorted.sort_unstable();
        let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[idx.min(sorted.len() - 1)] as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_vs_macro_ctr() {
        let mut c = CtrAccumulator::new();
        // tenant 0: 1/2 clicked; tenant 1: 0/8 clicked
        c.record(0, true);
        c.record(0, false);
        for _ in 0..8 {
            c.record(1, false);
        }
        assert!((c.micro_ctr() - 0.1).abs() < 1e-12);
        assert!((c.macro_ctr() - 0.25).abs() < 1e-12);
        assert_eq!(c.num_tenants(), 2);
    }

    #[test]
    fn macro_ctr_weights_small_tenants() {
        // A model great on the big tenant but useless on small ones must lose
        // the macro average — the paper's explanation of BERT4Rec online.
        let mut big_winner = CtrAccumulator::new();
        for _ in 0..90 {
            big_winner.record(0, true);
        }
        for t in 1..10 {
            big_winner.record(t, false);
        }
        let mut consistent = CtrAccumulator::new();
        for _ in 0..90 {
            consistent.record(0, false);
        }
        for t in 0..10 {
            consistent.record(t, true);
        }
        assert!(big_winner.micro_ctr() > consistent.micro_ctr());
        assert!(big_winner.macro_ctr() < consistent.macro_ctr());
    }

    #[test]
    fn variance_zero_for_uniform_rates() {
        let mut c = CtrAccumulator::new();
        for t in 0..4 {
            c.record(t, true);
            c.record(t, false);
        }
        assert!(c.tenant_variance() < 1e-12);
    }

    #[test]
    fn hir_counts_interventions() {
        let mut h = HirAccumulator::new();
        h.record(false);
        h.record(true);
        h.record(false);
        h.record(false);
        assert_eq!(h.sessions(), 4);
        assert!((h.hir() - 0.25).abs() < 1e-12);
        assert_eq!(HirAccumulator::new().hir(), 0.0);
    }

    #[test]
    fn publish_exports_gauges() {
        let registry = MetricsRegistry::new();
        let mut c = CtrAccumulator::new();
        c.record(0, true);
        c.record(0, false);
        c.record(1, true);
        c.publish(&registry, "online");
        assert!((registry.gauge("online.macro_ctr").get() - 0.75).abs() < 1e-12);
        assert!((registry.gauge("online.micro_ctr").get() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(registry.gauge("online.tenants").get(), 2.0);

        let mut h = HirAccumulator::new();
        h.record(true);
        h.record(false);
        h.publish(&registry, "online");
        assert_eq!(registry.gauge("online.hir").get(), 0.5);
        assert_eq!(registry.gauge("online.sessions").get(), 2.0);
        // Re-publishing overwrites (rolling gauges, not counters).
        h.record(false);
        h.publish(&registry, "online");
        assert_eq!(registry.gauge("online.sessions").get(), 3.0);
    }

    #[test]
    fn latency_mean_and_percentile() {
        let mut l = LatencyAccumulator::new();
        for us in [1000, 2000, 3000, 4000, 100_000] {
            l.record_us(us);
        }
        assert!((l.mean_ms() - 22.0).abs() < 1e-9);
        assert_eq!(l.percentile_ms(0.0), 1.0);
        assert_eq!(l.percentile_ms(100.0), 100.0);
        assert_eq!(l.percentile_ms(50.0), 3.0);
        assert_eq!(LatencyAccumulator::new().mean_ms(), 0.0);
    }
}
