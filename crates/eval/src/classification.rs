//! Precision / recall / F1 over predicted vs. gold sets, used by the tag
//! mining evaluation (paper Table III reports span-level P/R/F1).

/// Precision, recall and F1 computed from raw counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrfReport {
    /// True positives.
    pub tp: usize,
    /// False positives (predicted but not gold).
    pub fp: usize,
    /// False negatives (gold but not predicted).
    pub fn_: usize,
}

impl PrfReport {
    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when there is no gold.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// Harmonic mean of precision and recall; 0 when both are 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Formats the row as Table III prints it (percentages).
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<20} {:>6.2}%  {:>6.2}%  {:>6.2}%",
            self.precision() * 100.0,
            self.recall() * 100.0,
            self.f1() * 100.0
        )
    }
}

/// Accumulates set-matching counts across examples.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrfAccumulator {
    tp: usize,
    fp: usize,
    fn_: usize,
}

impl PrfAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one example: `predicted` and `gold` are sets of comparable
    /// items (e.g. `(start, end)` spans). Matching is exact.
    pub fn push<T: PartialEq>(&mut self, predicted: &[T], gold: &[T]) {
        let tp = predicted.iter().filter(|p| gold.contains(p)).count();
        self.tp += tp;
        self.fp += predicted.len() - tp;
        self.fn_ += gold.iter().filter(|g| !predicted.contains(g)).count();
    }

    /// Final counts.
    pub fn report(&self) -> PrfReport {
        PrfReport { tp: self.tp, fp: self.fp, fn_: self.fn_ }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let mut acc = PrfAccumulator::new();
        acc.push(&[(0, 2), (3, 4)], &[(0, 2), (3, 4)]);
        let r = acc.report();
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.f1(), 1.0);
    }

    #[test]
    fn partial_overlap() {
        let mut acc = PrfAccumulator::new();
        acc.push(&[(0, 2), (5, 6)], &[(0, 2), (3, 4)]);
        let r = acc.report();
        assert_eq!(r.tp, 1);
        assert_eq!(r.fp, 1);
        assert_eq!(r.fn_, 1);
        assert_eq!(r.precision(), 0.5);
        assert_eq!(r.recall(), 0.5);
        assert_eq!(r.f1(), 0.5);
    }

    #[test]
    fn empty_cases_do_not_divide_by_zero() {
        let acc = PrfAccumulator::new();
        let r = acc.report();
        assert_eq!(r.precision(), 0.0);
        assert_eq!(r.recall(), 0.0);
        assert_eq!(r.f1(), 0.0);
    }

    #[test]
    fn no_predictions_has_zero_precision_full_fn() {
        let mut acc = PrfAccumulator::new();
        acc.push::<(usize, usize)>(&[], &[(0, 1)]);
        let r = acc.report();
        assert_eq!(r.precision(), 0.0);
        assert_eq!(r.recall(), 0.0);
        assert_eq!(r.fn_, 1);
    }

    #[test]
    fn accumulates_across_examples() {
        let mut acc = PrfAccumulator::new();
        acc.push(&[1], &[1]);
        acc.push(&[2], &[3]);
        let r = acc.report();
        assert_eq!((r.tp, r.fp, r.fn_), (1, 1, 1));
    }
}
