//! # intellitag-eval
//!
//! Every metric reported in the IntelliTag paper's evaluation (§VI):
//!
//! * [`RankingAccumulator`] — MRR, NDCG@K, HR@K with the 49-same-tenant-
//!   negative sampled ranking protocol (Tables IV, V; Fig. 6).
//! * [`PrfAccumulator`] — span-level precision/recall/F1 for tag mining
//!   (Table III).
//! * [`CtrAccumulator`] — micro and macro (per-tenant) click-through rate
//!   (Fig. 7).
//! * [`HirAccumulator`] / [`LatencyAccumulator`] — human intervention rate
//!   and response latency (Table VI).
//!
//! The CTR and HIR accumulators can `publish` their readings as gauges into
//! an `intellitag-obs` [`MetricsRegistry`](intellitag_obs::MetricsRegistry)
//! for scraping alongside the serving-side metrics.

#![warn(missing_docs)]

mod classification;
mod online;
mod ranking;

pub use classification::{PrfAccumulator, PrfReport};
pub use online::{CtrAccumulator, HirAccumulator, LatencyAccumulator};
pub use ranking::{
    hit_at, ndcg_at, rank_of_positive, reciprocal_rank, sample_negatives, RankingAccumulator,
    RankingReport,
};
