//! Ranking metrics for the TagRec offline evaluation (paper §VI-A2):
//! MRR, NDCG@K and HR@K under the 49-negative sampled ranking protocol.

use rand::seq::SliceRandom;
use rand::Rng;

/// Rank (1-based) of the positive item given its score and the negatives'
/// scores. Ties count against the positive (pessimistic, deterministic).
pub fn rank_of_positive(positive_score: f32, negative_scores: &[f32]) -> usize {
    1 + negative_scores.iter().filter(|&&s| s >= positive_score).count()
}

/// Reciprocal rank for a 1-based rank.
pub fn reciprocal_rank(rank: usize) -> f64 {
    assert!(rank >= 1, "ranks are 1-based");
    1.0 / rank as f64
}

/// Hit ratio at `k`: 1 if the positive ranked within the top `k`.
pub fn hit_at(rank: usize, k: usize) -> f64 {
    if rank <= k {
        1.0
    } else {
        0.0
    }
}

/// NDCG at `k` with a single relevant item: `1 / log2(rank + 1)` when the
/// positive is within the top `k`, else 0. (With one positive the ideal DCG
/// is 1, so DCG is already normalized.)
pub fn ndcg_at(rank: usize, k: usize) -> f64 {
    if rank <= k {
        1.0 / ((rank as f64) + 1.0).log2()
    } else {
        0.0
    }
}

/// Accumulates per-query ranks and reports the paper's Table IV metric row:
/// MRR, NDCG@{1,5,10}, HR@{5,10}.
#[derive(Debug, Default, Clone)]
pub struct RankingAccumulator {
    ranks: Vec<usize>,
}

/// The metric row reported for each model in Tables IV and V.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankingReport {
    /// Mean reciprocal rank.
    pub mrr: f64,
    /// NDCG@1 (equals HR@1 with a single positive).
    pub ndcg1: f64,
    /// NDCG@5.
    pub ndcg5: f64,
    /// NDCG@10.
    pub ndcg10: f64,
    /// Hit ratio@5.
    pub hr5: f64,
    /// Hit ratio@10.
    pub hr10: f64,
    /// Number of evaluated queries.
    pub queries: usize,
}

impl RankingAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluation query by the positive's 1-based rank.
    pub fn push_rank(&mut self, rank: usize) {
        assert!(rank >= 1, "ranks are 1-based");
        self.ranks.push(rank);
    }

    /// Records one query from raw scores.
    pub fn push_scores(&mut self, positive_score: f32, negative_scores: &[f32]) {
        self.push_rank(rank_of_positive(positive_score, negative_scores));
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// Aggregates into the Table IV metric row.
    ///
    /// # Panics
    /// Panics when no queries were recorded.
    pub fn report(&self) -> RankingReport {
        assert!(!self.ranks.is_empty(), "no queries recorded");
        let n = self.ranks.len() as f64;
        let mut r = RankingReport {
            mrr: 0.0,
            ndcg1: 0.0,
            ndcg5: 0.0,
            ndcg10: 0.0,
            hr5: 0.0,
            hr10: 0.0,
            queries: self.ranks.len(),
        };
        for &rank in &self.ranks {
            r.mrr += reciprocal_rank(rank);
            r.ndcg1 += ndcg_at(rank, 1);
            r.ndcg5 += ndcg_at(rank, 5);
            r.ndcg10 += ndcg_at(rank, 10);
            r.hr5 += hit_at(rank, 5);
            r.hr10 += hit_at(rank, 10);
        }
        r.mrr /= n;
        r.ndcg1 /= n;
        r.ndcg5 /= n;
        r.ndcg10 /= n;
        r.hr5 /= n;
        r.hr10 /= n;
        r
    }
}

impl RankingReport {
    /// Formats the row exactly as Table IV prints it.
    pub fn table_row(&self, model: &str) -> String {
        format!(
            "{model:<16} {:.3}  {:.3}  {:.3}  {:.3}  {:.3}  {:.3}",
            self.mrr, self.ndcg1, self.ndcg5, self.ndcg10, self.hr5, self.hr10
        )
    }
}

/// Samples `n` negatives for the ranking protocol: candidates from the same
/// tenant, excluding the positive (paper: "49 tags from the same tenant").
/// Falls back to the global pool when the tenant has too few tags, keeping
/// the list exactly `n` long whenever the pools allow.
pub fn sample_negatives<R: Rng>(
    positive: usize,
    tenant_pool: &[usize],
    global_pool: &[usize],
    n: usize,
    rng: &mut R,
) -> Vec<usize> {
    let mut negs: Vec<usize> = tenant_pool.iter().copied().filter(|&t| t != positive).collect();
    negs.shuffle(rng);
    negs.truncate(n);
    if negs.len() < n {
        let mut extra: Vec<usize> =
            global_pool.iter().copied().filter(|&t| t != positive && !negs.contains(&t)).collect();
        extra.shuffle(rng);
        extra.truncate(n - negs.len());
        negs.extend(extra);
    }
    negs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rank_counts_ties_pessimistically() {
        assert_eq!(rank_of_positive(1.0, &[0.5, 0.2]), 1);
        assert_eq!(rank_of_positive(1.0, &[1.0, 0.2]), 2);
        assert_eq!(rank_of_positive(0.0, &[1.0, 2.0, 3.0]), 4);
    }

    #[test]
    fn metric_identities() {
        // rank 1: perfect on everything
        assert_eq!(reciprocal_rank(1), 1.0);
        assert_eq!(ndcg_at(1, 1), 1.0);
        assert_eq!(hit_at(1, 1), 1.0);
        // rank 3 misses @1, hits @5
        assert_eq!(ndcg_at(3, 1), 0.0);
        assert!((ndcg_at(3, 5) - 0.5).abs() < 1e-12); // 1/log2(4)
        assert_eq!(hit_at(3, 5), 1.0);
        assert_eq!(hit_at(11, 10), 0.0);
    }

    #[test]
    fn report_aggregates_means() {
        let mut acc = RankingAccumulator::new();
        acc.push_rank(1);
        acc.push_rank(11);
        let r = acc.report();
        assert!((r.mrr - (1.0 + 1.0 / 11.0) / 2.0).abs() < 1e-12);
        assert_eq!(r.hr10, 0.5);
        assert_eq!(r.ndcg1, 0.5);
        assert_eq!(r.queries, 2);
    }

    #[test]
    fn push_scores_matches_manual_rank() {
        let mut a = RankingAccumulator::new();
        a.push_scores(0.7, &[0.9, 0.5, 0.6]);
        assert_eq!(a.report().mrr, 0.5); // rank 2
    }

    #[test]
    fn negatives_exclude_positive_and_prefer_tenant() {
        let mut rng = StdRng::seed_from_u64(0);
        let tenant: Vec<usize> = (0..10).collect();
        let global: Vec<usize> = (0..100).collect();
        let negs = sample_negatives(3, &tenant, &global, 5, &mut rng);
        assert_eq!(negs.len(), 5);
        assert!(!negs.contains(&3));
        assert!(negs.iter().all(|&t| t < 10), "all fit in the tenant pool");
    }

    #[test]
    fn negatives_backfill_from_global_pool() {
        let mut rng = StdRng::seed_from_u64(1);
        let tenant = vec![1, 2];
        let global: Vec<usize> = (0..50).collect();
        let negs = sample_negatives(1, &tenant, &global, 10, &mut rng);
        assert_eq!(negs.len(), 10);
        assert!(!negs.contains(&1));
        // no duplicates
        let mut sorted = negs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10);
    }

    #[test]
    fn ndcg_decreases_with_rank() {
        let values: Vec<f64> = (1..=10).map(|r| ndcg_at(r, 10)).collect();
        for w in values.windows(2) {
            assert!(w[0] > w[1]);
        }
    }
}
