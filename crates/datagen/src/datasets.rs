//! Dataset views over the generated world: train/valid/test session splits,
//! next-click sequence examples (TagRec) and labeled sentences (tag mining).

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::world::{Session, World};

/// One next-click prediction example: given `context` (clicked tags so far),
/// predict `target` (the next click). Built exactly as BERT4Rec-style
/// evaluation does: every click after the first becomes a target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqExample {
    /// Tenant of the session (negatives are sampled from this tenant).
    pub tenant: usize,
    /// Clicked tags preceding the target, oldest first.
    pub context: Vec<usize>,
    /// The tag clicked next (ground truth).
    pub target: usize,
}

/// An 80/10/10 split of sessions (paper §VI-A1).
#[derive(Debug, Clone)]
pub struct SessionSplit {
    /// Training sessions.
    pub train: Vec<Session>,
    /// Validation sessions.
    pub valid: Vec<Session>,
    /// Test sessions.
    pub test: Vec<Session>,
}

/// Splits sessions 80/10/10 after a seeded shuffle.
pub fn split_sessions(sessions: &[Session], seed: u64) -> SessionSplit {
    let mut idx: Vec<usize> = (0..sessions.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n = sessions.len();
    let n_train = n * 8 / 10;
    let n_valid = n / 10;
    let take =
        |range: &[usize]| -> Vec<Session> { range.iter().map(|&i| sessions[i].clone()).collect() };
    SessionSplit {
        train: take(&idx[..n_train]),
        valid: take(&idx[n_train..n_train + n_valid]),
        test: take(&idx[n_train + n_valid..]),
    }
}

/// Expands sessions into next-click examples. Sessions with fewer than two
/// clicks yield nothing (no target exists).
pub fn sequence_examples(sessions: &[Session]) -> Vec<SeqExample> {
    let mut out = Vec::new();
    for s in sessions {
        for k in 1..s.clicks.len() {
            out.push(SeqExample {
                tenant: s.tenant,
                context: s.clicks[..k].to_vec(),
                target: s.clicks[k],
            });
        }
    }
    out
}

/// Token-level segmentation label (paper Fig. 2: "B" begins a tag, "M"
/// continues one, "O" is outside any tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegLabel {
    /// Outside any tag.
    O,
    /// Begins a tag span.
    B,
    /// Inside (middle/end of) a tag span.
    M,
}

impl SegLabel {
    /// Class index used by the model head (O=0, B=1, M=2).
    pub fn class(self) -> usize {
        match self {
            SegLabel::O => 0,
            SegLabel::B => 1,
            SegLabel::M => 2,
        }
    }

    /// Inverse of [`SegLabel::class`].
    pub fn from_class(c: usize) -> SegLabel {
        match c {
            1 => SegLabel::B,
            2 => SegLabel::M,
            _ => SegLabel::O,
        }
    }
}

/// One annotated RQ sentence for the multi-task tag miner.
#[derive(Debug, Clone)]
pub struct LabeledSentence {
    /// Tokens of the sentence.
    pub tokens: Vec<String>,
    /// Per-token segmentation labels.
    pub seg: Vec<SegLabel>,
    /// Per-token word-weight labels (1.0 when the word is part of a tag).
    pub weight: Vec<f32>,
    /// Gold spans as `(start, end)` token ranges (for span-level P/R/F1).
    pub gold_spans: Vec<(usize, usize)>,
}

/// Builds labeled sentences from every RQ in the world. Segmentation labels
/// come from the segmentation-pass annotation, word weights from the
/// (independently noisy) weighting-pass annotation; gold spans for
/// evaluation are the complete noise-free spans (clean test annotation).
pub fn labeled_sentences(world: &World) -> Vec<LabeledSentence> {
    world
        .rqs
        .iter()
        .map(|rq| {
            let mut seg = vec![SegLabel::O; rq.tokens.len()];
            let mut weight = vec![0.0f32; rq.tokens.len()];
            for s in &rq.spans {
                seg[s.start] = SegLabel::B;
                for slot in seg.iter_mut().take(s.end).skip(s.start + 1) {
                    *slot = SegLabel::M;
                }
            }
            let gold_spans: Vec<(usize, usize)> =
                rq.true_spans.iter().map(|s| (s.start, s.end)).collect();
            for s in &rq.weight_spans {
                for slot in weight.iter_mut().take(s.end).skip(s.start) {
                    *slot = 1.0;
                }
            }
            LabeledSentence { tokens: rq.tokens.clone(), seg, weight, gold_spans }
        })
        .collect()
}

/// Extracts `(start, end)` spans from a predicted segmentation sequence:
/// a span starts at `B` and extends through consecutive `M`s.
pub fn spans_from_seg(seg: &[SegLabel]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < seg.len() {
        if seg[i] == SegLabel::B {
            let start = i;
            i += 1;
            while i < seg.len() && seg[i] == SegLabel::M {
                i += 1;
            }
            out.push((start, i));
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;

    fn world() -> World {
        World::generate(WorldConfig::tiny(11))
    }

    #[test]
    fn split_proportions_and_disjointness() {
        let w = world();
        let s = split_sessions(&w.sessions, 0);
        let total = s.train.len() + s.valid.len() + s.test.len();
        assert_eq!(total, w.sessions.len());
        assert!(s.train.len() >= w.sessions.len() * 7 / 10);
        assert!(!s.valid.is_empty() && !s.test.is_empty());
    }

    #[test]
    fn split_is_deterministic() {
        let w = world();
        let a = split_sessions(&w.sessions, 5);
        let b = split_sessions(&w.sessions, 5);
        assert_eq!(a.train.len(), b.train.len());
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.clicks, y.clicks);
        }
    }

    #[test]
    fn sequence_examples_cover_all_targets() {
        let w = world();
        let ex = sequence_examples(&w.sessions);
        let expected: usize = w.sessions.iter().map(|s| s.clicks.len().saturating_sub(1)).sum();
        assert_eq!(ex.len(), expected);
        for e in &ex {
            assert!(!e.context.is_empty());
        }
    }

    #[test]
    fn seg_labels_encode_spans() {
        let w = world();
        for ls in labeled_sentences(&w) {
            assert_eq!(ls.tokens.len(), ls.seg.len());
            assert_eq!(ls.tokens.len(), ls.weight.len());
            // Spans decoded from the (noisy) seg annotation are a subset of
            // the clean gold spans: noise only *drops* annotations.
            let extracted = spans_from_seg(&ls.seg);
            for sp in &extracted {
                assert!(ls.gold_spans.contains(sp), "{sp:?} not in gold");
            }
            // Weights and seg labels come from independently-noisy passes,
            // so weights may disagree with gold spans — but a weight of 1
            // must always sit inside a *true* tag occurrence, and every
            // weight is binary.
            for &wgt in &ls.weight {
                assert!(wgt == 0.0 || wgt == 1.0);
            }
        }
    }

    #[test]
    fn spans_from_seg_handles_edge_cases() {
        use SegLabel::{B, M, O};
        assert_eq!(spans_from_seg(&[]), vec![]);
        assert_eq!(spans_from_seg(&[O, O]), vec![]);
        assert_eq!(spans_from_seg(&[B]), vec![(0, 1)]);
        assert_eq!(spans_from_seg(&[B, M, M]), vec![(0, 3)]);
        assert_eq!(spans_from_seg(&[B, B]), vec![(0, 1), (1, 2)]);
        // Orphan M (no preceding B) is ignored, matching the decoder.
        assert_eq!(spans_from_seg(&[M, B, M, O, B]), vec![(1, 3), (4, 5)]);
    }

    #[test]
    fn seg_class_roundtrip() {
        for l in [SegLabel::O, SegLabel::B, SegLabel::M] {
            assert_eq!(SegLabel::from_class(l.class()), l);
        }
    }
}
