//! # intellitag-datagen
//!
//! The synthetic cloud customer-service world that substitutes the paper's
//! proprietary Ant Group dataset (see DESIGN.md §2 for the substitution
//! argument). One seed deterministically produces:
//!
//! * a tenant population with Zipf sizes and small topical footprints,
//! * a tag pool with head/long-tail popularity per topic,
//! * RQ sentences with gold tag spans and word weights (tag-mining labels),
//! * click sessions driven by latent intents (`clk`/`cst` edge sources),
//! * a [`UserModel`] replaying the same intent population for online
//!   CTR/HIR simulations.
//!
//! Convenience constructors bridge to the other substrates:
//! [`World::build_graph`] (heterogeneous graph) and [`World::build_kb`]
//! (searchable KB warehouse).

#![warn(missing_docs)]

mod config;
mod datasets;
mod topics;
mod user;
mod world;

pub use config::WorldConfig;
pub use datasets::{
    labeled_sentences, sequence_examples, spans_from_seg, split_sessions, LabeledSentence,
    SegLabel, SeqExample, SessionSplit,
};
pub use topics::{build_topics, Topic, FILLERS, TEMPLATES};
pub use user::UserModel;
pub use world::{GoldSpan, Rq, Session, Tag, TenantInfo, World};
