//! The simulated user for online experiments (Fig. 7 CTR, Table VI HIR).
//!
//! The deployed system measured CTR/HIR on live traffic; offline we replay
//! the same latent-intent population the session generator uses. The click
//! model is a standard cascade model: the user scans the recommended tag
//! list top-down and clicks the first tag that passes a relevance-and-
//! position-biased coin flip.

use rand::Rng;

use crate::world::World;

/// Relevance-driven cascade click model.
#[derive(Debug, Clone, Copy)]
pub struct UserModel {
    /// Click attractiveness of a tag belonging to the intent RQ.
    pub p_intent: f64,
    /// Attractiveness of a same-topic (but non-intent) tag.
    pub p_topic: f64,
    /// Attractiveness of an unrelated tag.
    pub p_other: f64,
    /// Whether position bias (`1/log2(pos+2)`) applies.
    pub position_bias: bool,
}

impl Default for UserModel {
    fn default() -> Self {
        UserModel { p_intent: 0.70, p_topic: 0.25, p_other: 0.04, position_bias: true }
    }
}

impl UserModel {
    /// Base attractiveness of `tag` for a user whose intent is `intent_rq`.
    pub fn attractiveness(&self, world: &World, intent_rq: usize, tag: usize) -> f64 {
        let intent = &world.rqs[intent_rq];
        if intent.tags.contains(&tag) {
            self.p_intent
        } else if world.tags[tag].topic == intent.topic {
            self.p_topic
        } else {
            self.p_other
        }
    }

    /// Simulates one scan over `shown` tags. Returns the index of the
    /// clicked tag, or `None` if the user clicks nothing. Tags in
    /// `already_clicked` are skipped (users do not re-click).
    pub fn click<R: Rng>(
        &self,
        world: &World,
        intent_rq: usize,
        shown: &[usize],
        already_clicked: &[usize],
        rng: &mut R,
    ) -> Option<usize> {
        for (pos, &tag) in shown.iter().enumerate() {
            if already_clicked.contains(&tag) {
                continue;
            }
            let mut p = self.attractiveness(world, intent_rq, tag);
            if self.position_bias {
                p /= ((pos + 2) as f64).log2();
            }
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                return Some(pos);
            }
        }
        None
    }

    /// Whether the user accepts a predicted-question list: true when the
    /// intent RQ appears in the top `k` of `predicted` (the user clicks it
    /// and reads the answer — session solved).
    pub fn accepts(&self, intent_rq: usize, predicted: &[usize], k: usize) -> bool {
        predicted.iter().take(k).any(|&q| q == intent_rq)
    }

    /// Like [`UserModel::accepts`], but an RQ that is a same-tenant
    /// paraphrase of the intent (identical tag set) also solves the session
    /// — it carries the same answer. The synthetic KB contains many such
    /// paraphrases, as real per-tenant KBs do.
    pub fn accepts_equivalent(
        &self,
        world: &World,
        intent_rq: usize,
        predicted: &[usize],
        k: usize,
    ) -> bool {
        let intent = &world.rqs[intent_rq];
        predicted.iter().take(k).any(|&q| {
            q == intent_rq
                || (world.rqs[q].tenant == intent.tenant && world.rqs[q].tags == intent.tags)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> World {
        World::generate(WorldConfig::tiny(3))
    }

    #[test]
    fn intent_tags_are_most_attractive() {
        let w = world();
        let u = UserModel::default();
        let rq = w.rqs.iter().position(|r| !r.tags.is_empty()).expect("an RQ with tags");
        let intent_tag = w.rqs[rq].tags[0];
        let other_topic_tag =
            (0..w.tags.len()).find(|&t| w.tags[t].topic != w.rqs[rq].topic).expect("another topic");
        assert!(u.attractiveness(&w, rq, intent_tag) > u.attractiveness(&w, rq, other_topic_tag));
    }

    #[test]
    fn click_prefers_relevant_tags_in_aggregate() {
        let w = world();
        let u = UserModel::default();
        let mut rng = StdRng::seed_from_u64(0);
        let rq = w.rqs.iter().position(|r| !r.tags.is_empty()).unwrap();
        let intent_tag = w.rqs[rq].tags[0];
        let junk = (0..w.tags.len()).find(|&t| w.tags[t].topic != w.rqs[rq].topic).unwrap();
        // Relevant tag at the bottom, junk on top: the user should still
        // click the relevant one far more often.
        let shown = vec![junk, junk, intent_tag];
        let mut relevant_clicks = 0;
        let mut junk_clicks = 0;
        for _ in 0..500 {
            match u.click(&w, rq, &shown, &[], &mut rng) {
                Some(2) => relevant_clicks += 1,
                Some(_) => junk_clicks += 1,
                None => {}
            }
        }
        assert!(relevant_clicks > junk_clicks * 2, "{relevant_clicks} vs {junk_clicks}");
    }

    #[test]
    fn already_clicked_tags_are_skipped() {
        let w = world();
        let u = UserModel { p_intent: 1.0, p_topic: 1.0, p_other: 1.0, position_bias: false };
        let mut rng = StdRng::seed_from_u64(1);
        let rq = 0;
        let shown = vec![5, 6];
        let pos = u.click(&w, rq, &shown, &[5], &mut rng);
        assert_eq!(pos, Some(1), "first tag already clicked, second must win");
    }

    #[test]
    fn accepts_equivalent_matches_paraphrases() {
        let w = world();
        let u = UserModel::default();
        // Find two same-tenant RQs with identical tag sets (the generator
        // produces many paraphrases).
        let mut pair = None;
        'outer: for a in 0..w.rqs.len() {
            for b in a + 1..w.rqs.len() {
                if w.rqs[a].tenant == w.rqs[b].tenant
                    && !w.rqs[a].tags.is_empty()
                    && w.rqs[a].tags == w.rqs[b].tags
                {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        let (a, b) = pair.expect("paraphrase pair exists in the tiny world");
        assert!(u.accepts_equivalent(&w, a, &[b], 1));
        assert!(!u.accepts(a, &[b], 1), "exact acceptance must not fire");
    }

    #[test]
    fn accepts_checks_topk_membership() {
        let u = UserModel::default();
        assert!(u.accepts(7, &[3, 7, 9], 3));
        assert!(!u.accepts(7, &[3, 9, 7], 2));
        assert!(!u.accepts(7, &[], 3));
    }
}
