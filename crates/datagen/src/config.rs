//! World-generation configuration with presets at several scales.

use serde::{Deserialize, Serialize};

/// Parameters of the synthetic customer-service world.
///
/// The paper's dataset (Table II) has 38,344 tags / 656,720 RQs / 446 tenants
/// / 98,875 sessions with 2.9 average clicks; presets keep these *ratios*
/// while scaling the absolute size to what a CPU-only test or bench run can
/// train on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master RNG seed; everything downstream is deterministic given this.
    pub seed: u64,
    /// Number of service-domain topics.
    pub num_topics: usize,
    /// Number of tenants (SMEs).
    pub num_tenants: usize,
    /// Number of representative questions to generate.
    pub num_rqs: usize,
    /// Number of user sessions to simulate.
    pub num_sessions: usize,
    /// Topics per tenant (tenants are topical; small tenants have 1-2).
    pub topics_per_tenant: (usize, usize),
    /// Geometric-stop continuation probability for session clicks; the mean
    /// session length is `1 + p/(1-p)` plus intent-exhaustion effects. The
    /// default targets the paper's 2.9 average clicks.
    pub click_continue_prob: f64,
    /// Zipf exponent for tenant sizes (larger = heavier head).
    pub tenant_zipf: f64,
    /// Zipf exponent for within-topic tag popularity (smaller spreads
    /// clicks over more of the long tail).
    pub tag_zipf: f64,
    /// Target number of tags as a fraction `num_rqs / tags_per_rq_ratio`
    /// (the paper's corpus has ~17 RQs per tag; sparser evaluation worlds
    /// use a lower ratio so each tag gets less click evidence).
    pub rqs_per_tag: usize,
    /// Probability that a session consults two questions (creating a `cst`
    /// edge between their RQs).
    pub second_question_prob: f64,
    /// Probability that a generated RQ sentence omits one gold span from its
    /// labels (annotation noise for the mining task).
    pub label_noise: f64,
}

impl WorldConfig {
    /// Minimal world for unit tests (fast, still structurally complete).
    pub fn tiny(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_topics: 4,
            num_tenants: 8,
            num_rqs: 200,
            num_sessions: 300,
            topics_per_tenant: (1, 2),
            click_continue_prob: 0.74,
            tenant_zipf: 1.1,
            tag_zipf: 1.05,
            rqs_per_tag: 17,
            second_question_prob: 0.5,
            label_noise: 0.05,
        }
    }

    /// Small world for integration tests and quick experiments.
    pub fn small(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_topics: 10,
            num_tenants: 30,
            num_rqs: 2_000,
            num_sessions: 3_000,
            topics_per_tenant: (1, 3),
            click_continue_prob: 0.74,
            tenant_zipf: 1.1,
            tag_zipf: 1.05,
            rqs_per_tag: 17,
            second_question_prob: 0.5,
            label_noise: 0.05,
        }
    }

    /// Bench-scale world: large enough for the model ordering of Table IV to
    /// be stable, small enough to train all six models on a CPU.
    pub fn bench(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_topics: 16,
            num_tenants: 60,
            num_rqs: 6_000,
            num_sessions: 8_000,
            topics_per_tenant: (1, 3),
            click_continue_prob: 0.74,
            tenant_zipf: 1.1,
            tag_zipf: 1.05,
            rqs_per_tag: 17,
            second_question_prob: 0.5,
            label_noise: 0.05,
        }
    }

    /// Sparse evaluation world: the regime the paper's TagRec comparison
    /// lives in — many long-tail tags, limited session evidence per tag, so
    /// heterogeneous-graph side information matters. Used by the Table IV/V
    /// and Fig. 6/7 benches.
    pub fn sparse_eval(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_topics: 12,
            num_tenants: 40,
            num_rqs: 2_500,
            num_sessions: 2_500,
            topics_per_tenant: (1, 3),
            click_continue_prob: 0.74,
            tenant_zipf: 1.1,
            tag_zipf: 0.8,
            rqs_per_tag: 7,
            second_question_prob: 0.5,
            label_noise: 0.05,
        }
    }

    /// Paper-scaled world reproducing Table II's absolute counts
    /// (~656k RQs, 446 tenants, ~99k sessions). Generation is fast; training
    /// on it is not — use for the dataset-statistics comparison only.
    pub fn paper_scaled(seed: u64) -> Self {
        WorldConfig {
            seed,
            num_topics: 120,
            num_tenants: 446,
            num_rqs: 656_720,
            num_sessions: 98_875,
            topics_per_tenant: (1, 4),
            click_continue_prob: 0.74,
            tenant_zipf: 1.1,
            tag_zipf: 1.05,
            rqs_per_tag: 17,
            second_question_prob: 0.5,
            label_noise: 0.05,
        }
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_topics == 0 || self.num_tenants == 0 || self.num_rqs == 0 {
            return Err("topics, tenants and rqs must be positive".into());
        }
        if self.topics_per_tenant.0 == 0 || self.topics_per_tenant.0 > self.topics_per_tenant.1 {
            return Err("topics_per_tenant must be a nonempty (min, max) range".into());
        }
        if self.topics_per_tenant.1 > self.num_topics {
            return Err("topics_per_tenant.max exceeds num_topics".into());
        }
        if self.rqs_per_tag == 0 {
            return Err("rqs_per_tag must be positive".into());
        }
        if !(0.0..1.0).contains(&self.click_continue_prob) {
            return Err("click_continue_prob must be in [0, 1)".into());
        }
        if !(0.0..=1.0).contains(&self.second_question_prob)
            || !(0.0..=1.0).contains(&self.label_noise)
        {
            return Err("probabilities must be in [0, 1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            WorldConfig::tiny(0),
            WorldConfig::small(0),
            WorldConfig::bench(0),
            WorldConfig::sparse_eval(0),
            WorldConfig::paper_scaled(0),
        ] {
            cfg.validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut c = WorldConfig::tiny(0);
        c.num_topics = 0;
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny(0);
        c.topics_per_tenant = (3, 2);
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny(0);
        c.topics_per_tenant = (1, 99);
        assert!(c.validate().is_err());

        let mut c = WorldConfig::tiny(0);
        c.click_continue_prob = 1.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn paper_scaled_matches_table2_counts() {
        let c = WorldConfig::paper_scaled(0);
        assert_eq!(c.num_tenants, 446);
        assert_eq!(c.num_rqs, 656_720);
        assert_eq!(c.num_sessions, 98_875);
    }

    #[test]
    fn serde_roundtrip() {
        let c = WorldConfig::small(7);
        let json = serde_json::to_string(&c).unwrap();
        let back: WorldConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.seed, 7);
        assert_eq!(back.num_rqs, c.num_rqs);
    }
}
