//! Topic word banks for the synthetic customer-service world.
//!
//! Each topic models one service domain an SME tenant might operate in
//! (banking, e-commerce, telecom, ...). A topic contributes *action* words,
//! *object* phrases and a few multi-word noun phrases; tags are composed from
//! these, mirroring Table I of the paper ("change password", "apply for ETC
//! card", "initial VPN password", ...). When a configuration requests more
//! topics than the curated bank provides, words are suffixed with a topic
//! ordinal so vocabularies stay disjoint.

/// A topic's word bank.
#[derive(Debug, Clone)]
pub struct Topic {
    /// Human-readable domain name.
    pub name: String,
    /// Single-word verbs users perform ("change", "cancel").
    pub actions: Vec<String>,
    /// Single- or multi-word objects acted upon ("password", "etc card").
    pub objects: Vec<String>,
}

const BANK: &[(&str, &[&str], &[&str])] = &[
    (
        "account-security",
        &["change", "reset", "recover", "unlock"],
        &["password", "account", "security code", "login"],
    ),
    (
        "highway-etc",
        &["apply for", "activate", "return", "recharge"],
        &["etc card", "toll account", "device", "deposit"],
    ),
    (
        "ecommerce-orders",
        &["cancel", "track", "modify", "return"],
        &["order", "package", "delivery address", "item"],
    ),
    (
        "device-charging",
        &["charge", "connect", "pair", "reboot"],
        &["phones", "charger", "power bank", "cable"],
    ),
    (
        "corporate-vpn",
        &["configure", "renew", "install", "reset"],
        &["initial vpn password", "vpn client", "certificate", "proxy"],
    ),
    (
        "banking-cards",
        &["open", "freeze", "report", "upgrade"],
        &["credit card", "debit card", "quota", "statement"],
    ),
    (
        "bluetooth-devices",
        &["open", "activate", "disconnect", "update"],
        &["bluetooth", "headset", "firmware", "speaker"],
    ),
    (
        "payments",
        &["pay", "refund", "dispute", "split"],
        &["bill", "fee", "invoice", "transaction"],
    ),
    (
        "logistics",
        &["ship", "expedite", "redirect", "collect"],
        &["parcel", "freight", "pickup point", "customs form"],
    ),
    (
        "membership",
        &["join", "renew", "cancel", "downgrade"],
        &["membership", "subscription", "loyalty points", "coupon"],
    ),
    (
        "telecom",
        &["port", "suspend", "top up", "unblock"],
        &["sim card", "data plan", "roaming", "voicemail"],
    ),
    (
        "insurance",
        &["file", "renew", "cancel", "transfer"],
        &["claim", "policy", "premium", "beneficiary"],
    ),
    (
        "travel",
        &["book", "reschedule", "cancel", "upgrade"],
        &["flight ticket", "hotel room", "itinerary", "seat"],
    ),
    (
        "utilities",
        &["register", "transfer", "read", "dispute"],
        &["electricity meter", "water bill", "gas account", "tariff"],
    ),
    (
        "education",
        &["enroll", "defer", "withdraw", "certify"],
        &["course", "exam", "transcript", "scholarship"],
    ),
    (
        "healthcare",
        &["schedule", "cancel", "renew", "request"],
        &["appointment", "prescription", "referral", "lab report"],
    ),
    (
        "tax",
        &["declare", "amend", "defer", "appeal"],
        &["tax return", "deduction", "receipt", "assessment"],
    ),
    (
        "property",
        &["lease", "terminate", "inspect", "sublet"],
        &["apartment", "contract", "deposit slip", "utility meter"],
    ),
    (
        "gaming",
        &["redeem", "recover", "merge", "report"],
        &["game account", "gift code", "ban appeal", "character"],
    ),
    (
        "streaming",
        &["stream", "download", "share", "restrict"],
        &["playlist", "profile", "watch history", "device limit"],
    ),
    (
        "food-delivery",
        &["order", "tip", "rate", "reorder"],
        &["meal", "rider", "voucher", "group order"],
    ),
    (
        "ride-hailing",
        &["hail", "schedule", "report", "estimate"],
        &["ride", "driver", "fare", "lost item"],
    ),
    (
        "cloud-hosting",
        &["deploy", "scale", "backup", "migrate"],
        &["instance", "snapshot", "load balancer", "billing alert"],
    ),
    (
        "hr-payroll",
        &["submit", "approve", "correct", "export"],
        &["timesheet", "payslip", "leave request", "expense claim"],
    ),
];

/// Builds `n` topics, cycling through the curated bank and suffixing words
/// when a bank entry is reused so topic vocabularies never collide.
pub fn build_topics(n: usize) -> Vec<Topic> {
    (0..n)
        .map(|i| {
            let (name, actions, objects) = BANK[i % BANK.len()];
            let round = i / BANK.len();
            let suffix = |w: &str| {
                if round == 0 {
                    w.to_string()
                } else {
                    // Suffix every word of the phrase to keep them unique.
                    w.split_whitespace()
                        .map(|p| format!("{p}{round}"))
                        .collect::<Vec<_>>()
                        .join(" ")
                }
            };
            Topic {
                name: if round == 0 { name.to_string() } else { format!("{name}-{round}") },
                actions: actions.iter().map(|w| suffix(w)).collect(),
                objects: objects.iter().map(|w| suffix(w)).collect(),
            }
        })
        .collect()
}

/// Filler words for question templates; deliberately *not* tag material.
pub const FILLERS: &[&str] = &[
    "please", "today", "quickly", "now", "really", "kindly", "again", "still", "maybe", "actually",
];

/// Question templates. `{A}` is replaced by an action tag, `{O}` by an object
/// tag, `{F}` by a filler word, and `{D}` by a *distractor* — a topic word
/// used in a non-tag position (it gets no span label and zero word weight).
/// Distractors make segmentation context-dependent, as in the paper's real
/// data where a word is a tag in one question and plain prose in another.
/// Every template contains at least one tag slot.
pub const TEMPLATES: &[&str] = &[
    "how to {A} {O}",
    "how can i {A} the {O}",
    "where to {A} my {O}",
    "i want to {A} a {O} {F}",
    "can you help me {A} the {O}",
    "what is the {O}",
    "why can not i {A} my {O}",
    "is it possible to {A} the {O} {F}",
    "{F} tell me how to {A} {O}",
    "need to {A} {O} {F}",
    "speaking of {D} how to {A} {O}",
    "not about {D} i need the {O}",
    "after i {D} what is the {O}",
    "my friend said {D} {F} but how to {A} {O}",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn curated_bank_is_used_verbatim_first() {
        let t = build_topics(3);
        assert_eq!(t[0].name, "account-security");
        assert!(t[0].actions.contains(&"change".to_string()));
        assert!(t[0].objects.contains(&"password".to_string()));
    }

    #[test]
    fn overflow_topics_get_suffixed_vocabulary() {
        // Within the curated bank, generic verbs ("cancel", "renew") may be
        // shared across domains — that is realistic. What must hold is that a
        // *reused* bank entry (round >= 1) gets a disjoint vocabulary from
        // its round-0 original.
        let n = BANK.len() + 2;
        let topics = build_topics(n);
        let round0: HashSet<&String> =
            topics[..BANK.len()].iter().flat_map(|t| t.actions.iter().chain(&t.objects)).collect();
        for t in &topics[BANK.len()..] {
            for w in t.actions.iter().chain(&t.objects) {
                assert!(!round0.contains(w), "overflow word {w} collides with round 0");
            }
        }
        assert!(topics[BANK.len()].name.ends_with("-1"));
    }

    #[test]
    fn every_template_has_a_tag_slot() {
        for t in TEMPLATES {
            assert!(t.contains("{A}") || t.contains("{O}"), "template without tag slot: {t}");
        }
    }

    #[test]
    fn fillers_do_not_overlap_topic_words() {
        let topics = build_topics(BANK.len());
        for t in &topics {
            for w in t.actions.iter().chain(&t.objects) {
                for part in w.split_whitespace() {
                    assert!(!FILLERS.contains(&part), "filler collides with tag word {part}");
                }
            }
        }
    }
}
