//! The synthetic customer-service world.
//!
//! Substitutes the paper's proprietary Ant Group dataset. The generator
//! produces, under one seed:
//!
//! * **tenants** with Zipf-distributed sizes and small topical footprints
//!   (most SMEs are small and specialized — the cold-start population the
//!   paper cares about),
//! * **tags** per topic with Zipf popularity (head tags + a long tail of
//!   rare variants),
//! * **RQ sentences** from question templates with gold tag spans and word
//!   weights (the supervision the paper obtained by manual annotation),
//! * **sessions** of tag clicks driven by a latent intent RQ, plus
//!   consulted-question pairs (the source of `clk` and `cst` edges).

use rand::distributions::WeightedIndex;
use rand::prelude::*;
use rand::rngs::StdRng;

use intellitag_graph::{HetGraph, HetGraphBuilder};
use intellitag_search::KbWarehouse;

use crate::config::WorldConfig;
use crate::topics::{build_topics, Topic, FILLERS, TEMPLATES};

/// Extra single-word modifiers used to synthesize long-tail tag variants
/// when a topic needs more tags than its curated bank provides.
const MODIFIERS: &[&str] = &[
    "new",
    "old",
    "premium",
    "basic",
    "digital",
    "mobile",
    "online",
    "offline",
    "shared",
    "family",
    "business",
    "personal",
    "temporary",
    "annual",
    "monthly",
    "expired",
    "joint",
    "virtual",
    "physical",
    "backup",
    "primary",
    "secondary",
    "regional",
    "global",
    "trial",
    "legacy",
    "standard",
    "extended",
    "partial",
    "instant",
    "manual",
    "automatic",
    "priority",
    "internal",
    "external",
    "public",
    "private",
    "frozen",
    "active",
    "archived",
];

/// A mined/minable tag: an ordered list of words plus its topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tag {
    /// The words composing the tag (1..=3).
    pub words: Vec<String>,
    /// Topic the tag belongs to.
    pub topic: usize,
    /// Whether the tag is *representative* (paper §III: tags must be
    /// "complete, representative and question-related"). Long-tail variants
    /// are phrase-shaped but not representative: the word-weighting task is
    /// what separates them from real tags.
    pub representative: bool,
}

impl Tag {
    /// Space-joined surface form.
    pub fn text(&self) -> String {
        self.words.join(" ")
    }
}

/// A gold tag span inside an RQ sentence: token range `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldSpan {
    /// First token index.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
    /// The tag occupying the span.
    pub tag: usize,
}

/// A representative question with its gold structure.
#[derive(Debug, Clone)]
pub struct Rq {
    /// Owning tenant.
    pub tenant: usize,
    /// Topic the question is about.
    pub topic: usize,
    /// Tokenized sentence.
    pub tokens: Vec<String>,
    /// Ground-truth tags present (drives the `asc` relation and evaluation).
    pub tags: Vec<usize>,
    /// Segmentation annotations. May miss tags relative to [`Rq::tags`]:
    /// label noise models an annotator skipping a span in the segmentation
    /// pass. These are also the evaluation gold spans, as in the paper
    /// (models are scored against the human annotation, noise included).
    pub spans: Vec<GoldSpan>,
    /// Word-weight annotations, with *independent* noise — the paper labels
    /// segmentation and weighting as two separate passes, so their mistakes
    /// are uncorrelated (this is what multi-task learning exploits).
    pub weight_spans: Vec<GoldSpan>,
    /// The complete, noise-free spans (evaluation ground truth; the paper's
    /// test annotation is assumed clean relative to the training labels).
    pub true_spans: Vec<GoldSpan>,
    /// Canonical answer text.
    pub answer: String,
}

impl Rq {
    /// The question's surface text.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }
}

/// One user consultation session.
#[derive(Debug, Clone)]
pub struct Session {
    /// Tenant whose interface the user is on.
    pub tenant: usize,
    /// Latent intent: the RQ the user ultimately needs.
    pub intent_rq: usize,
    /// Clicked tags, in order.
    pub clicks: Vec<usize>,
    /// Questions consulted in order (creates `cst` edges between retrieved
    /// RQs when two or more were asked).
    pub consulted: Vec<usize>,
}

/// Per-tenant generation info.
#[derive(Debug, Clone)]
pub struct TenantInfo {
    /// Topics this tenant operates in.
    pub topics: Vec<usize>,
    /// Relative traffic/corpus share (Zipf).
    pub weight: f64,
}

/// The fully generated world.
#[derive(Debug)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// Topic word banks.
    pub topics: Vec<Topic>,
    /// All tags, global ids.
    pub tags: Vec<Tag>,
    /// Tag ids per topic, Zipf-ordered (index 0 most popular).
    pub tags_by_topic: Vec<Vec<usize>>,
    /// Tenants.
    pub tenants: Vec<TenantInfo>,
    /// RQs, global ids.
    pub rqs: Vec<Rq>,
    /// Sessions.
    pub sessions: Vec<Session>,
    /// RQ ids per tenant.
    pub rqs_by_tenant: Vec<Vec<usize>>,
}

impl World {
    /// Generates a world from a configuration. Deterministic in
    /// `config.seed`.
    ///
    /// # Panics
    /// Panics when the configuration fails [`WorldConfig::validate`].
    pub fn generate(config: WorldConfig) -> World {
        config.validate().expect("invalid WorldConfig");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let topics = build_topics(config.num_topics);

        // --- tags ---------------------------------------------------------
        let mut tags = Vec::new();
        let mut tags_by_topic = vec![Vec::new(); topics.len()];
        // Aim for the configured tag:RQ ratio (paper: ~1:17) with a floor
        // of the curated bank size.
        let target_total = (config.num_rqs / config.rqs_per_tag).max(topics.len() * 8);
        let per_topic = (target_total / topics.len()).max(8);
        for (ti, topic) in topics.iter().enumerate() {
            let mut topic_tags: Vec<Tag> = Vec::new();
            for a in &topic.actions {
                topic_tags.push(Tag { words: split_words(a), topic: ti, representative: true });
            }
            for o in &topic.objects {
                topic_tags.push(Tag { words: split_words(o), topic: ti, representative: true });
            }
            // Long-tail variants: modifier + object, then modifier + action.
            let mut mi = 0;
            while topic_tags.len() < per_topic {
                let modifier = MODIFIERS[mi % MODIFIERS.len()];
                let round = mi / MODIFIERS.len();
                let base = if round.is_multiple_of(2) {
                    &topic.objects[(mi / 2) % topic.objects.len()]
                } else {
                    &topic.actions[(mi / 2) % topic.actions.len()]
                };
                let mut words = vec![modifier.to_string()];
                words.extend(split_words(base));
                if round >= 2 {
                    // Deep tail: disambiguate with an ordinal word.
                    words.push(format!("v{round}"));
                }
                topic_tags.push(Tag { words, topic: ti, representative: false });
                mi += 1;
            }
            for t in topic_tags {
                tags_by_topic[ti].push(tags.len());
                tags.push(t);
            }
        }

        // --- tenants ------------------------------------------------------
        let mut tenants = Vec::with_capacity(config.num_tenants);
        for i in 0..config.num_tenants {
            let k = rng.gen_range(config.topics_per_tenant.0..=config.topics_per_tenant.1);
            let mut ts: Vec<usize> = (0..topics.len()).collect();
            ts.shuffle(&mut rng);
            ts.truncate(k);
            let weight = 1.0 / ((i + 1) as f64).powf(config.tenant_zipf);
            tenants.push(TenantInfo { topics: ts, weight });
        }
        let tenant_dist =
            WeightedIndex::new(tenants.iter().map(|t| t.weight)).expect("tenant weights");

        // --- RQs ------------------------------------------------------------
        // Zipf popularity over a topic's tags: head tags appear in many RQs.
        let tag_zipf: Vec<WeightedIndex<f64>> = tags_by_topic
            .iter()
            .map(|ids| {
                WeightedIndex::new(
                    (0..ids.len()).map(|r| 1.0 / ((r + 1) as f64).powf(config.tag_zipf)),
                )
                .expect("tag weights")
            })
            .collect();

        let mut rqs: Vec<Rq> = Vec::with_capacity(config.num_rqs);
        let mut rqs_by_tenant = vec![Vec::new(); config.num_tenants];
        while rqs.len() < config.num_rqs {
            let tenant = tenant_dist.sample(&mut rng);
            let topic = *tenants[tenant].topics.choose(&mut rng).expect("tenant topics");
            let rq = generate_rq(
                tenant,
                topic,
                &topics[topic],
                &tags,
                &tags_by_topic[topic],
                &tag_zipf[topic],
                config.label_noise,
                &mut rng,
            );
            rqs_by_tenant[tenant].push(rqs.len());
            rqs.push(rq);
        }

        // --- sessions -------------------------------------------------------
        let mut sessions = Vec::with_capacity(config.num_sessions);
        for _ in 0..config.num_sessions {
            // Re-draw until we land on a tenant that owns at least one RQ.
            let tenant = loop {
                let t = tenant_dist.sample(&mut rng);
                if !rqs_by_tenant[t].is_empty() {
                    break t;
                }
            };
            let intent_rq = *rqs_by_tenant[tenant].choose(&mut rng).expect("tenant rqs");
            let session = generate_session(
                tenant,
                intent_rq,
                &rqs,
                &rqs_by_tenant[tenant],
                &tags,
                &tags_by_topic,
                &tag_zipf,
                config.click_continue_prob,
                config.second_question_prob,
                &mut rng,
            );
            sessions.push(session);
        }

        World { config, topics, tags, tags_by_topic, tenants, rqs, sessions, rqs_by_tenant }
    }

    /// Mean clicks per session.
    pub fn avg_clicks(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        self.sessions.iter().map(|s| s.clicks.len()).sum::<usize>() as f64
            / self.sessions.len() as f64
    }

    /// Total click events.
    pub fn total_clicks(&self) -> usize {
        self.sessions.iter().map(|s| s.clicks.len()).sum()
    }

    /// Builds the TagRec heterogeneous graph from ground-truth associations
    /// and the session logs (paper §IV-A).
    pub fn build_graph(&self) -> HetGraph {
        let mut b = HetGraphBuilder::new(self.tags.len(), self.rqs.len(), self.tenants.len());
        for (qid, rq) in self.rqs.iter().enumerate() {
            b.set_tenant(qid, rq.tenant);
            for &t in &rq.tags {
                b.add_asc(t, qid);
            }
        }
        for s in &self.sessions {
            for w in s.clicks.windows(2) {
                b.add_clk(w[0], w[1]);
            }
            for w in s.consulted.windows(2) {
                b.add_cst(w[0], w[1]);
            }
        }
        b.build()
    }

    /// Builds the KB warehouse holding every generated Q&A pair.
    pub fn build_kb(&self) -> KbWarehouse {
        let mut kb = KbWarehouse::new();
        for rq in &self.rqs {
            kb.add_pair(rq.text(), rq.answer.clone(), rq.tenant);
        }
        kb
    }

    /// Tags mined from a tenant's RQs (ground truth), deduplicated.
    pub fn tenant_tag_pool(&self, tenant: usize) -> Vec<usize> {
        let mut v: Vec<usize> = self.rqs_by_tenant[tenant]
            .iter()
            .flat_map(|&q| self.rqs[q].tags.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Generates a user-phrased paraphrase of an RQ: the same tags embedded
    /// in a different template with different fillers. This is the raw
    /// material for Q&A matching (the deployed system's RoBERTa model
    /// matches user questions to RQs, §V-A).
    pub fn paraphrase_question<R: Rng>(&self, rq: usize, rng: &mut R) -> String {
        let q = &self.rqs[rq];
        // Templates without the distractor slot keep paraphrases on-topic.
        let template = TEMPLATES
            .iter()
            .filter(|t| !t.contains("{D}"))
            .choose(rng)
            .expect("clean templates exist");
        let a_tag = q.tags.first().copied();
        let o_tag = q.tags.last().copied();
        let mut out: Vec<String> = Vec::new();
        for piece in template.split_whitespace() {
            match piece {
                "{A}" => {
                    if let Some(t) = a_tag {
                        out.extend(self.tags[t].words.iter().cloned());
                    }
                }
                "{O}" => {
                    if let Some(t) = o_tag {
                        out.extend(self.tags[t].words.iter().cloned());
                    }
                }
                "{F}" => out.push(FILLERS.choose(rng).expect("fillers").to_string()),
                w => out.push(w.to_string()),
            }
        }
        out.join(" ")
    }

    /// Global tag-click frequency from the session log (cold-start
    /// recommendations use the most frequently clicked tags, §V-B).
    pub fn click_frequency(&self) -> Vec<usize> {
        let mut f = vec![0usize; self.tags.len()];
        for s in &self.sessions {
            for &c in &s.clicks {
                f[c] += 1;
            }
        }
        f
    }
}

fn split_words(phrase: &str) -> Vec<String> {
    phrase.split_whitespace().map(str::to_string).collect()
}

#[allow(clippy::too_many_arguments)]
fn generate_rq<R: Rng>(
    tenant: usize,
    topic_id: usize,
    topic: &Topic,
    tags: &[Tag],
    topic_tags: &[usize],
    tag_dist: &WeightedIndex<f64>,
    label_noise: f64,
    rng: &mut R,
) -> Rq {
    let template = TEMPLATES.choose(rng).expect("templates");
    // Draw an action-flavored and an object-flavored tag. Variants are valid
    // for both slots; we only require distinctness.
    let a_tag = topic_tags[tag_dist.sample(rng)];
    let mut o_tag = topic_tags[tag_dist.sample(rng)];
    let mut guard = 0;
    while o_tag == a_tag && topic_tags.len() > 1 && guard < 16 {
        o_tag = topic_tags[tag_dist.sample(rng)];
        guard += 1;
    }

    let mut tokens: Vec<String> = Vec::new();
    let mut used_tags: Vec<usize> = Vec::new();
    let mut spans: Vec<GoldSpan> = Vec::new();
    for piece in template.split_whitespace() {
        match piece {
            "{A}" | "{O}" => {
                let tag = if piece == "{A}" { a_tag } else { o_tag };
                let start = tokens.len();
                tokens.extend(tags[tag].words.iter().cloned());
                spans.push(GoldSpan { start, end: tokens.len(), tag });
                used_tags.push(tag);
            }
            "{F}" => tokens.push(FILLERS.choose(rng).expect("fillers").to_string()),
            "{D}" => {
                // A distractor: one word borrowed from another tag of the
                // topic, used as prose. No span, weight 0 — the miner must
                // use sentence context to tell it apart from real tags.
                let other = topic_tags[tag_dist.sample(rng)];
                let word = tags[other].words.choose(rng).expect("tag words");
                tokens.push(word.clone());
            }
            w => tokens.push(w.to_string()),
        }
    }
    used_tags.sort_unstable();
    used_tags.dedup();

    // The two annotation passes measure different things: segmentation
    // marks *every* phrase boundary, weighting marks only *representative*
    // spans (weight 1 iff the span is a real tag, not a long-tail variant).
    // Noise is independent per pass: each may miss a span. The clean
    // representative spans are the evaluation ground truth.
    let true_spans: Vec<GoldSpan> =
        spans.iter().copied().filter(|s| tags[s.tag].representative).collect();
    let weight_spans: Vec<GoldSpan> =
        true_spans.iter().copied().filter(|_| !rng.gen_bool(label_noise)).collect();
    spans.retain(|_| !rng.gen_bool(label_noise));

    let answer =
        format!("To resolve this, open the {} section and follow the guided steps.", topic.name);
    Rq { tenant, topic: topic_id, tokens, tags: used_tags, spans, weight_spans, true_spans, answer }
}

#[allow(clippy::too_many_arguments)]
fn generate_session<R: Rng>(
    tenant: usize,
    intent_rq: usize,
    rqs: &[Rq],
    tenant_rqs: &[usize],
    tags: &[Tag],
    tags_by_topic: &[Vec<usize>],
    tag_zipf: &[WeightedIndex<f64>],
    continue_prob: f64,
    second_question_prob: f64,
    rng: &mut R,
) -> Session {
    let intent = &rqs[intent_rq];
    let topic = intent.topic;
    let mut clicks: Vec<usize> = Vec::new();
    let mut remaining_intent: Vec<usize> = intent.tags.clone();
    remaining_intent.shuffle(rng);

    loop {
        // Next click: mostly refine toward the intent, sometimes explore.
        let roll: f64 = rng.gen();
        let next = if roll < 0.6 {
            remaining_intent.pop()
        } else if roll < 0.9 {
            let tid = tags_by_topic[topic][tag_zipf[topic].sample(rng)];
            (!clicks.contains(&tid)).then_some(tid)
        } else {
            // Off-topic wander within the tenant's corpus.
            let q = *tenant_rqs.choose(rng).expect("tenant rqs");
            rqs[q].tags.choose(rng).copied().filter(|t| !clicks.contains(t))
        };
        if let Some(t) = next {
            debug_assert!(t < tags.len());
            clicks.push(t);
        }
        // Stop conditions: geometric continuation with a hard cap.
        if !clicks.is_empty() && !rng.gen_bool(continue_prob) {
            break;
        }
        if clicks.len() >= 12 {
            break;
        }
    }
    if clicks.is_empty() {
        // Guarantee at least one click per session (sessions without clicks
        // are pure Q&A dialogues and carry no TagRec signal).
        if let Some(&t) = intent.tags.first() {
            clicks.push(t);
        } else {
            clicks.push(tags_by_topic[topic][0]);
        }
    }

    // Consulted questions: the intent RQ, optionally preceded by a related
    // same-tenant question (their retrieval order creates the cst edge).
    let mut consulted = Vec::with_capacity(2);
    if rng.gen_bool(second_question_prob) && tenant_rqs.len() > 1 {
        // Prefer a same-topic sibling.
        let sibling = tenant_rqs
            .iter()
            .copied()
            .filter(|&q| q != intent_rq && rqs[q].topic == topic)
            .choose(rng)
            .or_else(|| tenant_rqs.iter().copied().filter(|&q| q != intent_rq).choose(rng));
        if let Some(q) = sibling {
            consulted.push(q);
        }
    }
    consulted.push(intent_rq);

    Session { tenant, intent_rq, clicks, consulted }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::generate(WorldConfig::tiny(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world();
        let b = world();
        assert_eq!(a.tags.len(), b.tags.len());
        assert_eq!(a.rqs.len(), b.rqs.len());
        for (x, y) in a.rqs.iter().zip(&b.rqs) {
            assert_eq!(x.tokens, y.tokens);
            assert_eq!(x.tags, y.tags);
        }
        for (x, y) in a.sessions.iter().zip(&b.sessions) {
            assert_eq!(x.clicks, y.clicks);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = World::generate(WorldConfig::tiny(1));
        let b = World::generate(WorldConfig::tiny(2));
        let same = a.sessions.iter().zip(&b.sessions).filter(|(x, y)| x.clicks == y.clicks).count();
        assert!(same < a.sessions.len(), "seeds should change the sessions");
    }

    #[test]
    fn counts_match_config() {
        let w = world();
        assert_eq!(w.rqs.len(), w.config.num_rqs);
        assert_eq!(w.sessions.len(), w.config.num_sessions);
        assert_eq!(w.tenants.len(), w.config.num_tenants);
    }

    #[test]
    fn avg_clicks_near_paper_target() {
        let w = World::generate(WorldConfig::small(7));
        let avg = w.avg_clicks();
        assert!((2.2..=3.6).contains(&avg), "avg clicks {avg} should be near the paper's 2.9");
    }

    #[test]
    fn gold_spans_match_tag_words() {
        let w = world();
        for rq in &w.rqs {
            for s in &rq.spans {
                let span_words: Vec<&str> =
                    rq.tokens[s.start..s.end].iter().map(String::as_str).collect();
                let tag_words: Vec<&str> = w.tags[s.tag].words.iter().map(String::as_str).collect();
                assert_eq!(span_words, tag_words, "span text must equal the tag");
            }
        }
    }

    #[test]
    fn rq_tags_are_topic_consistent() {
        let w = world();
        for rq in &w.rqs {
            for &t in &rq.tags {
                assert_eq!(w.tags[t].topic, rq.topic);
            }
        }
    }

    #[test]
    fn sessions_have_clicks_and_consult_the_intent() {
        let w = world();
        for s in &w.sessions {
            assert!(!s.clicks.is_empty());
            assert_eq!(*s.consulted.last().unwrap(), s.intent_rq);
            assert!(s.clicks.len() <= 12);
        }
    }

    #[test]
    fn graph_counts_are_consistent() {
        let w = world();
        let g = w.build_graph();
        assert_eq!(g.num_tags(), w.tags.len());
        assert_eq!(g.num_rqs(), w.rqs.len());
        assert_eq!(g.num_tenants(), w.tenants.len());
        let c = g.relation_counts();
        assert_eq!(c.crl, w.rqs.len(), "every RQ has exactly one tenant");
        assert!(c.asc > 0 && c.clk > 0 && c.cst > 0);
    }

    #[test]
    fn kb_holds_every_rq() {
        let w = world();
        let kb = w.build_kb();
        assert_eq!(kb.len(), w.rqs.len());
        // The warehouse can find an RQ by its own text.
        let (found, _) = kb.best_match(&w.rqs[0].text(), w.rqs[0].tenant).unwrap();
        assert_eq!(w.rqs[found].tenant, w.rqs[0].tenant);
    }

    #[test]
    fn tenant_sizes_are_skewed() {
        let w = World::generate(WorldConfig::small(3));
        let mut sizes: Vec<usize> = w.rqs_by_tenant.iter().map(Vec::len).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        // Head tenant should dwarf the median tenant (Zipf skew).
        assert!(sizes[0] >= 4 * sizes[w.tenants.len() / 2].max(1));
    }

    #[test]
    fn click_frequency_sums_to_total_clicks() {
        let w = world();
        let f = w.click_frequency();
        assert_eq!(f.iter().sum::<usize>(), w.total_clicks());
    }

    #[test]
    fn paraphrase_shares_tag_words_with_rq() {
        let w = world();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        use rand::SeedableRng;
        for rq in 0..20 {
            if w.rqs[rq].tags.is_empty() {
                continue;
            }
            let p = w.paraphrase_question(rq, &mut rng);
            // Some templates carry only the {O} slot, so require any of the
            // RQ's tags (not a specific one) to surface.
            let mentions_any = w.rqs[rq]
                .tags
                .iter()
                .any(|&t| w.tags[t].words.iter().any(|word| p.contains(word.as_str())));
            assert!(mentions_any, "paraphrase {p:?} should mention a tag of RQ {rq}");
        }
    }

    #[test]
    fn paraphrases_vary_across_draws() {
        let w = world();
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let rq = (0..w.rqs.len()).find(|&q| !w.rqs[q].tags.is_empty()).unwrap();
        let all: Vec<String> = (0..10).map(|_| w.paraphrase_question(rq, &mut rng)).collect();
        let distinct: std::collections::HashSet<&String> = all.iter().collect();
        assert!(distinct.len() > 1, "paraphrases should differ");
    }

    #[test]
    fn label_noise_drops_some_spans() {
        let mut cfg = WorldConfig::tiny(5);
        cfg.label_noise = 0.5;
        let w = World::generate(cfg);
        let spans: usize = w.rqs.iter().map(|r| r.spans.len()).sum();
        let tags: usize = w.rqs.iter().map(|r| r.tags.len()).sum();
        assert!(spans < tags, "noise must drop some annotations ({spans} vs {tags})");
    }
}
