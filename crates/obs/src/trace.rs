//! End-to-end request tracing: per-request span lists, a tail-retaining
//! collector, and JSON-lines export.
//!
//! A [`TraceCtx`] rides along with one request from the moment the gateway
//! (or a bench harness) admits it: every stage the request passes through —
//! gateway handling, shard queueing, batch drains, recall / rerank / score /
//! cache inside the model server — appends a [`TraceSpan`] stamped in
//! microseconds since the trace's origin. Handles are cheap to clone
//! ([`TraceHandle`] is an `Arc<Mutex<..>>`) so the same trace can be written
//! to from the calling thread and from a shard worker that scored the
//! request inside a multi-request batch drain.
//!
//! Finished traces are offered to a [`TraceCollector`], which keeps a
//! bounded set using *tail-based retention*: within every window of
//! completed traces it always keeps the K slowest (the tail you actually
//! debug) plus an unbiased 1-in-N sample of the rest. Everything else is
//! dropped and counted on `obs.trace.dropped`; current occupancy is
//! published on the `obs.trace.retained` gauge.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metric::{Counter, Gauge};
use crate::registry::MetricsRegistry;

/// One timed stage inside a request trace. Times are microseconds since the
/// owning trace's origin, so spans from different threads share a clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpan {
    /// Stage name (`"gateway"`, `"shard.queue"`, `"drain"`, `"score"`, ...).
    pub name: &'static str,
    /// Stage start, microseconds since the trace origin.
    pub start_us: u64,
    /// Stage end, microseconds since the trace origin.
    pub end_us: u64,
    /// Shard that executed the stage, when the stage is shard-bound.
    pub shard: Option<u32>,
    /// Number of requests in the batch drain this span belongs to, when the
    /// stage ran as part of a multi-request batch.
    pub batch_rows: Option<u32>,
}

impl TraceSpan {
    /// The span's duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }
}

/// A single request's trace: an id, an origin instant, and the spans
/// recorded so far.
#[derive(Debug)]
pub struct TraceCtx {
    /// The request's trace id (propagated on the wire as 16 hex digits).
    pub trace_id: u64,
    origin: Instant,
    /// Recorded stages, in recording order.
    pub spans: Vec<TraceSpan>,
}

impl TraceCtx {
    /// Starts an empty trace with the given id; the origin is "now".
    pub fn new(trace_id: u64) -> Self {
        TraceCtx { trace_id, origin: Instant::now(), spans: Vec::with_capacity(8) }
    }

    /// Microseconds elapsed since the trace origin.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Appends a span covering `[start_us, end_us]`.
    pub fn record(&mut self, name: &'static str, start_us: u64, end_us: u64) {
        self.spans.push(TraceSpan { name, start_us, end_us, shard: None, batch_rows: None });
    }

    /// Appends a span with shard / batch annotations.
    pub fn record_annotated(
        &mut self,
        name: &'static str,
        start_us: u64,
        end_us: u64,
        shard: Option<u32>,
        batch_rows: Option<u32>,
    ) {
        self.spans.push(TraceSpan { name, start_us, end_us, shard, batch_rows });
    }

    /// End-to-end duration: the latest span end (0 when empty).
    pub fn total_us(&self) -> u64 {
        self.spans.iter().map(|s| s.end_us).max().unwrap_or(0)
    }
}

/// Cheaply cloneable, thread-safe handle to one request's [`TraceCtx`].
///
/// Clones share the trace: the sharded front clones the handle into its mpsc
/// job envelope so shard workers annotate the same trace the gateway started.
/// Lock scope is a handful of instructions per record — traces are per
/// request, so contention is between at most the caller and one worker.
#[derive(Debug, Clone)]
pub struct TraceHandle(Arc<Mutex<TraceCtx>>);

impl TraceHandle {
    /// Starts a new trace with the given id.
    pub fn new(trace_id: u64) -> Self {
        TraceHandle(Arc::new(Mutex::new(TraceCtx::new(trace_id))))
    }

    /// The trace id.
    pub fn id(&self) -> u64 {
        self.lock().trace_id
    }

    /// Microseconds since the trace origin — use as span start/end stamps.
    pub fn now_us(&self) -> u64 {
        self.lock().now_us()
    }

    /// Records a plain span (see [`TraceCtx::record`]).
    pub fn record(&self, name: &'static str, start_us: u64, end_us: u64) {
        self.lock().record(name, start_us, end_us);
    }

    /// Records an annotated span (see [`TraceCtx::record_annotated`]).
    pub fn record_annotated(
        &self,
        name: &'static str,
        start_us: u64,
        end_us: u64,
        shard: Option<u32>,
        batch_rows: Option<u32>,
    ) {
        self.lock().record_annotated(name, start_us, end_us, shard, batch_rows);
    }

    /// Runs `f` with the locked context, for multi-field access.
    pub fn with<R>(&self, f: impl FnOnce(&mut TraceCtx) -> R) -> R {
        f(&mut self.lock())
    }

    /// Copies out the finished form (id, total, spans) for retention.
    pub fn finish(&self) -> FinishedTrace {
        let ctx = self.lock();
        FinishedTrace { trace_id: ctx.trace_id, total_us: ctx.total_us(), spans: ctx.spans.clone() }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceCtx> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// An immutable, completed trace as retained by the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FinishedTrace {
    /// The trace id.
    pub trace_id: u64,
    /// End-to-end duration (latest span end).
    pub total_us: u64,
    /// The recorded spans.
    pub spans: Vec<TraceSpan>,
}

impl FinishedTrace {
    /// Renders the trace as one JSON object (no trailing newline).
    /// `trace_id` is the 16-hex-digit wire form.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.spans.len() * 64);
        out.push_str(&format!(
            "{{\"trace_id\":\"{:016x}\",\"total_us\":{},\"spans\":[",
            self.trace_id, self.total_us
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"start_us\":{},\"end_us\":{}",
                s.name, s.start_us, s.end_us
            ));
            if let Some(shard) = s.shard {
                out.push_str(&format!(",\"shard\":{shard}"));
            }
            if let Some(rows) = s.batch_rows {
                out.push_str(&format!(",\"batch_rows\":{rows}"));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Retention policy for a [`TraceCollector`].
#[derive(Debug, Clone, Copy)]
pub struct TraceConfig {
    /// Max number of retained traces; the oldest are evicted beyond this.
    pub capacity: usize,
    /// Window size over which "the K slowest" is decided.
    pub window: usize,
    /// Number of slowest traces kept per window.
    pub keep_slowest: usize,
    /// Every N-th completed trace is kept regardless of speed (1 = all).
    pub sample_every: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 256, window: 64, keep_slowest: 4, sample_every: 16 }
    }
}

struct CollectorInner {
    /// Retained traces, oldest first (bounded by `capacity`).
    retained: VecDeque<FinishedTrace>,
    /// The window currently being accumulated: `(sampled, trace)`.
    window: Vec<(bool, FinishedTrace)>,
    seen: u64,
}

/// Bounded store of completed traces with tail-based retention.
///
/// [`TraceCollector::offer`] is the only hot-path entry point: one short
/// mutex hold to push into the current window, plus (once per `window`
/// completions) a selection pass keeping the `keep_slowest` slowest and the
/// 1-in-`sample_every` sampled traces. Dropped traces bump
/// `obs.trace.dropped`; the `obs.trace.retained` gauge tracks occupancy.
pub struct TraceCollector {
    inner: Mutex<CollectorInner>,
    cfg: TraceConfig,
    dropped: Arc<Counter>,
    occupancy: Arc<Gauge>,
}

impl TraceCollector {
    /// Creates a collector publishing its counters into `registry`.
    pub fn new(registry: &MetricsRegistry, cfg: TraceConfig) -> Self {
        assert!(cfg.capacity > 0, "trace capacity must be positive");
        assert!(cfg.window > 0, "trace window must be positive");
        assert!(cfg.sample_every > 0, "sample_every must be positive");
        TraceCollector {
            inner: Mutex::new(CollectorInner {
                retained: VecDeque::with_capacity(cfg.capacity.min(1024)),
                window: Vec::with_capacity(cfg.window),
                seen: 0,
            }),
            cfg,
            dropped: registry.counter("obs.trace.dropped"),
            occupancy: registry.gauge("obs.trace.retained"),
        }
    }

    /// Offers a completed trace for retention.
    pub fn offer(&self, trace: FinishedTrace) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.seen += 1;
        let sampled = inner.seen.is_multiple_of(self.cfg.sample_every);
        inner.window.push((sampled, trace));
        if inner.window.len() >= self.cfg.window {
            self.seal_window(&mut inner);
        }
        self.occupancy.set((inner.retained.len() + inner.window.len()) as f64);
    }

    /// Folds the accumulated window into the retained ring: keep the K
    /// slowest plus the sampled ones, drop (and count) the rest.
    fn seal_window(&self, inner: &mut CollectorInner) {
        let mut window = std::mem::take(&mut inner.window);
        // Find the duration cutoff for "K slowest" without a full sort.
        let mut durations: Vec<u64> = window.iter().map(|(_, t)| t.total_us).collect();
        durations.sort_unstable_by(|a, b| b.cmp(a));
        let cutoff = durations.get(self.cfg.keep_slowest.saturating_sub(1)).copied();
        let mut slow_budget = self.cfg.keep_slowest;
        let mut dropped = 0u64;
        for (sampled, trace) in window.drain(..) {
            let slow = match cutoff {
                Some(c) if slow_budget > 0 && trace.total_us >= c => {
                    slow_budget -= 1;
                    true
                }
                _ => false,
            };
            if slow || sampled {
                if inner.retained.len() >= self.cfg.capacity {
                    inner.retained.pop_front();
                    dropped += 1;
                }
                inner.retained.push_back(trace);
            } else {
                dropped += 1;
            }
        }
        if dropped > 0 {
            self.dropped.add(dropped);
        }
    }

    /// All currently held traces, oldest first — retained ones followed by
    /// the still-open window (so fresh traces are visible immediately, which
    /// keeps short smoke runs and `/debug/traces` deterministic).
    pub fn traces(&self) -> Vec<FinishedTrace> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.retained.iter().cloned().chain(inner.window.iter().map(|(_, t)| t.clone())).collect()
    }

    /// The `n` slowest held traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<FinishedTrace> {
        let mut all = self.traces();
        all.sort_by_key(|t| std::cmp::Reverse(t.total_us));
        all.truncate(n);
        all
    }

    /// Total traces offered so far.
    pub fn seen(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).seen
    }

    /// JSON-lines export: one [`FinishedTrace::to_json`] object per line.
    pub fn export_json_lines(&self) -> String {
        let mut out = String::new();
        for t in self.traces() {
            out.push_str(&t.to_json());
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Debug for TraceCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCollector").field("cfg", &self.cfg).finish_non_exhaustive()
    }
}

/// Deterministic trace-id source: a seeded splitmix64 stream, so ids are
/// unique within a process and reproducible under a fixed seed.
#[derive(Debug)]
pub struct TraceIdGen {
    state: AtomicU64,
}

impl TraceIdGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TraceIdGen { state: AtomicU64::new(seed) }
    }

    /// The next trace id (never 0, so 0 can mean "untraced").
    pub fn next_id(&self) -> u64 {
        loop {
            let z = self.state.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
            let mut x = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
            if x != 0 {
                return x;
            }
        }
    }
}

/// Parses a wire trace id: 1–16 hex digits (the inverse of the
/// `{:016x}` rendering used by [`FinishedTrace::to_json`] and the
/// `X-Trace-Id` header). Returns `None` for malformed or zero ids.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Renders a trace id in the wire form used by the `X-Trace-Id` header.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(id: u64, total: u64) -> FinishedTrace {
        FinishedTrace {
            trace_id: id,
            total_us: total,
            spans: vec![TraceSpan {
                name: "stage",
                start_us: 0,
                end_us: total,
                shard: None,
                batch_rows: None,
            }],
        }
    }

    #[test]
    fn spans_accumulate_and_total_is_latest_end() {
        let h = TraceHandle::new(7);
        h.record("gateway", 0, 10);
        h.record_annotated("score", 2, 8, Some(1), Some(4));
        let done = h.finish();
        assert_eq!(done.trace_id, 7);
        assert_eq!(done.total_us, 10);
        assert_eq!(done.spans.len(), 2);
        assert_eq!(done.spans[1].shard, Some(1));
        assert_eq!(done.spans[1].batch_rows, Some(4));
        assert_eq!(done.spans[1].duration_us(), 6);
    }

    #[test]
    fn handle_clones_share_the_trace() {
        let h = TraceHandle::new(1);
        let h2 = h.clone();
        h.record("a", 0, 1);
        h2.record("b", 1, 2);
        assert_eq!(h.finish().spans.len(), 2);
    }

    #[test]
    fn now_us_is_monotone() {
        let h = TraceHandle::new(1);
        let a = h.now_us();
        let b = h.now_us();
        assert!(b >= a);
    }

    #[test]
    fn collector_keeps_slowest_and_sampled() {
        let r = MetricsRegistry::new();
        let cfg = TraceConfig { capacity: 64, window: 10, keep_slowest: 2, sample_every: 5 };
        let c = TraceCollector::new(&r, cfg);
        // One full window: durations 1..=10; every 5th offer is sampled.
        for i in 1..=10u64 {
            c.offer(trace(i, i * 100));
        }
        let kept = c.traces();
        let ids: Vec<u64> = kept.iter().map(|t| t.trace_id).collect();
        // Slowest two are 9 and 10; sampled are the 5th and 10th offers.
        assert!(ids.contains(&10) && ids.contains(&9), "slowest kept: {ids:?}");
        assert!(ids.contains(&5), "sampled kept: {ids:?}");
        assert_eq!(ids.len(), 3, "{ids:?}"); // 10 is both slow and sampled
        assert_eq!(r.counter("obs.trace.dropped").get(), 7);
        assert_eq!(r.gauge("obs.trace.retained").get(), 3.0);
        assert_eq!(c.seen(), 10);
    }

    #[test]
    fn open_window_traces_are_visible_immediately() {
        let r = MetricsRegistry::new();
        let c = TraceCollector::new(&r, TraceConfig::default());
        c.offer(trace(42, 5));
        assert_eq!(c.traces().len(), 1);
        assert_eq!(c.traces()[0].trace_id, 42);
        assert_eq!(r.counter("obs.trace.dropped").get(), 0);
    }

    #[test]
    fn capacity_evicts_oldest_and_counts_drops() {
        let r = MetricsRegistry::new();
        // window 1 + keep_slowest 1 => every trace is retained until the
        // ring overflows its capacity of 2.
        let cfg = TraceConfig { capacity: 2, window: 1, keep_slowest: 1, sample_every: 1 };
        let c = TraceCollector::new(&r, cfg);
        for i in 0..5u64 {
            c.offer(trace(i, 10));
        }
        let ids: Vec<u64> = c.traces().iter().map(|t| t.trace_id).collect();
        assert_eq!(ids, vec![3, 4]);
        assert_eq!(r.counter("obs.trace.dropped").get(), 3);
    }

    #[test]
    fn slowest_orders_by_duration() {
        let r = MetricsRegistry::new();
        let c = TraceCollector::new(&r, TraceConfig::default());
        for (id, us) in [(1, 50), (2, 500), (3, 5)] {
            c.offer(trace(id, us));
        }
        let top: Vec<u64> = c.slowest(2).iter().map(|t| t.trace_id).collect();
        assert_eq!(top, vec![2, 1]);
    }

    #[test]
    fn json_export_shape() {
        let t = FinishedTrace {
            trace_id: 0xabc,
            total_us: 9,
            spans: vec![
                TraceSpan {
                    name: "gateway",
                    start_us: 0,
                    end_us: 9,
                    shard: None,
                    batch_rows: None,
                },
                TraceSpan {
                    name: "drain",
                    start_us: 2,
                    end_us: 7,
                    shard: Some(1),
                    batch_rows: Some(4),
                },
            ],
        };
        let json = t.to_json();
        assert!(json.starts_with("{\"trace_id\":\"0000000000000abc\",\"total_us\":9,"), "{json}");
        assert!(json.contains("{\"name\":\"gateway\",\"start_us\":0,\"end_us\":9}"), "{json}");
        assert!(
            json.contains(
                "{\"name\":\"drain\",\"start_us\":2,\"end_us\":7,\"shard\":1,\"batch_rows\":4}"
            ),
            "{json}"
        );
    }

    #[test]
    fn trace_ids_are_unique_nonzero_and_reproducible() {
        let g = TraceIdGen::new(42);
        let ids: Vec<u64> = (0..1000).map(|_| g.next_id()).collect();
        let unique: std::collections::HashSet<u64> = ids.iter().copied().collect();
        assert_eq!(unique.len(), ids.len());
        assert!(ids.iter().all(|&i| i != 0));
        let g2 = TraceIdGen::new(42);
        assert_eq!(g2.next_id(), ids[0]);
    }

    #[test]
    fn wire_ids_round_trip() {
        for id in [1u64, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_trace_id(&format_trace_id(id)), Some(id));
        }
        assert_eq!(parse_trace_id("0"), None);
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("11112222333344445"), None); // 17 digits
    }
}
