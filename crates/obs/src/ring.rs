//! A bounded ring of recent raw samples.
//!
//! The histogram answers quantile questions in bounded memory, but debugging
//! and the criterion benches still want a window of raw latencies. The ring
//! keeps the last `capacity` samples — long-running simulations no longer
//! grow memory linearly with request count.

use std::sync::Mutex;

/// Bounded FIFO of the most recent `u64` samples.
#[derive(Debug)]
pub struct SampleRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

#[derive(Debug)]
struct RingInner {
    buf: Vec<u64>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    /// Total samples ever pushed (not capped by capacity).
    total: u64,
}

impl SampleRing {
    /// Creates a ring holding at most `capacity` samples.
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        SampleRing {
            inner: Mutex::new(RingInner { buf: Vec::with_capacity(capacity), next: 0, total: 0 }),
            capacity,
        }
    }

    /// Appends a sample, evicting the oldest when full.
    pub fn push(&self, v: u64) {
        let mut r = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if r.buf.len() < self.capacity {
            r.buf.push(v);
        } else {
            let i = r.next;
            r.buf[i] = v;
            r.next = (i + 1) % self.capacity;
        }
        r.total += 1;
    }

    /// The retained samples, oldest first.
    pub fn snapshot(&self) -> Vec<u64> {
        let r = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(r.buf.len());
        out.extend_from_slice(&r.buf[r.next..]);
        out.extend_from_slice(&r.buf[..r.next]);
        out
    }

    /// Samples currently retained (`≤ capacity`).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).buf.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total samples ever pushed.
    pub fn total(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).total
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_in_order() {
        let r = SampleRing::new(4);
        for v in 0..10 {
            r.push(v);
        }
        assert_eq!(r.snapshot(), vec![6, 7, 8, 9]);
        assert_eq!(r.len(), 4);
        assert_eq!(r.total(), 10);
        assert_eq!(r.capacity(), 4);
    }

    #[test]
    fn under_capacity_returns_all() {
        let r = SampleRing::new(8);
        assert!(r.is_empty());
        r.push(1);
        r.push(2);
        assert_eq!(r.snapshot(), vec![1, 2]);
        assert_eq!(r.total(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SampleRing::new(0);
    }
}
