//! The named-metric registry: a cloneable handle shared by every component
//! of the serving/training/simulation stack.

use std::collections::BTreeMap;
use std::sync::{Arc, RwLock};

use crate::export::{self, MetricSample};
use crate::histogram::Histogram;
use crate::metric::{Counter, Gauge};

/// One registered metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// A monotone counter.
    Counter(Arc<Counter>),
    /// A last-value gauge.
    Gauge(Arc<Gauge>),
    /// A log2 latency histogram.
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metrics.
///
/// Cloning is cheap (an `Arc` bump) and every clone sees the same metrics,
/// so a single registry can be threaded through the model server, training
/// loops and the online simulator. Handles returned by
/// [`MetricsRegistry::counter`] & co. are `Arc`s — callers should grab them
/// once (outside hot loops) and record through the handle.
///
/// Names are free-form dotted paths (`serving.stage.recall_us`); the
/// Prometheus renderer sanitizes them to the exposition charset.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<RwLock<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F, G>(&self, name: &str, wrap: F, unwrap: G) -> Arc<T>
    where
        F: FnOnce(Arc<T>) -> Metric,
        G: Fn(&Metric) -> Option<Arc<T>>,
        T: Default,
    {
        if let Some(m) = self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name) {
            return unwrap(m)
                .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind()));
        }
        let mut w = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        match w.get(name) {
            // Lost the race to another thread registering the same name.
            Some(m) => unwrap(m)
                .unwrap_or_else(|| panic!("metric `{name}` already registered as a {}", m.kind())),
            None => {
                let handle = Arc::new(T::default());
                w.insert(name.to_string(), wrap(Arc::clone(&handle)));
                handle
            }
        }
    }

    /// Returns the counter `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_insert(name, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        })
    }

    /// Returns the gauge `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_insert(name, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        })
    }

    /// Returns the histogram `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics when `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_insert(name, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        })
    }

    /// Returns the labeled counter `base{k="v",...}`, creating it on first
    /// use (see [`crate::labeled`] for the name encoding).
    pub fn counter_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.counter(&export::labeled(base, labels))
    }

    /// Returns the labeled gauge `base{k="v",...}`, creating it on first use.
    pub fn gauge_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.gauge(&export::labeled(base, labels))
    }

    /// Returns the labeled histogram `base{k="v",...}`, creating it on first
    /// use.
    pub fn histogram_labeled(&self, base: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.histogram(&export::labeled(base, labels))
    }

    /// Merged snapshot over every histogram named `base` or a labeled
    /// variant `base{...}` — the aggregate view over per-shard series,
    /// equivalent to having recorded every sample into one histogram.
    pub fn merged_histogram(&self, base: &str) -> crate::HistogramSnapshot {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut merged =
            crate::HistogramSnapshot { count: 0, sum: 0, min: 0, max: 0, buckets: Vec::new() };
        for (name, m) in metrics.iter() {
            let matches =
                name == base || name.strip_prefix(base).is_some_and(|rest| rest.starts_with('{'));
            if let (true, Metric::Histogram(h)) = (matches, m) {
                merged.merge(&h.snapshot());
            }
        }
        merged
    }

    /// Looks up a metric without creating it.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).get(name).cloned()
    }

    /// Registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).keys().cloned().collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A point-in-time sample of every metric, sorted by name.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        metrics
            .iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => MetricSample::Counter { name: name.clone(), value: c.get() },
                Metric::Gauge(g) => MetricSample::Gauge { name: name.clone(), value: g.get() },
                Metric::Histogram(h) => {
                    MetricSample::Histogram { name: name.clone(), snapshot: h.snapshot() }
                }
            })
            .collect()
    }

    /// Prometheus text exposition of the current snapshot.
    pub fn render_prometheus(&self) -> String {
        export::render_prometheus(&self.snapshot())
    }

    /// JSON-lines snapshot (one metric object per line); round-trips through
    /// [`crate::parse_json_lines`].
    pub fn render_json_lines(&self) -> String {
        export::render_json_lines(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = MetricsRegistry::new();
        let a = r.counter("requests");
        let b = r.counter("requests");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn clones_share_metrics() {
        let r = MetricsRegistry::new();
        let r2 = r.clone();
        r.gauge("loss").set(0.25);
        assert_eq!(r2.gauge("loss").get(), 0.25);
        assert_eq!(r2.names(), vec!["loss".to_string()]);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("x");
        let _ = r.histogram("x");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = MetricsRegistry::new();
        r.histogram("b.lat").record(5);
        r.counter("a.hits").add(2);
        r.gauge("c.ctr").set(0.5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(matches!(&snap[0], MetricSample::Counter { name, value: 2 } if name == "a.hits"));
        assert!(
            matches!(&snap[1], MetricSample::Histogram { name, snapshot } if name == "b.lat" && snapshot.count == 1)
        );
        assert!(
            matches!(&snap[2], MetricSample::Gauge { name, value } if name == "c.ctr" && *value == 0.5)
        );
    }
}
