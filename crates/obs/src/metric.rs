//! Lock-free scalar metrics: monotone counters and last-value gauges.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter (requests, cache hits, errors).
///
/// All operations are relaxed atomics: counters are statistics, not
/// synchronization, and the read side only ever sees a slightly stale total.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge (epoch loss, rolling CTR, queue depth).
///
/// Stores the `f64` bit pattern in an `AtomicU64`, so `set`/`get` are single
/// atomic ops and the gauge is safely shared across threads without locks.
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (compare-and-swap loop; still wait-free in practice
    /// since gauges are low-frequency).
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(1.5);
        assert_eq!(g.get(), 1.5);
        g.add(0.25);
        assert_eq!(g.get(), 1.75);
        g.set(-3.0);
        assert_eq!(g.get(), -3.0);
    }

    #[test]
    fn counter_is_thread_safe() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 8000);
    }
}
