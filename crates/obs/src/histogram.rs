//! Fixed-bucket HDR-style latency histogram with O(1) record and bounded
//! memory, plus span timers that record stage durations into it.
//!
//! Values below [`SUB_BUCKETS`] get one exact bucket each; every power of
//! two above that is split into [`SUB_BUCKETS`] linear sub-buckets, so the
//! relative bucket width — and therefore the worst-case quantile error —
//! is `1/SUB_BUCKETS` (6.25%) across the whole `u64` range.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Linear sub-buckets per power of two (the HDR resolution knob).
pub const SUB_BUCKETS: usize = 16;

/// Number of buckets: values `0..16` get one exact bucket each, then each
/// power-of-two range `[2^m, 2^(m+1))` for `m` in `4..=63` is split into 16
/// linear sub-buckets of width `2^(m-4)`. The final bucket (index 975) ends
/// at `u64::MAX`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BUCKETS.trailing_zeros() as usize) * 16;

/// Bucket index for a value (O(1): one `leading_zeros` and some shifts).
///
/// Public so exporters and scrape parsers can map rendered bucket bounds
/// back to indices without re-encoding the layout.
#[inline]
pub fn bucket_index_for_value(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let major = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (major - 4)) & 15) as usize;
        SUB_BUCKETS + (major - 4) * 16 + sub
    }
}

/// Inclusive `[lo, hi]` value range of a bucket. The terminal bucket's upper
/// bound is `u64::MAX` (rendered as `+Inf` by the Prometheus exporter).
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < SUB_BUCKETS {
        (i as u64, i as u64)
    } else {
        let rel = i - SUB_BUCKETS;
        let major = 4 + rel / 16;
        let sub = (rel % 16) as u64;
        let width = 1u64 << (major - 4);
        let lo = (1u64 << major) + sub * width;
        let hi = lo.saturating_add(width - 1);
        (lo, hi)
    }
}

/// A concurrent latency histogram over `u64` samples (microseconds by
/// convention) with HDR-style sub-bucketed buckets.
///
/// `record` is a handful of relaxed atomic ops — safe to call from every
/// request thread — and memory stays constant no matter how many samples
/// arrive, unlike the unbounded `Vec<u64>` it replaces. Quantiles are exact
/// up to bucket resolution (at most 1/16 = 6.25% relative error), refined
/// by linear interpolation inside the bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index_for_value(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating sum: wrapping would corrupt the mean on pathological
        // inputs (e.g. u64::MAX sentinel samples).
        let _ = self
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| Some(s.saturating_add(v)));
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a wall-clock duration as microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        self.snapshot().mean()
    }

    /// Quantile estimate (`q` in `[0, 1]`); `0` when empty. See
    /// [`HistogramSnapshot::quantile`].
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// A consistent point-in-time copy of the bucket counts and aggregates.
    ///
    /// Concurrent writers may land between the individual loads, so `count`
    /// is re-derived from the bucket copy to keep the snapshot internally
    /// consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                buckets.push((i, c));
                count += c;
            }
        }
        let min = self.min.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Starts an RAII span that records its elapsed microseconds into this
    /// histogram when dropped (or explicitly via [`Span::finish`]).
    pub fn span(&self) -> Span<'_> {
        Span { hist: self, timer: SpanTimer::start(), armed: true }
    }
}

/// An immutable histogram snapshot: sparse `(bucket index, count)` pairs
/// plus aggregates. This is also the JSON-lines wire form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Saturating sum of samples.
    pub sum: u64,
    /// Smallest sample (`0` when empty).
    pub min: u64,
    /// Largest sample (`0` when empty).
    pub max: u64,
    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate (`q` clamped to `[0, 1]`): walks the cumulative
    /// bucket counts to the target rank, then linearly interpolates inside
    /// the bucket's `[lo, hi]` range. Monotone in `q` by construction and
    /// never off by more than one bucket width, i.e. at most 6.25% relative
    /// error; values below [`SUB_BUCKETS`] are exact. The estimate is
    /// clamped into `[min, max]`, so the quantiles of a constant stream are
    /// exactly that constant, never a bucket edge.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(i, c) in &self.buckets {
            if cum + c >= target {
                let (lo, hi) = bucket_bounds(i);
                let frac = (target - cum) as f64 / c as f64;
                let est = lo as f64 + (hi - lo) as f64 * frac;
                // Round (not truncate) inside the bucket, then clamp into
                // the observed range so estimates never exceed the true
                // extremes.
                return (est.round() as u64).clamp(self.min, self.max);
            }
            cum += c;
        }
        self.max
    }

    /// Fraction of recorded samples whose bucket lies strictly above
    /// `threshold` (`0.0` when empty). Conservative at bucket resolution: a
    /// sample counts as above only if its whole bucket is above, so the
    /// result is a lower bound within one bucket width of the true
    /// fraction. Used by SLO reports to estimate threshold violations.
    pub fn fraction_above(&self, threshold: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let first_above = bucket_index_for_value(threshold) + 1;
        let above: u64 =
            self.buckets.iter().filter(|&&(i, _)| i >= first_above).map(|&(_, c)| c).sum();
        above as f64 / self.count as f64
    }

    /// Inclusive upper bound of a bucket index (for Prometheus `le` labels).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        bucket_bounds(i).1
    }

    /// Merges another snapshot into this one, bucket by bucket.
    ///
    /// Merging the snapshots of N histograms is equivalent to having
    /// recorded every sample into a single histogram (the property tests pin
    /// this), which is what makes per-shard histograms aggregatable into a
    /// whole-server view without a shared write path.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let mut merged: Vec<(usize, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        while let (Some(&&(ia, ca)), Some(&&(ib, cb))) = (a.peek(), b.peek()) {
            match ia.cmp(&ib) {
                std::cmp::Ordering::Less => {
                    merged.push((ia, ca));
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push((ib, cb));
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push((ia, ca + cb));
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A manually driven stopwatch for staged request handling.
///
/// ```
/// use intellitag_obs::{Histogram, SpanTimer};
/// let recall = Histogram::new();
/// let t = SpanTimer::start();
/// // ... do the recall stage ...
/// let us = t.record(&recall);
/// assert_eq!(recall.count(), 1);
/// assert!(us < 1_000_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer {
    start: Instant,
}

impl SpanTimer {
    /// Starts timing now.
    pub fn start() -> Self {
        SpanTimer { start: Instant::now() }
    }

    /// Microseconds elapsed so far.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros().min(u64::MAX as u128) as u64
    }

    /// Stops the timer, records the elapsed microseconds into `hist`, and
    /// returns them.
    pub fn record(self, hist: &Histogram) -> u64 {
        let us = self.elapsed_us();
        hist.record(us);
        us
    }
}

/// RAII stage span from [`Histogram::span`]: records elapsed microseconds on
/// drop unless [`Span::discard`]ed.
#[derive(Debug)]
pub struct Span<'a> {
    hist: &'a Histogram,
    timer: SpanTimer,
    armed: bool,
}

impl Span<'_> {
    /// Records now and returns the elapsed microseconds.
    pub fn finish(mut self) -> u64 {
        self.armed = false;
        self.timer.record(self.hist)
    }

    /// Drops the span without recording (e.g. a stage that bailed early).
    pub fn discard(mut self) {
        self.armed = false;
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.timer.record(self.hist);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        // Exact buckets below SUB_BUCKETS.
        for v in 0..16u64 {
            assert_eq!(bucket_index_for_value(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        // First sub-bucketed major stays continuous with the exact range.
        assert_eq!(bucket_index_for_value(16), 16);
        assert_eq!(bucket_index_for_value(31), 31);
        assert_eq!(bucket_index_for_value(32), 32);
        assert_eq!(bucket_bounds(32), (32, 33));
        // 1023 lands in the last sub-bucket of major 9: [992, 1023].
        assert_eq!(bucket_index_for_value(1023), 111);
        assert_eq!(bucket_bounds(111), (992, 1023));
        assert_eq!(bucket_index_for_value(1024), 112);
        assert_eq!(bucket_index_for_value(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
        assert_eq!(NUM_BUCKETS, 976);
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let mut x = 0x0123_4567_89AB_CDEF_u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Exercise every magnitude, not just the xorshift high range.
            let v = x >> (x % 64);
            let i = bucket_index_for_value(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= v && v <= hi, "value {v} outside bucket {i} [{lo}, {hi}]");
            // Relative bucket width is the advertised 6.25% bound.
            if lo >= 16 {
                assert!((hi - lo) as f64 <= lo as f64 / 16.0, "bucket {i} too wide");
            }
        }
        // Buckets tile the axis: each hi + 1 is the next lo.
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_bounds(i).1 + 1, bucket_bounds(i + 1).0, "gap after bucket {i}");
        }
    }

    #[test]
    fn extreme_values_land_in_terminal_buckets() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets, vec![(0, 1), (1, 1), (NUM_BUCKETS - 1, 1)]);
        // Saturating sum must not wrap past u64::MAX.
        assert_eq!(s.sum, u64::MAX);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert!(s.buckets.is_empty());
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        // Deterministic pseudo-random samples (no external RNG available).
        let mut x = 88172645463325252u64;
        for _ in 0..10_000 {
            // xorshift64
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.record(x % 200_000);
        }
        let s = h.snapshot();
        let (p50, p90, p99) = (s.quantile(0.5), s.quantile(0.9), s.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= s.max);
        assert!(s.quantile(0.0) >= s.min);
        assert_eq!(s.quantile(1.0), s.max);
    }

    #[test]
    fn quantile_interpolates_within_bucket_resolution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 is 500; HDR sub-buckets guarantee 6.25% relative error.
        let p50 = h.quantile(0.5);
        assert!((469..=531).contains(&p50), "p50 estimate {p50}");
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn constant_stream_quantiles_equal_the_constant() {
        // Satellite fix: a constant stream must report the constant at every
        // quantile, not the upper edge of its (16-wide) bucket.
        let h = Histogram::new();
        for _ in 0..1000 {
            h.record(907);
        }
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), 907, "q={q}");
        }
        // Small constants sit in exact buckets even when mixed with
        // outliers: the p50 of 99 fives and one large value is exactly 5.
        let h = Histogram::new();
        for _ in 0..99 {
            h.record(5);
        }
        h.record(10_000);
        assert_eq!(h.quantile(0.5), 5);
    }

    #[test]
    fn quantiles_stay_within_advertised_relative_error() {
        // Synthetic long-tailed distribution with an exact reference: every
        // quantile estimate must land within 6.25% of the true order
        // statistic (acceptance criterion for the HDR upgrade).
        let h = Histogram::new();
        let mut samples = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for _ in 0..50_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // Skewed tail: squares of a uniform draw up to ~10^8.
            let v = (x % 10_000) * (x % 10_000);
            samples.push(v);
            h.record(v);
        }
        samples.sort_unstable();
        let s = h.snapshot();
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let target = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let truth = samples[target - 1];
            let est = s.quantile(q);
            let err = (est as f64 - truth as f64).abs();
            let bound = (truth as f64 / 16.0).max(1.0);
            assert!(err <= bound, "q={q}: est {est} vs true {truth} (err {err} > {bound})");
        }
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = Arc::clone(&h);
            handles.push(std::thread::spawn(move || {
                for i in 0..500u64 {
                    h.record(t * 1000 + i);
                }
            }));
        }
        for th in handles {
            th.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn merge_equals_concat_recording() {
        let (a, b, all) = (Histogram::new(), Histogram::new(), Histogram::new());
        for v in [0u64, 1, 7, 900, 1_000_000] {
            a.record(v);
            all.record(v);
        }
        for v in [3u64, 7, u64::MAX] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        // Merging an empty snapshot is the identity, both ways.
        let mut id = a.snapshot();
        id.merge(&Histogram::new().snapshot());
        assert_eq!(id, a.snapshot());
        let mut from_empty = Histogram::new().snapshot();
        from_empty.merge(&a.snapshot());
        assert_eq!(from_empty, a.snapshot());
    }

    #[test]
    fn span_records_on_drop_and_discard_skips() {
        let h = Histogram::new();
        {
            let _s = h.span();
        }
        assert_eq!(h.count(), 1);
        h.span().discard();
        assert_eq!(h.count(), 1);
        let us = h.span().finish();
        assert_eq!(h.count(), 2);
        assert!(us < 1_000_000);
    }
}
