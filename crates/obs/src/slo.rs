//! Per-tenant-tier SLO accounting on top of the labeled metric series.
//!
//! The paper's online deployment promises a hard latency budget (respond in
//! under 150 ms, Table VI); a multi-tenant serving stack needs to know *per
//! tier* how much of that budget is burnt. The serving layer records one
//! labeled histogram `slo.latency_us{tenant_tier="..."}` per tier plus a
//! shed counter `slo.shed{tenant_tier="..."}`; [`SloReport::from_registry`]
//! folds those series into per-tier p50/p99, shed fraction, and the error
//! budget consumed against a target p99.

use crate::registry::MetricsRegistry;

/// Histogram family for per-tier request latency (microseconds).
pub const SLO_LATENCY_METRIC: &str = "slo.latency_us";
/// Counter family for per-tier shed (rejected) requests.
pub const SLO_SHED_METRIC: &str = "slo.shed";
/// Label key carrying the tenant tier.
pub const SLO_TIER_LABEL: &str = "tenant_tier";

/// Maps a tenant id onto its service tier. The seed workload has no real
/// billing data, so tiers are assigned round-robin — the point is that the
/// *pipeline* (labeled series -> report) is tier-aware end to end.
pub fn tenant_tier(tenant_id: u64) -> &'static str {
    match tenant_id % 3 {
        0 => "gold",
        1 => "silver",
        _ => "bronze",
    }
}

/// SLO summary for one tenant tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSlo {
    /// Tier name (`gold` / `silver` / `bronze`).
    pub tier: String,
    /// Completed requests observed.
    pub count: u64,
    /// Median latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Requests shed (rejected before scoring).
    pub shed: u64,
    /// Shed requests as a fraction of all offered requests.
    pub shed_fraction: f64,
    /// Fraction of the 1% error budget consumed: a request violates the SLO
    /// when it exceeds the target p99 *or* is shed; 1.0 means exactly 1% of
    /// offered requests violated, >1.0 means the budget is blown.
    pub budget_used: f64,
}

/// Per-tier SLO report derived from a registry's `slo.*` series.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// The latency target the budget is measured against (microseconds).
    pub target_p99_us: u64,
    /// Per-tier summaries, sorted by tier name.
    pub tiers: Vec<TierSlo>,
}

/// Extracts the tier value from a canonical labeled name like
/// `slo.latency_us{tenant_tier="gold"}`.
fn tier_of(name: &str, base: &str) -> Option<String> {
    let rest = name.strip_prefix(base)?;
    let body = rest.strip_prefix('{')?.strip_suffix('}')?;
    // Canonical names from `labeled` quote values and sort keys; the SLO
    // series carry exactly one label.
    let value = body.strip_prefix(&format!("{SLO_TIER_LABEL}=\""))?.strip_suffix('"')?;
    Some(value.to_string())
}

impl SloReport {
    /// Builds the report by scanning `registry` for per-tier SLO series.
    /// Tiers appear if they have latency samples, shed counts, or both.
    pub fn from_registry(registry: &MetricsRegistry, target_p99_us: u64) -> Self {
        use std::collections::BTreeMap;
        let mut tiers: BTreeMap<String, TierSlo> = BTreeMap::new();
        let blank = |tier: &str| TierSlo {
            tier: tier.to_string(),
            count: 0,
            p50_us: 0,
            p99_us: 0,
            shed: 0,
            shed_fraction: 0.0,
            budget_used: 0.0,
        };
        for name in registry.names() {
            if let Some(tier) = tier_of(&name, SLO_LATENCY_METRIC) {
                if let Some(crate::Metric::Histogram(h)) = registry.get(&name) {
                    let snap = h.snapshot();
                    let entry = tiers.entry(tier.clone()).or_insert_with(|| blank(&tier));
                    entry.count = snap.count;
                    entry.p50_us = snap.quantile(0.50);
                    entry.p99_us = snap.quantile(0.99);
                    // Stash the over-target fraction in budget_used; the
                    // final budget math happens once shed is known.
                    entry.budget_used = snap.fraction_above(target_p99_us);
                }
            } else if let Some(tier) = tier_of(&name, SLO_SHED_METRIC) {
                if let Some(crate::Metric::Counter(c)) = registry.get(&name) {
                    let entry = tiers.entry(tier.clone()).or_insert_with(|| blank(&tier));
                    entry.shed = c.get();
                }
            }
        }
        let mut tiers: Vec<TierSlo> = tiers.into_values().collect();
        for t in &mut tiers {
            let offered = t.count + t.shed;
            if offered == 0 {
                t.shed_fraction = 0.0;
                t.budget_used = 0.0;
                continue;
            }
            let slow = t.budget_used * t.count as f64; // violations from latency
            let violations = slow + t.shed as f64;
            t.shed_fraction = t.shed as f64 / offered as f64;
            // 1% error budget: budget_used = violation fraction / 0.01.
            t.budget_used = (violations / offered as f64) / 0.01;
        }
        SloReport { target_p99_us, tiers }
    }

    /// Renders the report as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"target_p99_us\":{},\"tiers\":[", self.target_p99_us);
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tier\":\"{}\",\"count\":{},\"p50_us\":{},\"p99_us\":{},\"shed\":{},\
                 \"shed_fraction\":{:.6},\"budget_used\":{:.4}}}",
                t.tier, t.count, t.p50_us, t.p99_us, t.shed, t.shed_fraction, t.budget_used
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders a fixed-width text table for CLI output.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "SLO report (target p99 <= {} us, 1% error budget)\n\
             {:<8} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8}\n",
            self.target_p99_us, "tier", "count", "p50_us", "p99_us", "shed", "shed%", "budget"
        );
        for t in &self.tiers {
            out.push_str(&format!(
                "{:<8} {:>9} {:>9} {:>9} {:>7} {:>7.2}% {:>7.2}x\n",
                t.tier,
                t.count,
                t.p50_us,
                t.p99_us,
                t.shed,
                t.shed_fraction * 100.0,
                t.budget_used
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_tiers_are_stable() {
        assert_eq!(tenant_tier(0), "gold");
        assert_eq!(tenant_tier(1), "silver");
        assert_eq!(tenant_tier(2), "bronze");
        assert_eq!(tenant_tier(3), "gold");
    }

    #[test]
    fn report_folds_latency_and_shed_series() {
        let r = MetricsRegistry::new();
        let gold = r.histogram_labeled(SLO_LATENCY_METRIC, &[(SLO_TIER_LABEL, "gold")]);
        for _ in 0..99 {
            gold.record(1_000);
        }
        gold.record(50_000); // one sample far over target
        r.counter_labeled(SLO_SHED_METRIC, &[(SLO_TIER_LABEL, "gold")]).add(0);
        let silver = r.histogram_labeled(SLO_LATENCY_METRIC, &[(SLO_TIER_LABEL, "silver")]);
        for _ in 0..90 {
            silver.record(2_000);
        }
        r.counter_labeled(SLO_SHED_METRIC, &[(SLO_TIER_LABEL, "silver")]).add(10);

        let report = SloReport::from_registry(&r, 10_000);
        assert_eq!(report.tiers.len(), 2);
        let g = report.tiers.iter().find(|t| t.tier == "gold").expect("gold tier");
        assert_eq!(g.count, 100);
        assert!((900..=1100).contains(&g.p50_us), "p50 {}", g.p50_us);
        assert_eq!(g.shed, 0);
        // 1 of 100 offered over target => exactly the 1% budget.
        assert!((g.budget_used - 1.0).abs() < 0.05, "budget {}", g.budget_used);
        let s = report.tiers.iter().find(|t| t.tier == "silver").expect("silver tier");
        assert_eq!(s.count, 90);
        assert_eq!(s.shed, 10);
        assert!((s.shed_fraction - 0.1).abs() < 1e-9);
        // 10 shed of 100 offered => 10x the 1% budget.
        assert!((s.budget_used - 10.0).abs() < 0.05, "budget {}", s.budget_used);
    }

    #[test]
    fn empty_registry_yields_empty_report() {
        let r = MetricsRegistry::new();
        let report = SloReport::from_registry(&r, 150_000);
        assert!(report.tiers.is_empty());
        assert_eq!(report.to_json(), "{\"target_p99_us\":150000,\"tiers\":[]}");
    }

    #[test]
    fn json_and_text_render_every_tier() {
        let r = MetricsRegistry::new();
        r.histogram_labeled(SLO_LATENCY_METRIC, &[(SLO_TIER_LABEL, "bronze")]).record(5_000);
        let report = SloReport::from_registry(&r, 150_000);
        let json = report.to_json();
        assert!(json.contains("\"tier\":\"bronze\""), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        let text = report.render_text();
        assert!(text.contains("bronze"), "{text}");
        assert!(text.contains("budget"), "{text}");
    }
}
