//! Export formats: Prometheus text exposition and JSON-lines snapshots.
//!
//! Both are dependency-free by design (the build environment is offline).
//! The JSON-lines form is the lossless one — [`parse_json_lines`] restores
//! the exact [`MetricSample`]s, which the tests use for round-trip checks
//! and the dashboard example uses to post-process snapshots.

use crate::histogram::HistogramSnapshot;

/// A point-in-time sample of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSample {
    /// Counter value.
    Counter {
        /// Registered name.
        name: String,
        /// Current total.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Registered name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// Histogram state.
    Histogram {
        /// Registered name.
        name: String,
        /// Bucket counts and aggregates.
        snapshot: HistogramSnapshot,
    },
}

impl MetricSample {
    /// The metric's registered name.
    pub fn name(&self) -> &str {
        match self {
            MetricSample::Counter { name, .. }
            | MetricSample::Gauge { name, .. }
            | MetricSample::Histogram { name, .. } => name,
        }
    }
}

/// Maps a metric name onto the Prometheus exposition charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders samples in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le="..."}` lines for their non-empty
/// log2 buckets (inclusive upper bounds) plus the mandatory `+Inf` bucket,
/// `_sum` and `_count`.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        match s {
            MetricSample::Counter { name, value } => {
                let n = sanitize(name);
                out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
            }
            MetricSample::Gauge { name, value } => {
                let n = sanitize(name);
                out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", render_f64(*value)));
            }
            MetricSample::Histogram { name, snapshot } => {
                let n = sanitize(name);
                out.push_str(&format!("# TYPE {n} histogram\n"));
                let mut cum = 0u64;
                for &(i, c) in &snapshot.buckets {
                    cum += c;
                    if i >= 64 {
                        continue; // covered by the +Inf bucket
                    }
                    let le = HistogramSnapshot::bucket_upper_bound(i);
                    out.push_str(&format!("{n}_bucket{{le=\"{le}\"}} {cum}\n"));
                }
                out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", snapshot.count));
                out.push_str(&format!("{n}_sum {}\n", snapshot.sum));
                out.push_str(&format!("{n}_count {}\n", snapshot.count));
            }
        }
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no literal for NaN/Inf.
        "null".to_string()
    }
}

/// Renders samples as JSON lines: one self-describing object per line.
pub fn render_json_lines(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        match s {
            MetricSample::Counter { name, value } => {
                out.push_str(&format!(
                    "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
                    escape_json(name)
                ));
            }
            MetricSample::Gauge { name, value } => {
                out.push_str(&format!(
                    "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                    escape_json(name),
                    render_json_f64(*value)
                ));
            }
            MetricSample::Histogram { name, snapshot } => {
                let buckets: Vec<String> =
                    snapshot.buckets.iter().map(|(i, c)| format!("[{i},{c}]")).collect();
                out.push_str(&format!(
                    "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
                    escape_json(name),
                    snapshot.count,
                    snapshot.sum,
                    snapshot.min,
                    snapshot.max,
                    buckets.join(",")
                ));
            }
        }
    }
    out
}

fn unescape_json(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('/') => out.push('/'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
            }
            other => return Err(format!("bad escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Splits the interior of a JSON object into top-level `key:value` field
/// strings (tracks string and bracket nesting; no allocation per char).
fn split_fields(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let (mut depth, mut in_str, mut esc, mut start) = (0i32, false, false, 0usize);
    for (i, b) in body.bytes().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                fields.push(body[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = body[start..].trim();
    if !last.is_empty() {
        fields.push(last);
    }
    fields
}

/// Parses one `"key":value` field into `(key, raw value)`.
fn split_key_value(field: &str) -> Result<(String, &str), String> {
    let field = field.trim();
    if !field.starts_with('"') {
        return Err(format!("field does not start with a quoted key: `{field}`"));
    }
    // Find the closing quote of the key (keys we emit never contain escapes
    // that hide quotes incorrectly because we scan escape-aware).
    let bytes = field.as_bytes();
    let mut esc = false;
    for i in 1..bytes.len() {
        if esc {
            esc = false;
            continue;
        }
        match bytes[i] {
            b'\\' => esc = true,
            b'"' => {
                let key = unescape_json(&field[1..i])?;
                let rest = field[i + 1..].trim_start();
                let value = rest
                    .strip_prefix(':')
                    .ok_or_else(|| format!("missing `:` in field `{field}`"))?;
                return Ok((key, value.trim()));
            }
            _ => {}
        }
    }
    Err(format!("unterminated key in field `{field}`"))
}

fn parse_quoted(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected string, got `{v}`"))?;
    unescape_json(inner)
}

fn parse_u64(v: &str) -> Result<u64, String> {
    v.parse::<u64>().map_err(|_| format!("expected integer, got `{v}`"))
}

fn parse_f64(v: &str) -> Result<f64, String> {
    if v == "null" {
        return Ok(f64::NAN);
    }
    v.parse::<f64>().map_err(|_| format!("expected number, got `{v}`"))
}

fn parse_buckets(v: &str) -> Result<Vec<(usize, u64)>, String> {
    let body = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected array, got `{v}`"))?;
    let mut out = Vec::new();
    for pair in split_fields(body) {
        let inner = pair
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("expected [index,count], got `{pair}`"))?;
        let mut it = inner.split(',');
        let idx = parse_u64(it.next().unwrap_or("").trim())? as usize;
        let count = parse_u64(it.next().ok_or("missing bucket count")?.trim())?;
        out.push((idx, count));
    }
    Ok(out)
}

/// Parses a JSON-lines snapshot produced by [`render_json_lines`] back into
/// samples. Restores counters, gauges (non-finite values come back as NaN)
/// and histograms exactly.
pub fn parse_json_lines(text: &str) -> Result<Vec<MetricSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("line {}: not an object: `{line}`", lineno + 1))?;
        let mut kind = None;
        let mut name = None;
        let mut value_raw = None;
        let (mut count, mut sum, mut min, mut max) = (0u64, 0u64, 0u64, 0u64);
        let mut buckets = Vec::new();
        for field in split_fields(body) {
            let (key, raw) =
                split_key_value(field).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let res: Result<(), String> = (|| {
                match key.as_str() {
                    "type" => kind = Some(parse_quoted(raw)?),
                    "name" => name = Some(parse_quoted(raw)?),
                    "value" => value_raw = Some(raw.to_string()),
                    "count" => count = parse_u64(raw)?,
                    "sum" => sum = parse_u64(raw)?,
                    "min" => min = parse_u64(raw)?,
                    "max" => max = parse_u64(raw)?,
                    "buckets" => buckets = parse_buckets(raw)?,
                    _ => {} // forward compatible: ignore unknown fields
                }
                Ok(())
            })();
            res.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        let name = name.ok_or_else(|| format!("line {}: missing name", lineno + 1))?;
        let sample = match kind.as_deref() {
            Some("counter") => MetricSample::Counter {
                name,
                value: parse_u64(value_raw.as_deref().unwrap_or("0"))
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            },
            Some("gauge") => MetricSample::Gauge {
                name,
                value: parse_f64(value_raw.as_deref().unwrap_or("null"))
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            },
            Some("histogram") => MetricSample::Histogram {
                name,
                snapshot: HistogramSnapshot { count, sum, min, max, buckets },
            },
            other => return Err(format!("line {}: unknown metric type {other:?}", lineno + 1)),
        };
        out.push(sample);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("serving.cache.hit").add(7);
        r.gauge("online.macro_ctr").set(0.4375);
        let h = r.histogram("serving.stage.recall_us");
        for v in [0, 1, 3, 900, 1_000_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# TYPE serving_cache_hit counter\nserving_cache_hit 7\n"));
        assert!(text.contains("# TYPE online_macro_ctr gauge\nonline_macro_ctr 0.4375\n"));
        assert!(text.contains("# TYPE serving_stage_recall_us histogram\n"));
        // Cumulative buckets: 0 -> 1, le="1" -> 2, le="3" -> 3, ...
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"1023\"} 4\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("serving_stage_recall_us_sum 1000904\n"));
        assert!(text.contains("serving_stage_recall_us_count 5\n"));
    }

    #[test]
    fn prometheus_sanitizes_names() {
        let samples = vec![MetricSample::Counter { name: "9a.b-c d".into(), value: 1 }];
        let text = render_prometheus(&samples);
        assert!(text.contains("_9a_b_c_d 1\n"), "{text}");
    }

    #[test]
    fn json_lines_round_trip() {
        let snap = sample_registry().snapshot();
        let text = render_json_lines(&snap);
        assert_eq!(text.lines().count(), 3);
        let back = parse_json_lines(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn json_round_trips_awkward_names() {
        let samples = vec![
            MetricSample::Counter { name: "quote\"back\\slash\ttab".into(), value: 3 },
            MetricSample::Gauge { name: "nan gauge".into(), value: f64::INFINITY },
        ];
        let text = render_json_lines(&samples);
        let back = parse_json_lines(&text).expect("parse");
        assert_eq!(back[0], samples[0]);
        // Non-finite gauges degrade to NaN (JSON has no Inf literal).
        match &back[1] {
            MetricSample::Gauge { name, value } => {
                assert_eq!(name, "nan gauge");
                assert!(value.is_nan());
            }
            other => panic!("wrong sample {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json_lines("not json").is_err());
        assert!(parse_json_lines("{\"type\":\"widget\",\"name\":\"x\"}").is_err());
        assert!(parse_json_lines("{\"type\":\"counter\",\"value\":1}").is_err());
    }

    #[test]
    fn empty_input_parses_to_nothing() {
        assert_eq!(parse_json_lines("").unwrap(), Vec::new());
        assert_eq!(parse_json_lines("\n  \n").unwrap(), Vec::new());
    }
}
