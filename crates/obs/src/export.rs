//! Export formats: Prometheus text exposition and JSON-lines snapshots.
//!
//! Both are dependency-free by design (the build environment is offline).
//! The JSON-lines form is the lossless one — [`parse_json_lines`] restores
//! the exact [`MetricSample`]s, which the tests use for round-trip checks
//! and the dashboard example uses to post-process snapshots.

use crate::histogram::{bucket_bounds, bucket_index_for_value, HistogramSnapshot, SUB_BUCKETS};

/// A point-in-time sample of one named metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSample {
    /// Counter value.
    Counter {
        /// Registered name.
        name: String,
        /// Current total.
        value: u64,
    },
    /// Gauge value.
    Gauge {
        /// Registered name.
        name: String,
        /// Current value.
        value: f64,
    },
    /// Histogram state.
    Histogram {
        /// Registered name.
        name: String,
        /// Bucket counts and aggregates.
        snapshot: HistogramSnapshot,
    },
}

impl MetricSample {
    /// The metric's registered name.
    pub fn name(&self) -> &str {
        match self {
            MetricSample::Counter { name, .. }
            | MetricSample::Gauge { name, .. }
            | MetricSample::Histogram { name, .. } => name,
        }
    }
}

/// Builds a labeled metric name: `base{k1="v1",k2="v2"}` with keys sorted
/// for a canonical form. Registered under this full string, the Prometheus
/// renderer emits the label block verbatim (merging `le` for histogram
/// buckets), so per-shard series like `sharded.request_us{shard="3"}` come
/// out as proper labeled time series instead of name-mangled metrics.
///
/// Label values are escaped per the exposition format (`\\`, `\"`, `\n`);
/// keys should already be exposition-safe identifiers.
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return base.to_string();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort_by_key(|&(k, _)| k);
    let body: Vec<String> =
        pairs.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    format!("{base}{{{}}}", body.join(","))
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for ch in v.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Splits a registered name into its base and an optional `{...}` label
/// block (as produced by [`labeled`]).
fn split_labels(name: &str) -> (&str, Option<&str>) {
    match (name.find('{'), name.ends_with('}')) {
        (Some(i), true) => (&name[..i], Some(&name[i + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Maps a metric name onto the Prometheus exposition charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit).
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphanumeric() || ch == '_' || ch == ':';
        if i == 0 && ch.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { ch } else { '_' });
    }
    out
}

fn render_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v > 0.0 {
        "+Inf".to_string()
    } else {
        "-Inf".to_string()
    }
}

/// Renders `body` (the interior of a label block) plus an optional extra
/// pair as a `{...}` suffix, or nothing when both are absent.
fn label_block(body: Option<&str>, extra: Option<&str>) -> String {
    match (body, extra) {
        (None, None) => String::new(),
        (Some(b), None) => format!("{{{b}}}"),
        (None, Some(e)) => format!("{{{e}}}"),
        (Some(b), Some(e)) => format!("{{{b},{e}}}"),
    }
}

/// Renders samples in the Prometheus text exposition format.
///
/// Names carrying a `{...}` suffix (see [`labeled`]) are emitted as labeled
/// series: the base name is sanitized, the label block passes through, and a
/// family's `# TYPE` header is emitted once no matter how many labeled
/// series it has. Histograms emit cumulative `_bucket{le="..."}` lines for
/// their non-empty HDR buckets (inclusive upper bounds, which always lie
/// inside the bucket they bound so the parser can invert them) plus the
/// mandatory `+Inf` bucket, `_sum` and `_count`, with `le` merged into any
/// existing labels.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut typed: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();
    let mut type_line = |out: &mut String, family: &str, kind: &str| {
        if typed.insert(family.to_string()) {
            out.push_str(&format!("# TYPE {family} {kind}\n"));
        }
    };
    for s in samples {
        let (base, labels) = split_labels(s.name());
        let n = sanitize(base);
        match s {
            MetricSample::Counter { value, .. } => {
                type_line(&mut out, &n, "counter");
                out.push_str(&format!("{n}{} {value}\n", label_block(labels, None)));
            }
            MetricSample::Gauge { value, .. } => {
                type_line(&mut out, &n, "gauge");
                out.push_str(&format!("{n}{} {}\n", label_block(labels, None), render_f64(*value)));
            }
            MetricSample::Histogram { snapshot, .. } => {
                type_line(&mut out, &n, "histogram");
                let mut cum = 0u64;
                for &(i, c) in &snapshot.buckets {
                    cum += c;
                    let le = HistogramSnapshot::bucket_upper_bound(i);
                    if le == u64::MAX {
                        continue; // terminal bucket: covered by +Inf
                    }
                    let block = label_block(labels, Some(&format!("le=\"{le}\"")));
                    out.push_str(&format!("{n}_bucket{block} {cum}\n"));
                }
                let inf = label_block(labels, Some("le=\"+Inf\""));
                out.push_str(&format!("{n}_bucket{inf} {}\n", snapshot.count));
                let plain = label_block(labels, None);
                out.push_str(&format!("{n}_sum{plain} {}\n", snapshot.sum));
                out.push_str(&format!("{n}_count{plain} {}\n", snapshot.count));
            }
        }
    }
    out
}

/// Splits a label-block body into `(key, unescaped value)` pairs.
fn parse_label_pairs(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut pairs = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or_else(|| format!("missing `=` in labels `{body}`"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..]
            .trim_start()
            .strip_prefix('"')
            .ok_or_else(|| format!("unquoted label value in `{body}`"))?;
        // Scan for the closing quote, escape-aware.
        let bytes = after.as_bytes();
        let mut esc = false;
        let mut end = None;
        for (i, &b) in bytes.iter().enumerate() {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or_else(|| format!("unterminated label value in `{body}`"))?;
        let mut value = String::new();
        let mut chars = after[..end].chars();
        while let Some(ch) = chars.next() {
            if ch != '\\' {
                value.push(ch);
                continue;
            }
            match chars.next() {
                Some('\\') => value.push('\\'),
                Some('"') => value.push('"'),
                Some('n') => value.push('\n'),
                other => return Err(format!("bad label escape `\\{other:?}` in `{body}`")),
            }
        }
        pairs.push((key, value));
        rest = after[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(pairs)
}

/// Rebuilds a canonical registered name from a base and parsed label pairs.
fn canonical_name(base: &str, pairs: &[(String, String)]) -> String {
    let borrowed: Vec<(&str, &str)> = pairs.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
    labeled(base, &borrowed)
}

/// Splits a sample line into `(name-with-labels, value)`. The label block's
/// closing brace is located with an escape- and quote-aware scan so label
/// values containing `{`, `}` or spaces don't derail the parse.
fn split_sample_line(line: &str) -> Result<(&str, &str), String> {
    let Some(open) = line.find('{') else {
        let sp = line.rfind(' ').ok_or_else(|| format!("no value in `{line}`"))?;
        return Ok((line[..sp].trim(), line[sp..].trim()));
    };
    let bytes = line.as_bytes();
    let (mut in_str, mut esc) = (false, false);
    for i in open + 1..bytes.len() {
        let b = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
        } else if b == b'"' {
            in_str = true;
        } else if b == b'}' {
            return Ok((line[..=i].trim(), line[i + 1..].trim()));
        }
    }
    Err(format!("unterminated label block in `{line}`"))
}

/// One histogram series being reassembled from its exposition lines.
struct PendingHistogram {
    /// Canonical name (base + labels minus `le`).
    name: String,
    /// `(bucket index, cumulative count)` for the finite buckets, in order.
    cum: Vec<(usize, u64)>,
    /// Cumulative count at `le="+Inf"` (the total).
    total: Option<u64>,
    sum: Option<u64>,
}

impl PendingHistogram {
    fn finalize(self, count: u64) -> Result<MetricSample, String> {
        let total = self.total.unwrap_or(count);
        if total != count {
            return Err(format!("histogram `{}`: +Inf bucket {total} != count {count}", self.name));
        }
        let mut buckets = Vec::with_capacity(self.cum.len() + 1);
        let mut prev = 0u64;
        for (i, c) in self.cum {
            if c < prev {
                return Err(format!("histogram `{}`: non-monotone cumulative buckets", self.name));
            }
            if c > prev {
                buckets.push((i, c - prev));
            }
            prev = c;
        }
        if count < prev {
            return Err(format!("histogram `{}`: count below last bucket", self.name));
        }
        if count > prev {
            // Samples beyond the last finite bound live in the terminal
            // bucket (the renderer folds it into +Inf).
            buckets.push((crate::histogram::NUM_BUCKETS - 1, count - prev));
        }
        let (min, max) = match (buckets.first(), buckets.last()) {
            (Some(&(lo, _)), Some(&(hi, _))) => {
                (bucket_bounds(lo).0, HistogramSnapshot::bucket_upper_bound(hi))
            }
            _ => (0, 0),
        };
        Ok(MetricSample::Histogram {
            name: self.name,
            snapshot: HistogramSnapshot { count, sum: self.sum.unwrap_or(0), min, max, buckets },
        })
    }
}

/// Parses Prometheus text exposition produced by [`render_prometheus`] back
/// into samples — the scrape-side inverse used by the round-trip property
/// tests and by anything consuming a scraped snapshot.
///
/// Counters and gauges round-trip exactly (modulo name sanitization, which
/// is lossy by design). Histograms recover their count, sum, per-bucket
/// counts and label sets exactly; `min`/`max` are not part of the
/// exposition format and come back as the enclosing bucket bounds.
pub fn parse_prometheus(text: &str) -> Result<Vec<MetricSample>, String> {
    use std::collections::HashMap;
    let mut kinds: HashMap<String, String> = HashMap::new();
    let mut pending: Option<PendingHistogram> = None;
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let fail = |e: String| format!("line {}: {e}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let mut it = rest.split_whitespace();
            if it.next() == Some("TYPE") {
                let fam = it.next().ok_or_else(|| fail("TYPE without a name".into()))?;
                let kind = it.next().ok_or_else(|| fail("TYPE without a kind".into()))?;
                kinds.insert(fam.to_string(), kind.to_string());
            }
            continue; // comments and other directives
        }
        // `name{labels} value` — the closing brace is found with a
        // quote-aware scan, since label values may contain `{`/`}`.
        let (name_part, value_part) = split_sample_line(line).map_err(fail)?;
        let (base, label_body) = split_labels(name_part);
        let mut pairs =
            label_body.map(parse_label_pairs).transpose().map_err(fail)?.unwrap_or_default();

        // Histogram component lines (`_bucket` / `_sum` / `_count`)?
        let hist_family = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
            let fam = base.strip_suffix(suffix)?;
            (kinds.get(fam).map(String::as_str) == Some("histogram")).then_some((fam, *suffix))
        });
        if let Some((fam, suffix)) = hist_family {
            let le = pairs.iter().position(|(k, _)| k == "le").map(|i| pairs.remove(i).1);
            let series = canonical_name(fam, &pairs);
            let h = pending.get_or_insert_with(|| PendingHistogram {
                name: series.clone(),
                cum: Vec::new(),
                total: None,
                sum: None,
            });
            if h.name != series {
                return Err(fail(format!(
                    "interleaved histogram series `{series}` inside `{}`",
                    h.name
                )));
            }
            match suffix {
                "_bucket" => {
                    let le = le.ok_or_else(|| fail("bucket line without `le`".into()))?;
                    let cum = parse_u64(value_part).map_err(fail)?;
                    if le == "+Inf" {
                        h.total = Some(cum);
                    } else {
                        // Rendered `le` bounds lie inside their own bucket,
                        // so the value->index map recovers the bucket index.
                        // (The pre-HDR renderer's `2^k - 1` bounds are each
                        // the last sub-bucket of their power of two, so old
                        // exposition text still lands on the right bucket.)
                        let bound = parse_u64(&le).map_err(fail)?;
                        h.cum.push((bucket_index_for_value(bound), cum));
                    }
                }
                "_sum" => h.sum = Some(parse_u64(value_part).map_err(fail)?),
                _ => {
                    let count = parse_u64(value_part).map_err(fail)?;
                    let done = pending.take().expect("pending histogram");
                    out.push(done.finalize(count).map_err(fail)?);
                }
            }
            continue;
        }
        if pending.is_some() {
            return Err(fail(format!("unterminated histogram before `{line}`")));
        }
        let name = canonical_name(base, &pairs);
        match kinds.get(base).map(String::as_str) {
            Some("counter") => out
                .push(MetricSample::Counter { name, value: parse_u64(value_part).map_err(fail)? }),
            Some("gauge") => {
                let value = match value_part {
                    "NaN" => f64::NAN,
                    "+Inf" => f64::INFINITY,
                    "-Inf" => f64::NEG_INFINITY,
                    v => v.parse::<f64>().map_err(|_| fail(format!("bad gauge value `{v}`")))?,
                };
                out.push(MetricSample::Gauge { name, value });
            }
            other => return Err(fail(format!("sample `{base}` has unknown type {other:?}"))),
        }
    }
    if let Some(h) = pending {
        return Err(format!("histogram `{}` missing its _count line", h.name));
    }
    Ok(out)
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        // JSON has no literal for NaN/Inf.
        "null".to_string()
    }
}

/// Renders samples as JSON lines: one self-describing object per line.
pub fn render_json_lines(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    for s in samples {
        match s {
            MetricSample::Counter { name, value } => {
                out.push_str(&format!(
                    "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}\n",
                    escape_json(name)
                ));
            }
            MetricSample::Gauge { name, value } => {
                out.push_str(&format!(
                    "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
                    escape_json(name),
                    render_json_f64(*value)
                ));
            }
            MetricSample::Histogram { name, snapshot } => {
                let buckets: Vec<String> =
                    snapshot.buckets.iter().map(|(i, c)| format!("[{i},{c}]")).collect();
                // `hdr` records the sub-bucket resolution the indices were
                // computed under; the parser refuses mismatched layouts so
                // stale pre-HDR snapshots can't be silently misread.
                out.push_str(&format!(
                    "{{\"type\":\"histogram\",\"hdr\":{},\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}\n",
                    SUB_BUCKETS,
                    escape_json(name),
                    snapshot.count,
                    snapshot.sum,
                    snapshot.min,
                    snapshot.max,
                    buckets.join(",")
                ));
            }
        }
    }
    out
}

fn unescape_json(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            Some('r') => out.push('\r'),
            Some('/') => out.push('/'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| format!("bad \\u escape `{hex}`"))?;
                out.push(char::from_u32(code).ok_or_else(|| format!("bad codepoint {code}"))?);
            }
            other => return Err(format!("bad escape `\\{other:?}`")),
        }
    }
    Ok(out)
}

/// Splits the interior of a JSON object into top-level `key:value` field
/// strings (tracks string and bracket nesting; no allocation per char).
fn split_fields(body: &str) -> Vec<&str> {
    let mut fields = Vec::new();
    let (mut depth, mut in_str, mut esc, mut start) = (0i32, false, false, 0usize);
    for (i, b) in body.bytes().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if b == b'\\' {
                esc = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'[' | b'{' => depth += 1,
            b']' | b'}' => depth -= 1,
            b',' if depth == 0 => {
                fields.push(body[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    let last = body[start..].trim();
    if !last.is_empty() {
        fields.push(last);
    }
    fields
}

/// Parses one `"key":value` field into `(key, raw value)`.
fn split_key_value(field: &str) -> Result<(String, &str), String> {
    let field = field.trim();
    if !field.starts_with('"') {
        return Err(format!("field does not start with a quoted key: `{field}`"));
    }
    // Find the closing quote of the key (keys we emit never contain escapes
    // that hide quotes incorrectly because we scan escape-aware).
    let bytes = field.as_bytes();
    let mut esc = false;
    for i in 1..bytes.len() {
        if esc {
            esc = false;
            continue;
        }
        match bytes[i] {
            b'\\' => esc = true,
            b'"' => {
                let key = unescape_json(&field[1..i])?;
                let rest = field[i + 1..].trim_start();
                let value = rest
                    .strip_prefix(':')
                    .ok_or_else(|| format!("missing `:` in field `{field}`"))?;
                return Ok((key, value.trim()));
            }
            _ => {}
        }
    }
    Err(format!("unterminated key in field `{field}`"))
}

fn parse_quoted(v: &str) -> Result<String, String> {
    let inner = v
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("expected string, got `{v}`"))?;
    unescape_json(inner)
}

fn parse_u64(v: &str) -> Result<u64, String> {
    v.parse::<u64>().map_err(|_| format!("expected integer, got `{v}`"))
}

fn parse_f64(v: &str) -> Result<f64, String> {
    if v == "null" {
        return Ok(f64::NAN);
    }
    v.parse::<f64>().map_err(|_| format!("expected number, got `{v}`"))
}

fn parse_buckets(v: &str) -> Result<Vec<(usize, u64)>, String> {
    let body = v
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| format!("expected array, got `{v}`"))?;
    let mut out = Vec::new();
    for pair in split_fields(body) {
        let inner = pair
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .ok_or_else(|| format!("expected [index,count], got `{pair}`"))?;
        let mut it = inner.split(',');
        let idx = parse_u64(it.next().unwrap_or("").trim())? as usize;
        let count = parse_u64(it.next().ok_or("missing bucket count")?.trim())?;
        out.push((idx, count));
    }
    Ok(out)
}

/// Parses a JSON-lines snapshot produced by [`render_json_lines`] back into
/// samples. Restores counters, gauges (non-finite values come back as NaN)
/// and histograms exactly.
pub fn parse_json_lines(text: &str) -> Result<Vec<MetricSample>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let body = line
            .strip_prefix('{')
            .and_then(|s| s.strip_suffix('}'))
            .ok_or_else(|| format!("line {}: not an object: `{line}`", lineno + 1))?;
        let mut kind = None;
        let mut name = None;
        let mut value_raw = None;
        let mut hdr = None;
        let (mut count, mut sum, mut min, mut max) = (0u64, 0u64, 0u64, 0u64);
        let mut buckets = Vec::new();
        for field in split_fields(body) {
            let (key, raw) =
                split_key_value(field).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            let res: Result<(), String> = (|| {
                match key.as_str() {
                    "type" => kind = Some(parse_quoted(raw)?),
                    "name" => name = Some(parse_quoted(raw)?),
                    "value" => value_raw = Some(raw.to_string()),
                    "hdr" => hdr = Some(parse_u64(raw)?),
                    "count" => count = parse_u64(raw)?,
                    "sum" => sum = parse_u64(raw)?,
                    "min" => min = parse_u64(raw)?,
                    "max" => max = parse_u64(raw)?,
                    "buckets" => buckets = parse_buckets(raw)?,
                    _ => {} // forward compatible: ignore unknown fields
                }
                Ok(())
            })();
            res.map_err(|e| format!("line {}: {e}", lineno + 1))?;
        }
        let name = name.ok_or_else(|| format!("line {}: missing name", lineno + 1))?;
        if kind.as_deref() == Some("histogram") && hdr != Some(SUB_BUCKETS as u64) {
            return Err(format!(
                "line {}: histogram `{name}` uses bucket layout hdr={:?}, expected hdr={} \
                 (pre-HDR snapshots lack the marker and must be re-captured)",
                lineno + 1,
                hdr,
                SUB_BUCKETS
            ));
        }
        let sample = match kind.as_deref() {
            Some("counter") => MetricSample::Counter {
                name,
                value: parse_u64(value_raw.as_deref().unwrap_or("0"))
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            },
            Some("gauge") => MetricSample::Gauge {
                name,
                value: parse_f64(value_raw.as_deref().unwrap_or("null"))
                    .map_err(|e| format!("line {}: {e}", lineno + 1))?,
            },
            Some("histogram") => MetricSample::Histogram {
                name,
                snapshot: HistogramSnapshot { count, sum, min, max, buckets },
            },
            other => return Err(format!("line {}: unknown metric type {other:?}", lineno + 1)),
        };
        out.push(sample);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("serving.cache.hit").add(7);
        r.gauge("online.macro_ctr").set(0.4375);
        let h = r.histogram("serving.stage.recall_us");
        for v in [0, 1, 3, 900, 1_000_000] {
            h.record(v);
        }
        r
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = sample_registry().render_prometheus();
        assert!(text.contains("# TYPE serving_cache_hit counter\nserving_cache_hit 7\n"));
        assert!(text.contains("# TYPE online_macro_ctr gauge\nonline_macro_ctr 0.4375\n"));
        assert!(text.contains("# TYPE serving_stage_recall_us histogram\n"));
        // Cumulative buckets: sub-16 values get exact buckets; 900 lands in
        // the HDR sub-bucket [896, 927] and 1_000_000 in [983040, 1015807].
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"927\"} 4\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"1015807\"} 5\n"));
        assert!(text.contains("serving_stage_recall_us_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("serving_stage_recall_us_sum 1000904\n"));
        assert!(text.contains("serving_stage_recall_us_count 5\n"));
    }

    #[test]
    fn prometheus_sanitizes_names() {
        let samples = vec![MetricSample::Counter { name: "9a.b-c d".into(), value: 1 }];
        let text = render_prometheus(&samples);
        assert!(text.contains("_9a_b_c_d 1\n"), "{text}");
    }

    #[test]
    fn labeled_builds_canonical_names() {
        assert_eq!(labeled("x", &[]), "x");
        assert_eq!(labeled("x.y", &[("shard", "3")]), "x.y{shard=\"3\"}");
        // Keys sort; values escape.
        assert_eq!(
            labeled("x", &[("b", "q\"uote"), ("a", "back\\slash")]),
            "x{a=\"back\\\\slash\",b=\"q\\\"uote\"}"
        );
    }

    #[test]
    fn labeled_series_render_with_label_blocks() {
        let r = MetricsRegistry::new();
        r.counter_labeled("sharded.shed", &[("shard", "0")]).add(2);
        r.counter_labeled("sharded.shed", &[("shard", "1")]).add(3);
        r.histogram_labeled("sharded.request_us", &[("shard", "0")]).record(7);
        let text = r.render_prometheus();
        assert!(text.contains("sharded_shed{shard=\"0\"} 2\n"), "{text}");
        assert!(text.contains("sharded_shed{shard=\"1\"} 3\n"), "{text}");
        // One TYPE header per family, not per labeled series.
        assert_eq!(text.matches("# TYPE sharded_shed counter").count(), 1);
        // Histogram buckets merge `le` into the label set.
        assert!(text.contains("sharded_request_us_bucket{shard=\"0\",le=\"7\"} 1\n"), "{text}");
        assert!(text.contains("sharded_request_us_bucket{shard=\"0\",le=\"+Inf\"} 1\n"), "{text}");
        assert!(text.contains("sharded_request_us_sum{shard=\"0\"} 7\n"), "{text}");
        assert!(text.contains("sharded_request_us_count{shard=\"0\"} 1\n"), "{text}");
    }

    #[test]
    fn prometheus_round_trips_counters_and_gauges() {
        let r = MetricsRegistry::new();
        r.counter("a_hits").add(7);
        r.counter_labeled("a_hits", &[("shard", "2")]).add(9);
        r.gauge("b_ctr").set(0.4375);
        r.gauge("c_nan").set(f64::NAN);
        r.gauge("d_inf").set(f64::INFINITY);
        let back = parse_prometheus(&r.render_prometheus()).expect("parse");
        let snap = r.snapshot();
        assert_eq!(back.len(), snap.len());
        for (b, s) in back.iter().zip(&snap) {
            match (b, s) {
                (MetricSample::Gauge { value: vb, .. }, MetricSample::Gauge { value: vs, .. })
                    if vs.is_nan() =>
                {
                    assert!(vb.is_nan())
                }
                _ => assert_eq!(b, s),
            }
        }
    }

    #[test]
    fn prometheus_round_trips_histogram_buckets() {
        let r = MetricsRegistry::new();
        let h = r.histogram_labeled("lat_us", &[("shard", "1")]);
        for v in [0u64, 1, 3, 900, 1_000_000, u64::MAX] {
            h.record(v);
        }
        let back = parse_prometheus(&r.render_prometheus()).expect("parse");
        assert_eq!(back.len(), 1);
        let MetricSample::Histogram { name, snapshot } = &back[0] else {
            panic!("expected histogram, got {back:?}");
        };
        assert_eq!(name, "lat_us{shard=\"1\"}");
        let orig = r.histogram_labeled("lat_us", &[("shard", "1")]).snapshot();
        // count, sum and every per-bucket count survive the text format;
        // min/max degrade to bucket bounds.
        assert_eq!(snapshot.count, orig.count);
        assert_eq!(snapshot.sum, orig.sum);
        assert_eq!(snapshot.buckets, orig.buckets);
        assert!(snapshot.min <= orig.min && snapshot.max >= orig.max);
    }

    #[test]
    fn parse_prometheus_rejects_garbage() {
        assert!(parse_prometheus("no_type_line 3").is_err());
        assert!(parse_prometheus("# TYPE x counter\nx notanumber").is_err());
        // Unterminated histogram (missing _count).
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 5\n";
        assert!(parse_prometheus(text).is_err());
    }

    #[test]
    fn merged_histogram_aggregates_labeled_series() {
        let r = MetricsRegistry::new();
        r.histogram_labeled("front_us", &[("shard", "0")]).record(5);
        r.histogram_labeled("front_us", &[("shard", "1")]).record(900);
        r.histogram("front_us_other").record(1); // different family untouched
        let merged = r.merged_histogram("front_us");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 905);
        assert_eq!(merged.min, 5);
        assert_eq!(merged.max, 900);
    }

    #[test]
    fn json_lines_round_trip() {
        let snap = sample_registry().snapshot();
        let text = render_json_lines(&snap);
        assert_eq!(text.lines().count(), 3);
        let back = parse_json_lines(&text).expect("parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn json_round_trips_awkward_names() {
        let samples = vec![
            MetricSample::Counter { name: "quote\"back\\slash\ttab".into(), value: 3 },
            MetricSample::Gauge { name: "nan gauge".into(), value: f64::INFINITY },
        ];
        let text = render_json_lines(&samples);
        let back = parse_json_lines(&text).expect("parse");
        assert_eq!(back[0], samples[0]);
        // Non-finite gauges degrade to NaN (JSON has no Inf literal).
        match &back[1] {
            MetricSample::Gauge { name, value } => {
                assert_eq!(name, "nan gauge");
                assert!(value.is_nan());
            }
            other => panic!("wrong sample {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_json_lines("not json").is_err());
        assert!(parse_json_lines("{\"type\":\"widget\",\"name\":\"x\"}").is_err());
        assert!(parse_json_lines("{\"type\":\"counter\",\"value\":1}").is_err());
    }

    #[test]
    fn parse_rejects_pre_hdr_histogram_snapshots() {
        // A histogram line without the `hdr` marker (pre-HDR format) must be
        // refused with a clear error, not silently misinterpreted.
        let old = "{\"type\":\"histogram\",\"name\":\"lat\",\"count\":2,\"sum\":10,\
                   \"min\":1,\"max\":9,\"buckets\":[[1,1],[4,1]]}";
        let err = parse_json_lines(old).unwrap_err();
        assert!(err.contains("bucket layout"), "unexpected error: {err}");
        assert!(err.contains("hdr"), "unexpected error: {err}");
        // Wrong resolution is rejected too.
        let wrong = "{\"type\":\"histogram\",\"hdr\":8,\"name\":\"lat\",\"count\":0,\
                     \"sum\":0,\"min\":0,\"max\":0,\"buckets\":[]}";
        assert!(parse_json_lines(wrong).is_err());
        // Counters and gauges are unaffected by the marker rule.
        assert!(parse_json_lines("{\"type\":\"counter\",\"name\":\"c\",\"value\":1}").is_ok());
    }

    #[test]
    fn empty_input_parses_to_nothing() {
        assert_eq!(parse_json_lines("").unwrap(), Vec::new());
        assert_eq!(parse_json_lines("\n  \n").unwrap(), Vec::new());
    }
}
